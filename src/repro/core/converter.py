"""DataConverter: legacy wire chunks → CDW staging-file chunks (Section 4).

One conversion turns a chunk of legacy-encoded records (VARTEXT or BINARY)
into CSV bytes the CDW's ``COPY INTO`` understands, handling exactly the
discrepancies the paper lists: binary value decoding, *null detection*
(legacy empty VARTEXT field = NULL, CDW distinguishes ``\\N`` from ``""``),
and escaping of special characters (the CSV quoting rules).

Each record receives a synthetic ``__SEQ`` value ``chunk_seq * stride +
index`` so the staging table preserves the input-file order across
out-of-order parallel conversion — the basis for the adaptive error
handler's range splitting and row-number reporting.

Records that cannot be decoded at all (wrong field count, truncated
binary) are *acquisition errors*: they are excluded from the staging data
and reported with their legacy error code so Beta can record them in the
transformation error table.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.cdw import stagefile
from repro.errors import DataFormatError
from repro.legacy.datafmt import RecordFormat
from repro.obs import NULL_OBS, Observability, get_logger

__all__ = ["ConvertedChunk", "AcquisitionError", "DataConverter"]

log = get_logger("converter")


@dataclass(frozen=True)
class AcquisitionError:
    """A record rejected during conversion (before it ever reaches SQL)."""

    seq: int                  # synthetic __SEQ of the bad record
    code: int
    field: str | None
    message: str


@dataclass
class ConvertedChunk:
    """The output of one DataConverter invocation."""

    chunk_seq: int
    csv_bytes: bytes
    records: int
    errors: list[AcquisitionError] = field(default_factory=list)

    @property
    def total_records(self) -> int:
        """Input records including rejected ones (for row numbering)."""
        return self.records + len(self.errors)


class DataConverter:
    """Stateless conversion logic; instantiated once per load job.

    The pipeline runs many invocations concurrently on worker threads —
    safe because conversion only reads shared state.
    """

    def __init__(self, record_format: RecordFormat, seq_stride: int,
                 csv_delimiter: str = ",",
                 obs: Observability = NULL_OBS,
                 staging_table: str | None = None):
        self.record_format = record_format
        self.seq_stride = seq_stride
        self.csv_delimiter = csv_delimiter
        self.obs = obs
        self.staging_table = staging_table
        self.kernel = stagefile.CsvKernel(csv_delimiter)
        # Each pipeline converter thread reuses one scratch line buffer
        # instead of growing a fresh list per chunk.
        self._scratch = threading.local()

    def convert(self, chunk_seq: int, data: bytes) -> ConvertedChunk:
        """Convert one legacy chunk into CSV staging bytes."""
        total = self.record_format.count_records(data)
        if total > self.seq_stride:
            where = (f" of staging table {self.staging_table}"
                     if self.staging_table else "")
            raise DataFormatError(
                f"chunk {chunk_seq}{where} holds {total} records, more "
                f"than the configured seq_stride of {self.seq_stride}; "
                f"raise seq_stride")
        base = chunk_seq * self.seq_stride
        out = getattr(self._scratch, "lines", None)
        if out is None:
            out = self._scratch.lines = []
        else:
            out.clear()
        errors: list[AcquisitionError] = []
        index = 0
        render_row = self.kernel.render_row
        append = out.append
        for item in self.record_format.iter_decode(data):
            seq = base + index
            index += 1
            if isinstance(item, DataFormatError):
                errors.append(AcquisitionError(
                    seq=seq, code=item.code, field=item.field,
                    message=str(item)))
                continue
            append(render_row(item, seq))
        records = index - len(errors)
        csv_bytes = "".join(out).encode("utf-8")
        out.clear()
        self.obs.records_converted.inc(records)
        if errors:
            self.obs.acquisition_errors.inc(len(errors))
            log.debug("chunk %d: %d records rejected during conversion",
                      chunk_seq, len(errors))
        return ConvertedChunk(
            chunk_seq=chunk_seq,
            csv_bytes=csv_bytes,
            records=records,
            errors=errors,
        )
