"""Hyper-Q: the paper's contribution — the ETL virtualization gateway.

The gateway listens for legacy-protocol connections and serves them against
the CDW (Figure 2).  Component map from the paper to this package:

==================  =====================================================
Paper component     Module
==================  =====================================================
Alpha + Coalescer   :mod:`repro.core.gateway` (accept loop) +
                    :class:`repro.legacy.protocol.Coalescer`
PXC (protocol       :mod:`repro.core.gateway` dispatch +
cross compiler)     :mod:`repro.sqlxc` (SQL cross compilation)
DataConverter       :mod:`repro.core.converter`
FileWriter          :mod:`repro.core.filewriter`
CreditManager       :mod:`repro.core.credits`
cloud integration   :mod:`repro.core.pipeline` (upload + COPY INTO)
Beta                :mod:`repro.core.beta`
TDF / TDFCursor     :mod:`repro.core.tdf` / :mod:`repro.core.tdfcursor`
error handling      :mod:`repro.core.errorhandling`
==================  =====================================================
"""

from repro.core.config import HyperQConfig
from repro.core.credits import CreditManager
from repro.core.gateway import HyperQNode
from repro.core.metrics import JobMetrics

__all__ = ["HyperQConfig", "CreditManager", "HyperQNode", "JobMetrics"]
