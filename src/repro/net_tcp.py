"""Real TCP transport with the same interface as :mod:`repro.net`.

The in-memory transport keeps tests hermetic; this module provides the
production-shaped alternative: a Hyper-Q node (or the reference legacy
server) listening on an actual socket, with unmodified clients
connecting over localhost or the network.  Both transports expose the
same ``Endpoint``/``Listener`` surface, so every component is
transport-agnostic — pass ``TcpListener`` where a
:class:`repro.net.Listener` is expected.

Every socket is tuned for the legacy protocol's traffic shape (see
:func:`tune_socket`): ``TCP_NODELAY`` because the protocol is strict
request/reply — a Nagle-delayed 40-byte DATA_ACK stalls the whole data
session — and explicit send/receive buffer sizes so throughput does not
depend on the distribution's autotuning floor.
"""

from __future__ import annotations

import socket

from repro.errors import TransportClosed

__all__ = ["TcpEndpoint", "TcpListener", "connect_tcp", "tune_socket",
           "SOCKET_BUFFER_BYTES"]

_RECV_SIZE = 64 * 1024

#: explicit SO_SNDBUF/SO_RCVBUF request for every protocol socket —
#: sized to hold a handful of 64 KiB DATA frames so a sender never
#: stalls on a kernel buffer smaller than one chunk in flight.
SOCKET_BUFFER_BYTES = 256 * 1024


def tune_socket(sock: socket.socket,
                buffer_bytes: int = SOCKET_BUFFER_BYTES) -> None:
    """Apply the protocol socket options (idempotent, best-effort).

    ``TCP_NODELAY`` disables Nagle: the synchronous protocol sends many
    small control frames (LOGON, DATA_ACK, END_LOAD) whose round-trips
    would otherwise eat up to 40 ms each waiting for a coalescing timer.
    The buffer sizes are explicit rather than autotuned so benchmark
    results are comparable across hosts; failures are swallowed because
    some stacks (or non-TCP sockets in tests) reject the options.
    """
    for level, opt, value in (
            (socket.IPPROTO_TCP, socket.TCP_NODELAY, 1),
            (socket.SOL_SOCKET, socket.SO_SNDBUF, buffer_bytes),
            (socket.SOL_SOCKET, socket.SO_RCVBUF, buffer_bytes)):
        try:
            sock.setsockopt(level, opt, value)
        except OSError:  # pragma: no cover - platform-dependent
            pass


class TcpEndpoint:
    """One end of a TCP connection, adapted to the Endpoint interface."""

    def __init__(self, sock: socket.socket, name: str = ""):
        self._sock = sock
        tune_socket(self._sock)
        self.name = name
        self._closed = False

    def send_bytes(self, data: bytes) -> None:
        """Send all bytes; raises TransportClosed on failure."""
        if self._closed:
            raise TransportClosed("write on closed socket")
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise TransportClosed(f"socket send failed: {exc}") from exc

    def recv_bytes(self, timeout: float | None = None) -> bytes | None:
        """Receive the next chunk; None on EOF."""
        try:
            self._sock.settimeout(timeout)
            chunk = self._sock.recv(_RECV_SIZE)
        except socket.timeout as exc:
            raise TransportClosed(
                f"no data within {timeout}s (peer hung?)") from exc
        except OSError:
            return None
        return chunk if chunk else None

    def close(self) -> None:
        """Half-close the socket (peer sees EOF)."""
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass

    def close_both(self) -> None:
        """Close the socket entirely."""
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass


class TcpListener:
    """A listening TCP socket with the Listener interface.

    ``backlog`` bounds the kernel's pending-accept queue.  The default
    suits the threaded front end's poll-accept loop; the async front
    end re-listens with a deeper backlog sized to its connection cap
    (see :class:`repro.net_async.AsyncFrontend`) because a reconnect
    storm of legacy feeds otherwise overflows the queue and stalls
    clients in SYN retransmit for seconds.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 backlog: int = 32):
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, port))
        self._server.listen(backlog)
        self.host, self.port = self._server.getsockname()
        self.backlog = backlog
        self._closed = False

    def connect(self) -> TcpEndpoint:
        """Client-side convenience: connect to this listener."""
        return connect_tcp(self.host, self.port)

    def accept(self, timeout: float | None = None) -> TcpEndpoint | None:
        """Accept the next connection or None on timeout/close.

        Safe against a concurrent :meth:`close`: the race surfaces as
        an ``OSError`` from ``settimeout``/``accept`` on the closed
        descriptor, which is absorbed into the same ``None`` the caller
        already handles as "nothing accepted, check again".
        """
        if self._closed:
            return None
        try:
            self._server.settimeout(timeout)
            sock, peer = self._server.accept()
        except socket.timeout:
            return None
        except OSError:
            return None
        if self._closed:
            # close() raced the accept and won: the listener is gone,
            # so hand the stray connection an EOF instead of leaking it.
            try:
                sock.close()
            except OSError:  # pragma: no cover - already dead
                pass
            return None
        return TcpEndpoint(sock, name=f"server<-{peer}")

    def socket(self) -> socket.socket:
        """The bound listening socket (for ``asyncio`` adoption).

        The async front end serves this exact socket object so the
        host/port a caller observed before :meth:`~repro.core.gateway.
        HyperQNode.start` keep working; the listener must not be
        ``close()``d separately once adopted.
        """
        return self._server

    def close(self) -> None:
        """Close the listening socket (idempotent)."""
        if not self._closed:
            self._closed = True
            try:
                self._server.close()
            except OSError:
                pass


def connect_tcp(host: str, port: int,
                timeout: float | None = 10.0) -> TcpEndpoint:
    """Open a client connection to a listening node."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return TcpEndpoint(sock, name=f"client->{host}:{port}")
