"""Real TCP transport with the same interface as :mod:`repro.net`.

The in-memory transport keeps tests hermetic; this module provides the
production-shaped alternative: a Hyper-Q node (or the reference legacy
server) listening on an actual socket, with unmodified clients
connecting over localhost or the network.  Both transports expose the
same ``Endpoint``/``Listener`` surface, so every component is
transport-agnostic — pass ``TcpListener`` where a
:class:`repro.net.Listener` is expected.
"""

from __future__ import annotations

import socket

from repro.errors import TransportClosed

__all__ = ["TcpEndpoint", "TcpListener", "connect_tcp"]

_RECV_SIZE = 64 * 1024


class TcpEndpoint:
    """One end of a TCP connection, adapted to the Endpoint interface."""

    def __init__(self, sock: socket.socket, name: str = ""):
        self._sock = sock
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.name = name
        self._closed = False

    def send_bytes(self, data: bytes) -> None:
        """Send all bytes; raises TransportClosed on failure."""
        if self._closed:
            raise TransportClosed("write on closed socket")
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise TransportClosed(f"socket send failed: {exc}") from exc

    def recv_bytes(self, timeout: float | None = None) -> bytes | None:
        """Receive the next chunk; None on EOF."""
        try:
            self._sock.settimeout(timeout)
            chunk = self._sock.recv(_RECV_SIZE)
        except socket.timeout as exc:
            raise TransportClosed(
                f"no data within {timeout}s (peer hung?)") from exc
        except OSError:
            return None
        return chunk if chunk else None

    def close(self) -> None:
        """Half-close the socket (peer sees EOF)."""
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass

    def close_both(self) -> None:
        """Close the socket entirely."""
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass


class TcpListener:
    """A listening TCP socket with the Listener interface."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 backlog: int = 32):
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, port))
        self._server.listen(backlog)
        self.host, self.port = self._server.getsockname()
        self._closed = False

    def connect(self) -> TcpEndpoint:
        """Client-side convenience: connect to this listener."""
        return connect_tcp(self.host, self.port)

    def accept(self, timeout: float | None = None) -> TcpEndpoint | None:
        """Accept the next connection or None on timeout/close."""
        if self._closed:
            return None
        try:
            self._server.settimeout(timeout)
            sock, peer = self._server.accept()
        except socket.timeout:
            return None
        except OSError:
            return None
        return TcpEndpoint(sock, name=f"server<-{peer}")

    def close(self) -> None:
        """Close the listening socket."""
        if not self._closed:
            self._closed = True
            try:
                self._server.close()
            except OSError:
                pass


def connect_tcp(host: str, port: int,
                timeout: float | None = 10.0) -> TcpEndpoint:
    """Open a client connection to a listening node."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return TcpEndpoint(sock, name=f"client->{host}:{port}")
