"""SQL cross compiler (the miniature of Hyper-Q's algebraic framework).

Hyper-Q "maps incoming SQL queries to a system-agnostic abstraction and
applies the necessary transformations to make the query executable on the
new system" (Section 1).  This package implements that pipeline from
scratch:

1. :mod:`repro.sqlxc.lexer` / :mod:`repro.sqlxc.parser` — parse SQL written
   in either the *legacy* dialect (host ``:params``, ``CAST .. FORMAT``,
   ``UPDATE .. ELSE INSERT`` upserts, legacy type and function names) or
   the *cdw* dialect into one shared AST;
2. :mod:`repro.sqlxc.nodes` — the dialect-agnostic AST;
3. :mod:`repro.sqlxc.rewrites` — legacy→CDW transformation rules (FORMAT
   casts to ``TO_DATE``, type mapping, function mapping, upsert→MERGE,
   host-variable to staging-column substitution);
4. :mod:`repro.sqlxc.render` — dialect-specific SQL renderers.

``transpile`` is the one-call entry point used by Hyper-Q's PXC process.
"""

from repro.sqlxc.lexer import tokenize
from repro.sqlxc.parser import parse_statement, parse_expression
from repro.sqlxc.render import render
from repro.sqlxc.rewrites import (
    to_cdw, bind_params_to_columns, bind_params_to_values, map_type,
)
from repro.sqlxc import nodes

__all__ = [
    "tokenize", "parse_statement", "parse_expression", "render",
    "to_cdw", "bind_params_to_columns", "bind_params_to_values",
    "map_type", "transpile", "nodes",
]


def transpile(sql: str, from_dialect: str = "legacy",
              to_dialect: str = "cdw") -> str:
    """Parse ``sql`` in one dialect and render it in another."""
    statement = parse_statement(sql, dialect=from_dialect)
    if from_dialect == "legacy" and to_dialect == "cdw":
        statement = to_cdw(statement)
    return render(statement, dialect=to_dialect)
