"""The dialect-agnostic SQL AST — Hyper-Q's "system-agnostic abstraction".

Every node is a frozen-ish dataclass; rewrite rules build new trees rather
than mutating.  ``walk``/``transform`` provide generic traversal used by the
rewrite rules and by analysis passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Iterator

__all__ = [
    "Node", "Expr", "Statement",
    "Literal", "Star", "ColumnRef", "HostParam", "BoundParam", "TypeName",
    "UnaryOp", "BinaryOp", "Cast", "FuncCall", "CaseExpr", "WhenClause",
    "IsNull", "InExpr", "Between", "Like", "Exists", "SubqueryExpr",
    "SelectItem", "TableRef", "DerivedTable", "Join", "Select", "SetOp",
    "Values", "Insert", "Assignment", "Update", "Delete", "Upsert",
    "MergeMatched", "MergeNotMatched", "Merge",
    "ColumnDef", "CreateTable", "CreateTableAs", "DropTable",
    "AlterTable", "CopyInto",
    "walk", "transform", "replace",
]


@dataclass
class Node:
    """Base of all AST nodes."""

    def children(self) -> Iterator["Node"]:
        """Yield every direct child node (incl. inside lists)."""
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item
                    elif isinstance(item, (list, tuple)):
                        for sub in item:
                            if isinstance(sub, Node):
                                yield sub


class Expr(Node):
    """Marker base for scalar expressions."""


class Statement(Node):
    """Marker base for top-level statements."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Literal(Expr):
    """A constant: str, int, float, Decimal, bool, date, or None."""

    value: Any


@dataclass
class Star(Expr):
    """``*`` in a select list or ``COUNT(*)``."""


@dataclass
class ColumnRef(Expr):
    name: str
    table: str | None = None


@dataclass
class HostParam(Expr):
    """A legacy host variable ``:NAME`` referencing an input field."""

    name: str


@dataclass
class BoundParam(Expr):
    """A host variable bound to a concrete value of one input record.

    Keeps the originating field name so that conversion errors raised
    while evaluating expressions over the value can be attributed to the
    right field in error tables (ERRFIELD in Figure 5b / Figure 6).
    """

    name: str
    value: Any


@dataclass
class TypeName(Node):
    """A type as written in SQL; ``dialect`` records which system's name."""

    base: str
    length: int | None = None
    scale: int | None = None
    dialect: str = "legacy"

    def render_sql(self) -> str:
        """SQL rendering of the type name."""
        if self.length is not None and self.scale is not None:
            return f"{self.base}({self.length},{self.scale})"
        if self.length is not None:
            return f"{self.base}({self.length})"
        return self.base


@dataclass
class UnaryOp(Expr):
    op: str  # NOT, -, +
    operand: Expr


@dataclass
class BinaryOp(Expr):
    op: str  # arithmetic, comparison, AND/OR, ||
    left: Expr
    right: Expr


@dataclass
class Cast(Expr):
    """``CAST(x AS type [FORMAT 'fmt'])`` — FORMAT is legacy-only."""

    operand: Expr
    type: TypeName
    format: str | None = None


@dataclass
class FuncCall(Expr):
    name: str
    args: list[Expr] = field(default_factory=list)
    distinct: bool = False


@dataclass
class WhenClause(Node):
    condition: Expr
    result: Expr


@dataclass
class CaseExpr(Expr):
    whens: list[WhenClause]
    else_result: Expr | None = None


@dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass
class InExpr(Expr):
    operand: Expr
    items: list[Expr] = field(default_factory=list)
    subquery: "Select | None" = None
    negated: bool = False


@dataclass
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass
class Exists(Expr):
    subquery: "Select"
    negated: bool = False


@dataclass
class SubqueryExpr(Expr):
    """A scalar subquery in an expression position."""

    subquery: "Select"


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

@dataclass
class SelectItem(Node):
    expr: Expr
    alias: str | None = None


@dataclass
class TableRef(Node):
    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass
class DerivedTable(Node):
    """A subquery in the FROM clause: ``FROM (SELECT ...) AS alias``."""

    query: "Select | SetOp"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


@dataclass
class Join(Node):
    left: "TableRef | DerivedTable | Join"
    right: "TableRef | DerivedTable"
    kind: str = "INNER"  # INNER, LEFT, RIGHT, FULL, CROSS
    on: Expr | None = None


@dataclass
class Select(Statement):
    items: list[SelectItem]
    from_: "TableRef | Join | None" = None
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[tuple[Expr, bool]] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False


@dataclass
class SetOp(Statement):
    """``UNION [ALL]`` / ``EXCEPT`` / ``INTERSECT`` of two queries."""

    op: str                       # UNION | EXCEPT | INTERSECT
    left: "Select | SetOp"
    right: "Select | SetOp"
    all: bool = False             # UNION ALL keeps duplicates


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------

@dataclass
class Values(Node):
    rows: list[list[Expr]]


@dataclass
class Insert(Statement):
    table: TableRef
    columns: list[str] = field(default_factory=list)
    source: "Values | Select | None" = None


@dataclass
class Assignment(Node):
    column: str
    value: Expr


@dataclass
class Update(Statement):
    table: TableRef
    assignments: list[Assignment]
    from_: "TableRef | Join | None" = None
    where: Expr | None = None


@dataclass
class Delete(Statement):
    table: TableRef
    using: "TableRef | Join | None" = None
    where: Expr | None = None


@dataclass
class Upsert(Statement):
    """Legacy atomic upsert: ``UPDATE ... ELSE INSERT ...``.

    Not representable in the CDW dialect; the cross compiler rewrites it
    into a :class:`Merge`.
    """

    update: Update
    insert: Insert


@dataclass
class MergeMatched(Node):
    assignments: list[Assignment] = field(default_factory=list)
    delete: bool = False
    condition: Expr | None = None


@dataclass
class MergeNotMatched(Node):
    columns: list[str] = field(default_factory=list)
    values: list[Expr] = field(default_factory=list)
    condition: Expr | None = None


@dataclass
class Merge(Statement):
    target: TableRef
    source: "TableRef | Select"
    source_alias: str | None = None
    on: Expr | None = None
    matched: MergeMatched | None = None
    not_matched: MergeNotMatched | None = None


# ---------------------------------------------------------------------------
# DDL and bulk operations
# ---------------------------------------------------------------------------

@dataclass
class ColumnDef(Node):
    name: str
    type: TypeName
    nullable: bool = True


@dataclass
class CreateTable(Statement):
    table: TableRef
    columns: list[ColumnDef] = field(default_factory=list)
    unique: list[list[str]] = field(default_factory=list)
    if_not_exists: bool = False


@dataclass
class CreateTableAs(Statement):
    """``CREATE TABLE t AS SELECT ...`` — column types inferred from
    the query result."""

    table: TableRef
    query: "Select | SetOp"
    if_not_exists: bool = False


@dataclass
class DropTable(Statement):
    table: TableRef
    if_exists: bool = False


@dataclass
class AlterTable(Statement):
    """Schema evolution: ``ALTER TABLE t ADD [COLUMN] ...`` or
    ``ALTER TABLE t RENAME [COLUMN] old TO new``.

    ``action`` is ``"add"`` (``column`` holds the new definition) or
    ``"rename"`` (``old_name``/``new_name`` hold the names).
    """

    table: TableRef
    action: str = "add"
    column: "ColumnDef | None" = None
    old_name: str = ""
    new_name: str = ""
    if_not_exists: bool = False


@dataclass
class CopyInto(Statement):
    """CDW-only bulk ingest: ``COPY INTO t FROM 'store://...' ...``."""

    table: TableRef
    source_url: str = ""
    file_format: str = "csv"
    compression: str | None = None
    delimiter: str = ","


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------

def walk(node: Node) -> Iterator[Node]:
    """Depth-first pre-order walk of the tree rooted at ``node``."""
    yield node
    for child in node.children():
        yield from walk(child)


def _rebuild_value(value, fn: Callable[[Node], Node]):
    if isinstance(value, Node):
        return transform(value, fn)
    if isinstance(value, list):
        return [_rebuild_value(item, fn) for item in value]
    if isinstance(value, tuple):
        return tuple(_rebuild_value(item, fn) for item in value)
    return value


def transform(node: Node, fn: Callable[[Node], Node]) -> Node:
    """Bottom-up rewrite: children first, then ``fn`` on the rebuilt node.

    ``fn`` returns either a replacement node or its argument unchanged.
    """
    changes = {}
    for f in fields(node):
        old = getattr(node, f.name)
        new = _rebuild_value(old, fn)
        if new is not old:
            changes[f.name] = new
    rebuilt = replace(node, **changes) if changes else node
    return fn(rebuilt)
