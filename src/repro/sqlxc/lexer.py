"""SQL lexer shared by the legacy and CDW dialects."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import SqlLexError

__all__ = ["TokenType", "Token", "tokenize"]


class TokenType(Enum):
    KEYWORD = auto()
    IDENT = auto()          # bare or "quoted" identifier
    STRING = auto()         # 'literal'
    NUMBER = auto()
    HOSTPARAM = auto()      # :NAME (legacy host variable)
    OP = auto()             # operators and punctuation
    EOF = auto()


#: Words with grammatical meaning.  Anything else is an identifier; function
#: names (TRIM, COALESCE...) are deliberately *not* keywords so they can be
#: parsed uniformly as calls.
KEYWORDS = frozenset({
    "SELECT", "SEL", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "ASC", "DESC", "LIMIT", "DISTINCT", "AS", "AND", "OR", "NOT", "IN",
    "IS", "NULL", "BETWEEN", "LIKE", "EXISTS", "CASE", "WHEN", "THEN",
    "ELSE", "END", "CAST", "FORMAT", "INSERT", "INTO", "VALUES", "UPDATE",
    "SET", "DELETE", "MERGE", "USING", "ON", "MATCHED", "CREATE", "TABLE",
    "ALTER",
    "DROP", "IF", "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER",
    "CROSS", "UNIQUE", "PRIMARY", "KEY", "COPY", "TRUE", "FALSE", "DATE",
    "TIMESTAMP", "TIME", "INTERVAL", "TRIM", "LEADING", "TRAILING", "BOTH",
    "POSITION", "SUBSTRING", "FOR", "COMPRESSION", "DELIMITER",
    "CONSTRAINT", "DEFAULT", "UNION", "EXCEPT", "INTERSECT", "ALL",
    "EXTRACT",
})

_MULTI_OPS = ("<>", "!=", ">=", "<=", "||", "**")
_SINGLE_OPS = "+-*/%(),.=<>;"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    pos: int

    def match(self, *keywords: str) -> bool:
        """True if this token is one of the given keywords."""
        return (self.type is TokenType.KEYWORD
                and self.value in keywords)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r})"


def tokenize(sql: str, dialect: str = "legacy") -> list[Token]:
    """Lex a SQL string into tokens (dialect only affects ``:params``)."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "/" and sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end < 0:
                raise SqlLexError("unterminated block comment", i)
            i = end + 2
            continue
        if ch == "'":
            j = i + 1
            buf: list[str] = []
            while j < n:
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(sql[j])
                j += 1
            else:
                raise SqlLexError("unterminated string literal", i)
            tokens.append(Token(TokenType.STRING, "".join(buf), i))
            i = j + 1
            continue
        if ch == '"':
            j = sql.find('"', i + 1)
            if j < 0:
                raise SqlLexError("unterminated quoted identifier", i)
            tokens.append(Token(TokenType.IDENT, sql[i + 1:j], i))
            i = j + 1
            continue
        if ch == ":":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            if j == i + 1:
                raise SqlLexError("bare ':' (host parameter needs a name)", i)
            tokens.append(Token(TokenType.HOSTPARAM, sql[i + 1:j], i))
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    if j + 1 < n and (sql[j + 1].isdigit()
                                      or sql[j + 1] in "+-"):
                        seen_exp = True
                        j += 2 if sql[j + 1] in "+-" else 1
                    else:
                        break
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] in "_$"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                # SEL is the legacy abbreviation for SELECT.
                value = "SELECT" if upper == "SEL" else upper
                tokens.append(Token(TokenType.KEYWORD, value, i))
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
            i = j
            continue
        matched = False
        for op in _MULTI_OPS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OP, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token(TokenType.OP, ch, i))
            i += 1
            continue
        raise SqlLexError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
