"""Dialect-specific SQL renderers.

``render(node, dialect)`` turns an AST back into SQL text.  The renderer is
total over the AST; constructs that do not exist in the requested dialect
(e.g. a FORMAT cast rendered as ``cdw``, or an Upsert rendered as ``cdw``)
raise :class:`~repro.errors.SqlTranslationError` — the cross compiler must
rewrite them away first.
"""

from __future__ import annotations

import re
from decimal import Decimal

from repro.errors import SqlTranslationError
from repro.sqlxc import nodes as n
from repro import values

__all__ = ["render", "render_expr"]

_SAFE_IDENT = re.compile(r"^[A-Za-z_][A-Za-z_0-9$]*(\.[A-Za-z_][A-Za-z_0-9$]*)*$")


def _ident(name: str) -> str:
    if _SAFE_IDENT.match(name):
        return name
    return '"' + name.replace('"', '""') + '"'


def _string(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


def render(node: n.Node, dialect: str = "cdw") -> str:
    """Render a statement (or any node) as SQL in the given dialect."""
    return _Renderer(dialect).render(node)


def render_expr(expr: n.Expr, dialect: str = "cdw") -> str:
    """Render a scalar expression."""
    return _Renderer(dialect).expr(expr)


class _Renderer:
    def __init__(self, dialect: str):
        self.dialect = dialect

    # -- dispatch ------------------------------------------------------------

    def render(self, node: n.Node) -> str:
        method = getattr(self, f"_render_{type(node).__name__}", None)
        if method is None:
            raise SqlTranslationError(
                f"cannot render {type(node).__name__} node")
        return method(node)

    def expr(self, node: n.Expr) -> str:
        return self.render(node)

    # -- expressions ------------------------------------------------------------

    def _render_Literal(self, node: n.Literal) -> str:
        value = node.value
        if value is None:
            return "NULL"
        if value is True:
            return "TRUE"
        if value is False:
            return "FALSE"
        if isinstance(value, str):
            return _string(value)
        if isinstance(value, (int, float, Decimal)):
            return str(value)
        if isinstance(value, values.Timestamp):
            return f"TIMESTAMP {_string(value.isoformat(sep=' '))}"
        if isinstance(value, values.Date):
            return f"DATE {_string(value.isoformat())}"
        raise SqlTranslationError(
            f"cannot render literal of type {type(value).__name__}")

    def _render_Star(self, node: n.Star) -> str:
        return "*"

    def _render_ColumnRef(self, node: n.ColumnRef) -> str:
        if node.table:
            return f"{_ident(node.table)}.{_ident(node.name)}"
        return _ident(node.name)

    def _render_BoundParam(self, node: n.BoundParam) -> str:
        return self._render_Literal(n.Literal(node.value))

    def _render_HostParam(self, node: n.HostParam) -> str:
        if self.dialect != "legacy":
            raise SqlTranslationError(
                f"host parameter :{node.name} must be bound before "
                "rendering for the CDW")
        return f":{node.name}"

    def _render_UnaryOp(self, node: n.UnaryOp) -> str:
        # Self-contained rendering: the node carries its own parentheses
        # so it is atomic in any operand position.
        if node.op == "NOT":
            return f"(NOT ({self.expr(node.operand)}))"
        return f"({node.op}({self.expr(node.operand)}))"

    def _render_BinaryOp(self, node: n.BinaryOp) -> str:
        return f"({self.expr(node.left)} {node.op} {self.expr(node.right)})"

    def _render_Cast(self, node: n.Cast) -> str:
        if node.format is not None and self.dialect != "legacy":
            raise SqlTranslationError(
                "FORMAT cast must be rewritten before rendering for the CDW")
        inner = self.expr(node.operand)
        type_sql = node.type.render_sql()
        if node.format is not None:
            return f"CAST({inner} AS {type_sql} FORMAT {_string(node.format)})"
        return f"CAST({inner} AS {type_sql})"

    def _render_FuncCall(self, node: n.FuncCall) -> str:
        if node.name == "EXTRACT" and len(node.args) == 2 \
                and isinstance(node.args[0], n.Literal):
            return (f"EXTRACT({node.args[0].value} FROM "
                    f"{self.expr(node.args[1])})")
        prefix = "DISTINCT " if node.distinct else ""
        args = ", ".join(self.expr(a) for a in node.args)
        return f"{node.name}({prefix}{args})"

    def _render_CaseExpr(self, node: n.CaseExpr) -> str:
        parts = ["CASE"]
        for when in node.whens:
            parts.append(
                f"WHEN {self.expr(when.condition)} "
                f"THEN {self.expr(when.result)}")
        if node.else_result is not None:
            parts.append(f"ELSE {self.expr(node.else_result)}")
        parts.append("END")
        return " ".join(parts)

    def _render_IsNull(self, node: n.IsNull) -> str:
        suffix = "IS NOT NULL" if node.negated else "IS NULL"
        return f"({self.expr(node.operand)} {suffix})"

    def _render_InExpr(self, node: n.InExpr) -> str:
        negate = "NOT " if node.negated else ""
        if node.subquery is not None:
            inner = self.render(node.subquery)
            return f"({self.expr(node.operand)} {negate}IN ({inner}))"
        items = ", ".join(self.expr(item) for item in node.items)
        return f"({self.expr(node.operand)} {negate}IN ({items}))"

    def _render_Between(self, node: n.Between) -> str:
        negate = "NOT " if node.negated else ""
        return (f"({self.expr(node.operand)} {negate}BETWEEN "
                f"{self.expr(node.low)} AND {self.expr(node.high)})")

    def _render_Like(self, node: n.Like) -> str:
        negate = "NOT " if node.negated else ""
        return (f"({self.expr(node.operand)} {negate}LIKE "
                f"{self.expr(node.pattern)})")

    def _render_Exists(self, node: n.Exists) -> str:
        negate = "NOT " if node.negated else ""
        return f"{negate}EXISTS ({self.render(node.subquery)})"

    def _render_SubqueryExpr(self, node: n.SubqueryExpr) -> str:
        return f"({self.render(node.subquery)})"

    # -- queries ------------------------------------------------------------------

    def _render_SelectItem(self, node: n.SelectItem) -> str:
        sql = self.expr(node.expr)
        if node.alias:
            sql += f" AS {_ident(node.alias)}"
        return sql

    def _render_TableRef(self, node: n.TableRef) -> str:
        sql = _ident(node.name)
        if node.alias:
            sql += f" AS {_ident(node.alias)}"
        return sql

    def _render_DerivedTable(self, node: n.DerivedTable) -> str:
        return f"({self.render(node.query)}) AS {_ident(node.alias)}"

    def _render_Join(self, node: n.Join) -> str:
        left = self.render(node.left)
        right = self.render(node.right)
        if node.kind == "CROSS":
            return f"{left} CROSS JOIN {right}"
        on = f" ON {self.expr(node.on)}" if node.on is not None else ""
        return f"{left} {node.kind} JOIN {right}{on}"

    def _render_Select(self, node: n.Select) -> str:
        parts = ["SELECT"]
        if node.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(self.render(i) for i in node.items))
        if node.from_ is not None:
            parts.append("FROM " + self.render(node.from_))
        if node.where is not None:
            parts.append("WHERE " + self.expr(node.where))
        if node.group_by:
            parts.append(
                "GROUP BY " + ", ".join(self.expr(g) for g in node.group_by))
        if node.having is not None:
            parts.append("HAVING " + self.expr(node.having))
        if node.order_by:
            rendered = [
                self.expr(expr) + ("" if ascending else " DESC")
                for expr, ascending in node.order_by
            ]
            parts.append("ORDER BY " + ", ".join(rendered))
        if node.limit is not None:
            parts.append(f"LIMIT {node.limit}")
        return " ".join(parts)

    def _render_SetOp(self, node: n.SetOp) -> str:
        op = node.op + (" ALL" if node.all else "")
        right = self.render(node.right)
        if isinstance(node.right, n.SetOp):
            right = f"({right})"
        return f"{self.render(node.left)} {op} {right}"

    def _render_CreateTableAs(self, node: n.CreateTableAs) -> str:
        exists = "IF NOT EXISTS " if node.if_not_exists else ""
        return (f"CREATE TABLE {exists}{_ident(node.table.name)} AS "
                f"{self.render(node.query)}")

    # -- DML ------------------------------------------------------------------------

    def _render_Values(self, node: n.Values) -> str:
        rows = ", ".join(
            "(" + ", ".join(self.expr(v) for v in row) + ")"
            for row in node.rows)
        return f"VALUES {rows}"

    def _render_Insert(self, node: n.Insert) -> str:
        sql = f"INSERT INTO {_ident(node.table.name)}"
        if node.columns:
            sql += " (" + ", ".join(_ident(c) for c in node.columns) + ")"
        if isinstance(node.source, n.Values):
            sql += " " + self.render(node.source)
        elif isinstance(node.source, n.Select):
            sql += " " + self.render(node.source)
        else:
            raise SqlTranslationError("INSERT without a source")
        return sql

    def _render_Assignment(self, node: n.Assignment) -> str:
        return f"{_ident(node.column)} = {self.expr(node.value)}"

    def _render_Update(self, node: n.Update) -> str:
        sql = (f"UPDATE {self.render(node.table)} SET "
               + ", ".join(self.render(a) for a in node.assignments))
        if node.from_ is not None:
            sql += " FROM " + self.render(node.from_)
        if node.where is not None:
            sql += " WHERE " + self.expr(node.where)
        return sql

    def _render_Delete(self, node: n.Delete) -> str:
        sql = f"DELETE FROM {self.render(node.table)}"
        if node.using is not None:
            sql += " USING " + self.render(node.using)
        if node.where is not None:
            sql += " WHERE " + self.expr(node.where)
        return sql

    def _render_Upsert(self, node: n.Upsert) -> str:
        if self.dialect != "legacy":
            raise SqlTranslationError(
                "legacy upsert must be rewritten to MERGE for the CDW")
        return (self.render(node.update) + " ELSE "
                + self.render(node.insert))

    def _render_Merge(self, node: n.Merge) -> str:
        if isinstance(node.source, n.Select):
            source = f"({self.render(node.source)})"
        else:
            source = _ident(node.source.name)
        sql = (f"MERGE INTO {self.render(node.target)} USING {source}")
        if node.source_alias:
            sql += f" AS {_ident(node.source_alias)}"
        sql += f" ON {self.expr(node.on)}"
        if node.matched is not None:
            sql += " WHEN MATCHED"
            if node.matched.condition is not None:
                sql += f" AND {self.expr(node.matched.condition)}"
            if node.matched.delete:
                sql += " THEN DELETE"
            else:
                sql += " THEN UPDATE SET " + ", ".join(
                    self.render(a) for a in node.matched.assignments)
        if node.not_matched is not None:
            sql += " WHEN NOT MATCHED"
            if node.not_matched.condition is not None:
                sql += f" AND {self.expr(node.not_matched.condition)}"
            sql += " THEN INSERT"
            if node.not_matched.columns:
                sql += " (" + ", ".join(
                    _ident(c) for c in node.not_matched.columns) + ")"
            sql += " VALUES (" + ", ".join(
                self.expr(v) for v in node.not_matched.values) + ")"
        return sql

    # -- DDL --------------------------------------------------------------------------

    def _render_ColumnDef(self, node: n.ColumnDef) -> str:
        sql = f"{_ident(node.name)} {node.type.render_sql()}"
        if not node.nullable:
            sql += " NOT NULL"
        return sql

    def _render_CreateTable(self, node: n.CreateTable) -> str:
        exists = "IF NOT EXISTS " if node.if_not_exists else ""
        parts = [self.render(c) for c in node.columns]
        for key in node.unique:
            parts.append("UNIQUE (" + ", ".join(_ident(c) for c in key) + ")")
        return (f"CREATE TABLE {exists}{_ident(node.table.name)} ("
                + ", ".join(parts) + ")")

    def _render_AlterTable(self, node: n.AlterTable) -> str:
        if node.action == "add":
            exists = "IF NOT EXISTS " if node.if_not_exists else ""
            return (f"ALTER TABLE {_ident(node.table.name)} "
                    f"ADD COLUMN {exists}{self.render(node.column)}")
        if node.action == "rename":
            return (f"ALTER TABLE {_ident(node.table.name)} RENAME "
                    f"COLUMN {_ident(node.old_name)} "
                    f"TO {_ident(node.new_name)}")
        raise SqlTranslationError(
            f"unknown ALTER TABLE action {node.action!r}")

    def _render_DropTable(self, node: n.DropTable) -> str:
        exists = "IF EXISTS " if node.if_exists else ""
        return f"DROP TABLE {exists}{_ident(node.table.name)}"

    def _render_CopyInto(self, node: n.CopyInto) -> str:
        if self.dialect != "cdw":
            raise SqlTranslationError("COPY INTO is a CDW-only statement")
        sql = (f"COPY INTO {_ident(node.table.name)} FROM "
               f"{_string(node.source_url)} FORMAT {node.file_format}")
        if node.delimiter != ",":
            sql += f" DELIMITER {_string(node.delimiter)}"
        if node.compression:
            sql += f" COMPRESSION {node.compression}"
        return sql
