"""Recursive-descent SQL parser producing the shared AST.

One grammar serves both dialects; ``dialect`` gates the few constructs that
exist on only one side (``FORMAT`` casts, ``UPDATE .. ELSE INSERT`` upserts
and host ``:params`` are legacy; ``COPY INTO`` is CDW).
"""

from __future__ import annotations

from decimal import Decimal

from repro.errors import SqlParseError
from repro.sqlxc import nodes as n
from repro.sqlxc.lexer import Token, TokenType, tokenize
from repro import values

__all__ = ["parse_statement", "parse_expression"]

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_TYPE_KEYWORDS = {"DATE", "TIMESTAMP", "TIME"}


class _Parser:
    def __init__(self, sql: str, dialect: str):
        self.dialect = dialect
        self.tokens = tokenize(sql, dialect)
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def accept_keyword(self, *keywords: str) -> Token | None:
        if self.current.match(*keywords):
            return self.advance()
        return None

    def expect_keyword(self, *keywords: str) -> Token:
        token = self.accept_keyword(*keywords)
        if token is None:
            raise SqlParseError(
                f"expected {'/'.join(keywords)}, got {self.current.value!r}",
                self.current)
        return token

    def accept_op(self, *ops: str) -> Token | None:
        if self.current.type is TokenType.OP and self.current.value in ops:
            return self.advance()
        return None

    def expect_op(self, op: str) -> Token:
        token = self.accept_op(op)
        if token is None:
            raise SqlParseError(
                f"expected {op!r}, got {self.current.value!r}", self.current)
        return token

    def accept_word(self, *words: str) -> Token | None:
        """Accept a *contextual* keyword (lexed as IDENT, e.g. ADD/TO).

        Matching is case-insensitive; real keywords match too, so a
        grammar word may later be promoted to the reserved set without
        touching its call sites.
        """
        token = self.current
        if token.type in (TokenType.IDENT, TokenType.KEYWORD) \
                and token.value.upper() in words:
            return self.advance()
        return None

    def expect_word(self, *words: str) -> Token:
        """Like :meth:`expect_keyword` for contextual keywords."""
        token = self.accept_word(*words)
        if token is None:
            raise SqlParseError(
                f"expected {'/'.join(words)}, got {self.current.value!r}",
                self.current)
        return token

    def expect_ident(self) -> str:
        if self.current.type is TokenType.IDENT:
            return self.advance().value
        # Non-reserved use of a keyword as an identifier (e.g. a column
        # named DATE) is not supported; fail clearly.
        raise SqlParseError(
            f"expected identifier, got {self.current.value!r}", self.current)

    # -- entry points ---------------------------------------------------------

    def parse_statement(self) -> n.Statement:
        statement = self._statement()
        self.accept_op(";")
        if self.current.type is not TokenType.EOF:
            raise SqlParseError(
                f"trailing input at {self.current.value!r}", self.current)
        return statement

    def _statement(self) -> n.Statement:
        token = self.current
        if token.match("SELECT"):
            return self._query()
        if token.match("INSERT"):
            return self._insert()
        if token.match("UPDATE"):
            return self._update()
        if token.match("DELETE"):
            return self._delete()
        if token.match("MERGE"):
            return self._merge()
        if token.match("CREATE"):
            return self._create_table()
        if token.match("ALTER"):
            return self._alter_table()
        if token.match("DROP"):
            return self._drop_table()
        if token.match("COPY"):
            if self.dialect != "cdw":
                raise SqlParseError("COPY INTO is a CDW-only statement")
            return self._copy_into()
        raise SqlParseError(
            f"cannot parse statement starting with {token.value!r}", token)

    # -- SELECT ---------------------------------------------------------------

    def _query(self) -> "n.Select | n.SetOp":
        """A SELECT possibly chained with UNION/EXCEPT/INTERSECT."""
        left: n.Select | n.SetOp = self._select()
        while self.current.match("UNION", "EXCEPT", "INTERSECT"):
            op = self.advance().value
            keep_all = False
            if op == "UNION" and self.accept_keyword("ALL"):
                keep_all = True
            if self.accept_op("("):
                right: n.Select | n.SetOp = self._query()
                self.expect_op(")")
            else:
                right = self._select()
            left = n.SetOp(op, left, right, keep_all)
        return left

    def _select(self) -> n.Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT") is not None
        items = [self._select_item()]
        while self.accept_op(","):
            items.append(self._select_item())
        from_ = None
        if self.accept_keyword("FROM"):
            from_ = self._from_clause()
        where = self._expr() if self.accept_keyword("WHERE") else None
        group_by: list[n.Expr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self._expr())
            while self.accept_op(","):
                group_by.append(self._expr())
        having = self._expr() if self.accept_keyword("HAVING") else None
        order_by: list[tuple[n.Expr, bool]] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._order_item())
            while self.accept_op(","):
                order_by.append(self._order_item())
        limit = None
        if self.accept_keyword("LIMIT"):
            if self.current.type is not TokenType.NUMBER:
                raise SqlParseError("LIMIT expects a number", self.current)
            limit = int(self.advance().value)
        return n.Select(items=items, from_=from_, where=where,
                        group_by=group_by, having=having,
                        order_by=order_by, limit=limit, distinct=distinct)

    def _select_item(self) -> n.SelectItem:
        if self.accept_op("*"):
            return n.SelectItem(n.Star())
        expr = self._expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return n.SelectItem(expr, alias)

    def _order_item(self) -> tuple[n.Expr, bool]:
        expr = self._expr()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return (expr, ascending)

    def _table_name(self) -> str:
        name = self.expect_ident()
        while self.accept_op("."):
            name += "." + self.expect_ident()
        return name

    def _table_ref(self) -> "n.TableRef | n.DerivedTable":
        if self.accept_op("("):
            query = self._query()
            self.expect_op(")")
            self.accept_keyword("AS")
            alias = self.expect_ident()
            return n.DerivedTable(query, alias)
        name = self._table_name()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return n.TableRef(name, alias)

    def _from_clause(self) -> n.TableRef | n.Join:
        left: n.TableRef | n.Join = self._table_ref()
        while True:
            kind = None
            if self.accept_keyword("INNER"):
                kind = "INNER"
                self.expect_keyword("JOIN")
            elif self.accept_keyword("LEFT"):
                self.accept_keyword("OUTER")
                kind = "LEFT"
                self.expect_keyword("JOIN")
            elif self.accept_keyword("RIGHT"):
                self.accept_keyword("OUTER")
                kind = "RIGHT"
                self.expect_keyword("JOIN")
            elif self.accept_keyword("FULL"):
                self.accept_keyword("OUTER")
                kind = "FULL"
                self.expect_keyword("JOIN")
            elif self.accept_keyword("CROSS"):
                kind = "CROSS"
                self.expect_keyword("JOIN")
            elif self.accept_keyword("JOIN"):
                kind = "INNER"
            elif self.accept_op(","):
                kind = "CROSS"
            else:
                return left
            right = self._table_ref()
            on = None
            if kind != "CROSS":
                self.expect_keyword("ON")
                on = self._expr()
            left = n.Join(left, right, kind, on)

    # -- DML --------------------------------------------------------------------

    def _insert(self) -> n.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = n.TableRef(self._table_name())
        columns: list[str] = []
        if (self.current.type is TokenType.OP and self.current.value == "("
                and not self.peek().match("SELECT")):
            self.expect_op("(")
            columns.append(self.expect_ident())
            while self.accept_op(","):
                columns.append(self.expect_ident())
            self.expect_op(")")
        if self.accept_keyword("VALUES"):
            rows = [self._value_row()]
            while self.accept_op(","):
                rows.append(self._value_row())
            return n.Insert(table, columns, n.Values(rows))
        if self.current.match("SELECT") or (
                self.current.type is TokenType.OP
                and self.current.value == "("):
            wrapped = self.accept_op("(") is not None
            select = self._query()
            if wrapped:
                self.expect_op(")")
            return n.Insert(table, columns, select)
        raise SqlParseError(
            "INSERT expects VALUES or SELECT", self.current)

    def _value_row(self) -> list[n.Expr]:
        self.expect_op("(")
        row = [self._expr()]
        while self.accept_op(","):
            row.append(self._expr())
        self.expect_op(")")
        return row

    def _update(self) -> n.Update | n.Upsert:
        self.expect_keyword("UPDATE")
        table = self._table_ref()
        self.expect_keyword("SET")
        assignments = [self._assignment()]
        while self.accept_op(","):
            assignments.append(self._assignment())
        from_ = self._from_clause() if self.accept_keyword("FROM") else None
        where = self._expr() if self.accept_keyword("WHERE") else None
        update = n.Update(table, assignments, from_, where)
        if self.current.match("ELSE"):
            if self.dialect != "legacy":
                raise SqlParseError(
                    "UPDATE .. ELSE INSERT is a legacy-only upsert")
            self.expect_keyword("ELSE")
            insert = self._insert()
            return n.Upsert(update, insert)
        return update

    def _assignment(self) -> n.Assignment:
        column = self.expect_ident()
        self.expect_op("=")
        return n.Assignment(column, self._expr())

    def _delete(self) -> n.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self._table_ref()
        using = self._from_clause() if self.accept_keyword("USING") else None
        where = self._expr() if self.accept_keyword("WHERE") else None
        return n.Delete(table, using, where)

    def _merge(self) -> n.Merge:
        self.expect_keyword("MERGE")
        self.expect_keyword("INTO")
        target = self._table_ref()
        self.expect_keyword("USING")
        source: n.TableRef | n.Select | n.SetOp
        source_alias = None
        if self.accept_op("("):
            source = self._query()
            self.expect_op(")")
            self.accept_keyword("AS")
            source_alias = self.expect_ident()
        else:
            ref = self._table_ref()
            source = ref
            source_alias = ref.alias
        self.expect_keyword("ON")
        on = self._expr()
        matched = None
        not_matched = None
        while self.current.match("WHEN"):
            self.expect_keyword("WHEN")
            if self.accept_keyword("NOT"):
                self.expect_keyword("MATCHED")
                condition = (self._expr()
                             if self.accept_keyword("AND") else None)
                self.expect_keyword("THEN")
                self.expect_keyword("INSERT")
                columns: list[str] = []
                if self.accept_op("("):
                    columns.append(self.expect_ident())
                    while self.accept_op(","):
                        columns.append(self.expect_ident())
                    self.expect_op(")")
                self.expect_keyword("VALUES")
                row = self._value_row()
                not_matched = n.MergeNotMatched(columns, row, condition)
            else:
                self.expect_keyword("MATCHED")
                condition = (self._expr()
                             if self.accept_keyword("AND") else None)
                self.expect_keyword("THEN")
                if self.accept_keyword("DELETE"):
                    matched = n.MergeMatched(
                        delete=True, condition=condition)
                else:
                    self.expect_keyword("UPDATE")
                    self.expect_keyword("SET")
                    assignments = [self._assignment()]
                    while self.accept_op(","):
                        assignments.append(self._assignment())
                    matched = n.MergeMatched(assignments, False, condition)
        return n.Merge(target, source, source_alias, on, matched, not_matched)

    # -- DDL ----------------------------------------------------------------------

    def _create_table(self) -> "n.CreateTable | n.CreateTableAs":
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            # "EXISTS" lexes as the EXISTS keyword
            self.expect_keyword("EXISTS")
            if_not_exists = True
        table = n.TableRef(self._table_name())
        if self.accept_keyword("AS"):
            wrapped = self.accept_op("(") is not None
            query = self._query()
            if wrapped:
                self.expect_op(")")
            return n.CreateTableAs(table, query, if_not_exists)
        self.expect_op("(")
        columns: list[n.ColumnDef] = []
        unique: list[list[str]] = []
        while True:
            if self.current.match("UNIQUE"):
                self.advance()
                unique.append(self._paren_name_list())
            elif self.current.match("PRIMARY"):
                self.advance()
                self.expect_keyword("KEY")
                unique.append(self._paren_name_list())
            elif self.current.match("CONSTRAINT"):
                self.advance()
                self.expect_ident()  # constraint name, ignored
                if self.accept_keyword("UNIQUE") or (
                        self.accept_keyword("PRIMARY")
                        and self.expect_keyword("KEY")):
                    unique.append(self._paren_name_list())
            else:
                name = self.expect_ident()
                type_name = self._type_name()
                nullable = True
                if self.accept_keyword("NOT"):
                    self.expect_keyword("NULL")
                    nullable = False
                elif self.accept_keyword("NULL"):
                    nullable = True
                if self.accept_keyword("UNIQUE"):
                    unique.append([name])
                columns.append(n.ColumnDef(name, type_name, nullable))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        return n.CreateTable(table, columns, unique, if_not_exists)

    def _alter_table(self) -> n.AlterTable:
        """``ALTER TABLE t ADD [COLUMN] [IF NOT EXISTS] name type
        [NOT NULL | NULL]`` or
        ``ALTER TABLE t RENAME [COLUMN] old TO new``."""
        self.expect_keyword("ALTER")
        self.expect_keyword("TABLE")
        table = n.TableRef(self._table_name())
        if self.accept_word("ADD"):
            self.accept_word("COLUMN")
            if_not_exists = False
            if self.accept_keyword("IF"):
                self.expect_keyword("NOT")
                self.expect_keyword("EXISTS")
                if_not_exists = True
            name = self.expect_ident()
            type_name = self._type_name()
            nullable = True
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                nullable = False
            else:
                self.accept_keyword("NULL")
            return n.AlterTable(
                table, action="add",
                column=n.ColumnDef(name, type_name, nullable),
                if_not_exists=if_not_exists)
        self.expect_word("RENAME")
        self.accept_word("COLUMN")
        old_name = self.expect_ident()
        self.expect_word("TO")
        new_name = self.expect_ident()
        return n.AlterTable(table, action="rename",
                            old_name=old_name, new_name=new_name)

    def _paren_name_list(self) -> list[str]:
        self.expect_op("(")
        names = [self.expect_ident()]
        while self.accept_op(","):
            names.append(self.expect_ident())
        self.expect_op(")")
        return names

    def _drop_table(self) -> n.DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return n.DropTable(n.TableRef(self._table_name()), if_exists)

    def _copy_into(self) -> n.CopyInto:
        self.expect_keyword("COPY")
        self.expect_keyword("INTO")
        table = n.TableRef(self._table_name())
        self.expect_keyword("FROM")
        if self.current.type is not TokenType.STRING:
            raise SqlParseError(
                "COPY INTO expects a quoted source URL", self.current)
        url = self.advance().value
        file_format = "csv"
        compression = None
        delimiter = ","
        while True:
            if self.accept_keyword("FORMAT"):
                file_format = self._ident_or_string().lower()
            elif self.accept_keyword("COMPRESSION"):
                compression = self._ident_or_string().lower()
            elif self.accept_keyword("DELIMITER"):
                delimiter = self._ident_or_string()
            else:
                break
        return n.CopyInto(table, url, file_format, compression, delimiter)

    def _ident_or_string(self) -> str:
        if self.current.type in (TokenType.IDENT, TokenType.STRING):
            return self.advance().value
        raise SqlParseError(
            f"expected name or string, got {self.current.value!r}",
            self.current)

    def _type_name(self) -> n.TypeName:
        token = self.current
        if token.type is TokenType.IDENT or token.match(*_TYPE_KEYWORDS):
            base = self.advance().value.upper()
        else:
            raise SqlParseError(
                f"expected type name, got {token.value!r}", token)
        if base == "DOUBLE" and self.current.type is TokenType.IDENT \
                and self.current.value.upper() == "PRECISION":
            self.advance()
            base = "DOUBLE"
        length = scale = None
        if self.accept_op("("):
            if self.current.type is not TokenType.NUMBER:
                raise SqlParseError("expected length", self.current)
            length = int(self.advance().value)
            if self.accept_op(","):
                scale = int(self.advance().value)
            self.expect_op(")")
        return n.TypeName(base, length, scale, dialect=self.dialect)

    # -- expressions -----------------------------------------------------------

    def _expr(self) -> n.Expr:
        return self._or_expr()

    def _or_expr(self) -> n.Expr:
        left = self._and_expr()
        while self.accept_keyword("OR"):
            left = n.BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> n.Expr:
        left = self._not_expr()
        while self.accept_keyword("AND"):
            left = n.BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> n.Expr:
        if self.accept_keyword("NOT"):
            return n.UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> n.Expr:
        left = self._concat()
        while True:
            if self.current.type is TokenType.OP \
                    and self.current.value in _COMPARISON_OPS:
                op = self.advance().value
                op = "<>" if op == "!=" else op
                left = n.BinaryOp(op, left, self._concat())
                continue
            if self.current.match("IS"):
                self.advance()
                negated = self.accept_keyword("NOT") is not None
                self.expect_keyword("NULL")
                left = n.IsNull(left, negated)
                continue
            negated = False
            if self.current.match("NOT") and self.peek().match(
                    "IN", "BETWEEN", "LIKE"):
                self.advance()
                negated = True
            if self.accept_keyword("IN"):
                self.expect_op("(")
                if self.current.match("SELECT"):
                    subquery = self._query()
                    self.expect_op(")")
                    left = n.InExpr(left, subquery=subquery, negated=negated)
                else:
                    items = [self._expr()]
                    while self.accept_op(","):
                        items.append(self._expr())
                    self.expect_op(")")
                    left = n.InExpr(left, items=items, negated=negated)
                continue
            if self.accept_keyword("BETWEEN"):
                low = self._concat()
                self.expect_keyword("AND")
                high = self._concat()
                left = n.Between(left, low, high, negated)
                continue
            if self.accept_keyword("LIKE"):
                left = n.Like(left, self._concat(), negated)
                continue
            return left

    def _concat(self) -> n.Expr:
        left = self._additive()
        while self.accept_op("||"):
            left = n.BinaryOp("||", left, self._additive())
        return left

    def _additive(self) -> n.Expr:
        left = self._multiplicative()
        while True:
            if self.accept_op("+"):
                left = n.BinaryOp("+", left, self._multiplicative())
            elif self.accept_op("-"):
                left = n.BinaryOp("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> n.Expr:
        left = self._unary()
        while True:
            if self.accept_op("*"):
                left = n.BinaryOp("*", left, self._unary())
            elif self.accept_op("/"):
                left = n.BinaryOp("/", left, self._unary())
            elif self.accept_op("%"):
                left = n.BinaryOp("%", left, self._unary())
            else:
                return left

    def _unary(self) -> n.Expr:
        if self.accept_op("-"):
            operand = self._unary()
            # Fold a negated numeric literal so that -1 stays Literal(-1)
            # (keeps render/parse a fixpoint).
            if isinstance(operand, n.Literal) and isinstance(
                    operand.value, (int, float, Decimal)) \
                    and not isinstance(operand.value, bool):
                return n.Literal(-operand.value)
            return n.UnaryOp("-", operand)
        if self.accept_op("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> n.Expr:
        token = self.current

        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                if "e" in text or "E" in text:
                    return n.Literal(float(text))
                return n.Literal(Decimal(text))
            return n.Literal(int(text))
        if token.type is TokenType.STRING:
            self.advance()
            return n.Literal(token.value)
        if token.type is TokenType.HOSTPARAM:
            self.advance()
            return n.HostParam(token.value)
        if token.match("NULL"):
            self.advance()
            return n.Literal(None)
        if token.match("TRUE"):
            self.advance()
            return n.Literal(True)
        if token.match("FALSE"):
            self.advance()
            return n.Literal(False)
        if token.match("DATE") and self.peek().type is TokenType.STRING:
            self.advance()
            literal = self.advance().value
            return n.Literal(values.parse_date(literal))
        if token.match("TIMESTAMP") and self.peek().type is TokenType.STRING:
            self.advance()
            literal = self.advance().value
            return n.Literal(values.parse_timestamp(literal))
        if token.match("CAST"):
            return self._cast()
        if token.match("CASE"):
            return self._case()
        if token.match("TRIM"):
            return self._trim()
        if token.match("POSITION"):
            return self._position()
        if token.match("SUBSTRING"):
            return self._substring()
        if token.match("EXTRACT"):
            return self._extract()
        if token.match("EXISTS"):
            self.advance()
            self.expect_op("(")
            subquery = self._query()
            self.expect_op(")")
            return n.Exists(subquery)
        if self.accept_op("("):
            if self.current.match("SELECT"):
                subquery = self._query()
                self.expect_op(")")
                return n.SubqueryExpr(subquery)
            expr = self._expr()
            self.expect_op(")")
            return expr
        if token.type is TokenType.IDENT:
            return self._ident_expr()
        raise SqlParseError(
            f"unexpected token {token.value!r} in expression", token)

    def _ident_expr(self) -> n.Expr:
        name = self.advance().value
        if self.current.type is TokenType.OP and self.current.value == "(":
            self.advance()
            distinct = self.accept_keyword("DISTINCT") is not None
            args: list[n.Expr] = []
            if self.accept_op("*"):
                args.append(n.Star())
            elif not (self.current.type is TokenType.OP
                      and self.current.value == ")"):
                args.append(self._expr())
                while self.accept_op(","):
                    args.append(self._expr())
            self.expect_op(")")
            return n.FuncCall(name.upper(), args, distinct)
        parts = [name]
        while self.accept_op("."):
            parts.append(self.expect_ident())
        if len(parts) == 1:
            return n.ColumnRef(name)
        # a.b -> column b of binding a; a.b.c -> column c of the
        # schema-qualified table a.b.
        return n.ColumnRef(parts[-1], table=".".join(parts[:-1]))

    def _cast(self) -> n.Cast:
        self.expect_keyword("CAST")
        self.expect_op("(")
        operand = self._expr()
        self.expect_keyword("AS")
        type_name = self._type_name()
        fmt = None
        if self.accept_keyword("FORMAT"):
            if self.dialect != "legacy":
                raise SqlParseError(
                    "CAST .. FORMAT is a legacy-only construct")
            if self.current.type is not TokenType.STRING:
                raise SqlParseError(
                    "FORMAT expects a string literal", self.current)
            fmt = self.advance().value
        self.expect_op(")")
        return n.Cast(operand, type_name, fmt)

    def _case(self) -> n.CaseExpr:
        self.expect_keyword("CASE")
        base: n.Expr | None = None
        if not self.current.match("WHEN"):
            base = self._expr()
        whens: list[n.WhenClause] = []
        while self.accept_keyword("WHEN"):
            condition = self._expr()
            if base is not None:
                condition = n.BinaryOp("=", base, condition)
            self.expect_keyword("THEN")
            whens.append(n.WhenClause(condition, self._expr()))
        else_result = self._expr() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        if not whens:
            raise SqlParseError("CASE needs at least one WHEN")
        return n.CaseExpr(whens, else_result)

    def _trim(self) -> n.FuncCall:
        self.expect_keyword("TRIM")
        self.expect_op("(")
        side = "BOTH"
        if self.current.match("LEADING", "TRAILING", "BOTH"):
            side = self.advance().value
            self.expect_keyword("FROM")
        operand = self._expr()
        self.expect_op(")")
        name = {"BOTH": "TRIM", "LEADING": "LTRIM",
                "TRAILING": "RTRIM"}[side]
        return n.FuncCall(name, [operand])

    def _position(self) -> n.FuncCall:
        self.expect_keyword("POSITION")
        self.expect_op("(")
        # The needle parses below comparison precedence so that the IN
        # separator is not mistaken for an IN-list predicate.
        needle = self._concat()
        self.expect_keyword("IN")
        haystack = self._expr()
        self.expect_op(")")
        return n.FuncCall("POSITION", [needle, haystack])

    def _extract(self) -> n.FuncCall:
        self.expect_keyword("EXTRACT")
        self.expect_op("(")
        token = self.current
        if token.type in (TokenType.IDENT, TokenType.KEYWORD):
            part = self.advance().value.upper()
        else:
            raise SqlParseError(
                f"EXTRACT expects a date part, got {token.value!r}",
                token)
        self.expect_keyword("FROM")
        operand = self._expr()
        self.expect_op(")")
        return n.FuncCall("EXTRACT", [n.Literal(part), operand])

    def _substring(self) -> n.FuncCall:
        self.expect_keyword("SUBSTRING")
        self.expect_op("(")
        operand = self._expr()
        self.expect_keyword("FROM")
        start = self._expr()
        length = None
        if self.accept_keyword("FOR"):
            length = self._expr()
        self.expect_op(")")
        args = [operand, start] + ([length] if length is not None else [])
        return n.FuncCall("SUBSTR", args)


def parse_statement(sql: str, dialect: str = "legacy") -> n.Statement:
    """Parse one SQL statement in the given dialect."""
    return _Parser(sql, dialect).parse_statement()


def parse_expression(sql: str, dialect: str = "legacy") -> n.Expr:
    """Parse a standalone scalar expression (used in tests and tools)."""
    parser = _Parser(sql, dialect)
    expr = parser._expr()
    if parser.current.type is not TokenType.EOF:
        raise SqlParseError(
            f"trailing input at {parser.current.value!r}", parser.current)
    return expr
