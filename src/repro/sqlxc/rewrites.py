"""Legacy→CDW transformation rules and host-variable binding.

These are the rewrite rules Hyper-Q's Protocol Cross Compiler applies to
make legacy SQL executable on the CDW:

- :func:`map_type` — the legacy↔CDW type mapping of Section 6 ("a Unicode
  character type in the source script could be mapped to the national
  varchar type in the CDW type system");
- :func:`to_cdw` — structural rewrites: ``CAST .. FORMAT`` into
  ``TO_DATE``/``TO_TIMESTAMP`` calls, legacy function names into CDW ones,
  legacy ``UPDATE .. ELSE INSERT`` upserts into ``MERGE``;
- :func:`bind_params_to_columns` — replaces host variables ``:F`` with
  references to the staging table's columns, turning a tuple-at-a-time DML
  into the set-oriented form Hyper-Q executes over the staging table;
- :func:`bind_params_to_values` — replaces host variables with literals
  (how the reference legacy server and the Figure 11 baseline apply the
  DML to one input record at a time).
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import SqlTranslationError, UnboundParameterError
from repro.sqlxc import nodes as n

__all__ = [
    "map_type", "to_cdw", "bind_params_to_columns", "bind_params_to_values",
    "collect_host_params", "upsert_to_merge", "TYPE_MAP",
]

#: legacy base type -> CDW base type (Section 6's type mapping).
TYPE_MAP: dict[str, str] = {
    "VARCHAR": "VARCHAR",
    "CHAR": "CHAR",
    "UNICODE": "NVARCHAR",
    "BYTEINT": "SMALLINT",
    "SMALLINT": "SMALLINT",
    "INTEGER": "INT",
    "INT": "INT",
    "BIGINT": "BIGINT",
    "DECIMAL": "DECIMAL",
    "NUMERIC": "DECIMAL",
    "FLOAT": "DOUBLE",
    "DOUBLE": "DOUBLE",
    "DATE": "DATE",
    "TIMESTAMP": "TIMESTAMP",
}

#: legacy function name -> rewrite constructor.
_FUNCTION_MAP = {
    "ZEROIFNULL": lambda args: n.FuncCall("COALESCE", [args[0], n.Literal(0)]),
    "NULLIFZERO": lambda args: n.FuncCall("NULLIF", [args[0], n.Literal(0)]),
    # legacy INDEX(haystack, needle) and standard POSITION(needle IN
    # haystack) both become STRPOS(haystack, needle).
    "INDEX": lambda args: n.FuncCall("STRPOS", [args[0], args[1]]),
    "POSITION": lambda args: n.FuncCall("STRPOS", [args[1], args[0]]),
    "SUBSTR": lambda args: n.FuncCall("SUBSTR", list(args)),
}


def map_type(type_name: n.TypeName) -> n.TypeName:
    """Map a legacy type name to its CDW equivalent."""
    if type_name.dialect == "cdw":
        return type_name
    base = TYPE_MAP.get(type_name.base)
    if base is None:
        raise SqlTranslationError(
            f"legacy type {type_name.base} has no CDW mapping")
    return n.TypeName(base, type_name.length, type_name.scale, dialect="cdw")


def _rewrite_cast(cast: n.Cast) -> n.Expr:
    mapped = map_type(cast.type)
    if cast.format is None:
        return n.Cast(cast.operand, mapped)
    if mapped.base == "DATE":
        return n.FuncCall("TO_DATE", [cast.operand, n.Literal(cast.format)])
    if mapped.base == "TIMESTAMP":
        return n.FuncCall(
            "TO_TIMESTAMP", [cast.operand, n.Literal(cast.format)])
    raise SqlTranslationError(
        f"FORMAT cast to {cast.type.base} is not supported")


def upsert_to_merge(upsert: n.Upsert) -> n.Merge:
    """Rewrite the legacy atomic upsert into a CDW MERGE.

    ``UPDATE t SET a = x WHERE k = v ELSE INSERT INTO t VALUES (..)``
    becomes ``MERGE INTO t USING <source> ON k = v WHEN MATCHED THEN
    UPDATE SET a = x WHEN NOT MATCHED THEN INSERT VALUES (..)``.  The
    source is the staging table when the statement was bound over one
    (detected from table-qualified column references); otherwise a
    single-row constant source is synthesised.
    """
    update = upsert.update
    insert = upsert.insert
    if update.table.name != insert.table.name:
        raise SqlTranslationError(
            "upsert UPDATE and INSERT must address the same table")
    if update.where is None:
        raise SqlTranslationError("upsert UPDATE needs a WHERE clause")
    source_tables = {
        node.table
        for node in n.walk(update)
        if isinstance(node, n.ColumnRef) and node.table
        if node.table.upper() != (update.table.binding or "").upper()
        and node.table.upper() != update.table.name.upper()
    } | {
        node.table
        for node in n.walk(insert)
        if isinstance(node, n.ColumnRef) and node.table
        if node.table.upper() != insert.table.name.upper()
    }
    if len(source_tables) > 1:
        raise SqlTranslationError(
            f"upsert references several source tables: {source_tables}")
    if source_tables:
        alias = next(iter(source_tables))
        source: n.TableRef | n.Select = n.TableRef(alias)
        source_alias = alias
    else:
        # Constant upsert: synthesise SELECT <nothing> ... a one-row dual.
        source = n.Select(items=[n.SelectItem(n.Literal(1), "dummy")])
        source_alias = "src"
    if not isinstance(insert.source, n.Values) or len(insert.source.rows) != 1:
        raise SqlTranslationError(
            "upsert INSERT must carry exactly one VALUES row")
    return n.Merge(
        target=update.table,
        source=source,
        source_alias=source_alias,
        on=update.where,
        matched=n.MergeMatched(assignments=update.assignments),
        not_matched=n.MergeNotMatched(
            columns=list(insert.columns),
            values=list(insert.source.rows[0])),
    )


def to_cdw(statement: n.Statement) -> n.Statement:
    """Apply every legacy→CDW structural rewrite to a statement."""

    def rule(node: n.Node) -> n.Node:
        if isinstance(node, n.Cast):
            return _rewrite_cast(node)
        if isinstance(node, n.FuncCall) and node.name in _FUNCTION_MAP:
            return _FUNCTION_MAP[node.name](node.args)
        if isinstance(node, n.TypeName):
            return map_type(node)
        if isinstance(node, n.Upsert):
            return upsert_to_merge(node)
        return node

    return n.transform(statement, rule)


def collect_host_params(statement: n.Node) -> list[str]:
    """All distinct host variable names, in first-appearance order."""
    seen: list[str] = []
    for node in n.walk(statement):
        if isinstance(node, n.HostParam) and node.name not in seen:
            seen.append(node.name)
    return seen


def bind_params_to_columns(statement: n.Statement, field_names: list[str],
                           table_alias: str) -> n.Statement:
    """Replace ``:F`` with ``alias.F`` for every layout field ``F``.

    This is the key step that turns the script's tuple-at-a-time DML into
    the set-oriented DML Hyper-Q runs over the staging table.
    """
    known = {name.upper(): name for name in field_names}

    def rule(node: n.Node) -> n.Node:
        if isinstance(node, n.HostParam):
            actual = known.get(node.name.upper())
            if actual is None:
                raise UnboundParameterError(
                    f"host variable :{node.name} is not a layout field "
                    f"(fields: {', '.join(field_names)})")
            return n.ColumnRef(actual, table=table_alias)
        return node

    return n.transform(statement, rule)


def bind_params_to_values(statement: n.Statement,
                          bindings: Mapping[str, object]) -> n.Statement:
    """Replace ``:F`` with the literal value of field ``F`` of one record."""
    upper = {key.upper(): value for key, value in bindings.items()}

    def rule(node: n.Node) -> n.Node:
        if isinstance(node, n.HostParam):
            key = node.name.upper()
            if key not in upper:
                raise UnboundParameterError(
                    f"host variable :{node.name} has no binding")
            return n.BoundParam(node.name, upper[key])
        return node

    return n.transform(statement, rule)
