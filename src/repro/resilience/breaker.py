"""Per-target circuit breakers for the cloud-facing interfaces.

Retry alone turns a *down* dependency into a pile-up: every session
burns its full backoff budget against an interface that cannot succeed,
multiplying latency and load exactly when the remote side needs relief.
The :class:`CircuitBreaker` adds the standard three-state machine in
front of each target (``store.upload``, ``copy.into``, ``dml.apply``,
...):

- **closed** — calls pass through; consecutive failures are counted;
- **open** — after ``failure_threshold`` consecutive failures the
  breaker rejects calls instantly with
  :class:`~repro.errors.CircuitOpenError` (not transient, so the retry
  layer fails fast instead of hammering);
- **half-open** — once ``cooldown_s`` has elapsed, a limited number of
  probe calls are admitted; one success closes the breaker, one failure
  re-opens it and restarts the cooldown.

Breakers compose *inside* retry (``retry.call(lambda:
breaker.call(op))``): each attempt consults the breaker, so a breaker
that opens mid-retry stops the remaining attempts immediately.
"""

from __future__ import annotations

import threading
import time

from repro.errors import CircuitOpenError

__all__ = ["CircuitBreaker", "CircuitBreakerRegistry"]

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """One target's three-state breaker (thread-safe)."""

    def __init__(self, target: str, failure_threshold: int = 5,
                 cooldown_s: float = 5.0, half_open_max_calls: int = 1,
                 clock=time.monotonic, obs=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s cannot be negative")
        if half_open_max_calls < 1:
            raise ValueError("half_open_max_calls must be >= 1")
        self.target = target
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_max_calls = half_open_max_calls
        self.clock = clock
        self.obs = obs
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_in_flight = 0
        #: lifetime counters for stats().
        self.rejections = 0
        self.opens = 0

    # -- state machine ---------------------------------------------------------

    def _transition(self, state: str) -> None:
        """Must hold the lock; records the transition metric."""
        if state == self._state:
            return
        self._state = state
        if state == OPEN:
            self.opens += 1
            self._opened_at = self.clock()
        if state != HALF_OPEN:
            self._half_open_in_flight = 0
        if self.obs is not None:
            self.obs.breaker_transitions.labels(
                target=self.target, state=state).inc()
            self.obs.breaker_open.labels(target=self.target).set(
                1.0 if state == OPEN else 0.0)
            flight = getattr(self.obs, "flight", None)
            if flight is not None:
                # Breaker trips are node-wide events: they gate every
                # job that shares the target, not one job's history.
                flight.record_node("breaker_transition",
                                   target=self.target, state=state)

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and \
                self.clock() - self._opened_at >= self.cooldown_s:
            self._transition(HALF_OPEN)

    def allow(self) -> None:
        """Admit one call or raise :class:`CircuitOpenError`."""
        with self._lock:
            self._maybe_half_open()
            if self._state == OPEN:
                self.rejections += 1
                remaining = self.cooldown_s - (
                    self.clock() - self._opened_at)
                raise CircuitOpenError(self.target,
                                       retry_after_s=max(remaining, 0.0))
            if self._state == HALF_OPEN:
                if self._half_open_in_flight >= self.half_open_max_calls:
                    self.rejections += 1
                    raise CircuitOpenError(self.target,
                                           retry_after_s=0.0)
                self._half_open_in_flight += 1

    def on_success(self) -> None:
        """Report a successful call: closes a half-open breaker."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._transition(CLOSED)

    def on_failure(self) -> None:
        """Report a failed call: may open the breaker."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._transition(OPEN)
            elif self._state == CLOSED and \
                    self._consecutive_failures >= self.failure_threshold:
                self._transition(OPEN)

    def call(self, fn):
        """Run ``fn`` under the breaker's admission control."""
        self.allow()
        try:
            result = fn()
        except BaseException:
            self.on_failure()
            raise
        self.on_success()
        return result

    def snapshot(self) -> dict:
        """Stats-friendly view of the breaker's state and counters."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "opens": self.opens,
                "rejections": self.rejections,
            }


class CircuitBreakerRegistry:
    """Lazily materializes one breaker per target with shared settings."""

    def __init__(self, failure_threshold: int = 5, cooldown_s: float = 5.0,
                 half_open_max_calls: int = 1, clock=time.monotonic,
                 obs=None):
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_max_calls = half_open_max_calls
        self.clock = clock
        self.obs = obs
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    @classmethod
    def from_config(cls, config, obs=None,
                    clock=time.monotonic) -> "CircuitBreakerRegistry":
        """Build the node registry from a :class:`HyperQConfig`."""
        return cls(
            failure_threshold=config.breaker_failure_threshold,
            cooldown_s=config.breaker_cooldown_s,
            clock=clock, obs=obs)

    def get(self, target: str) -> CircuitBreaker:
        """The breaker guarding ``target`` (created on first use)."""
        with self._lock:
            breaker = self._breakers.get(target)
            if breaker is None:
                breaker = CircuitBreaker(
                    target, failure_threshold=self.failure_threshold,
                    cooldown_s=self.cooldown_s,
                    half_open_max_calls=self.half_open_max_calls,
                    clock=self.clock, obs=self.obs)
                self._breakers[target] = breaker
        return breaker

    def snapshot(self) -> dict:
        """Per-target breaker states for ``HyperQNode.stats()``."""
        with self._lock:
            breakers = dict(self._breakers)
        return {target: b.snapshot()
                for target, b in sorted(breakers.items())}
