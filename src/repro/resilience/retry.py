"""Retry with exponential backoff and full jitter.

The legacy utilities Hyper-Q virtualizes assume a co-located EDW that
either works or is down; the cloud interfaces underneath the
virtualization layer instead fail *transiently* all the time (throttled
PUTs, broken connections, momentary COPY refusals).  The
:class:`RetryPolicy` absorbs those without changing observable job
semantics: only errors classified transient are retried, delays grow
exponentially with *full jitter* (delay drawn uniformly from
``[0, min(cap, base * multiplier**attempt)]`` — the AWS-recommended
variant that de-synchronizes competing retriers), and a per-call sleep
budget bounds worst-case added latency.

One policy instance is shared by every call site on a node: its
thread-safe counters are the node-level ``retry_attempts`` /
``retry_giveups`` telemetry, and each absorbed failure is emitted both
as a labeled metric and as a ``retry`` child span of the operation that
failed.
"""

from __future__ import annotations

import random
import threading
import time

from repro.errors import FaultInjected, TransportClosed

__all__ = ["RetryPolicy", "is_transient", "full_jitter_delay"]


def is_transient(exc: BaseException) -> bool:
    """Default retry predicate: should this failure be retried?

    Injected faults carry their class explicitly; a dropped transport is
    always worth one more try; anything else may opt in by exposing a
    truthy ``transient`` attribute.  Genuine data/SQL errors
    (``BulkExecutionError``, ``DataFormatError``, ...) stay permanent —
    retrying them would just re-fail and mask the real problem.
    """
    if isinstance(exc, FaultInjected):
        return exc.transient
    if isinstance(exc, TransportClosed):
        return True
    return bool(getattr(exc, "transient", False))


def full_jitter_delay(attempt: int, base_s: float, cap_s: float,
                      rng: random.Random, multiplier: float = 2.0) -> float:
    """One full-jitter backoff delay for the ``attempt``-th retry (1-based)."""
    ceiling = min(cap_s, base_s * (multiplier ** max(attempt - 1, 0)))
    return rng.uniform(0.0, ceiling)


class RetryPolicy:
    """Bounded transient-only retry around one callable.

    ``call(fn)`` runs ``fn`` up to ``max_attempts`` times.  The policy is
    deliberately *stateless per call* (no half-open bookkeeping — that is
    the circuit breaker's job) but *stateful as telemetry*: the shared
    instance counts every retry and give-up across the node.
    """

    def __init__(self, max_attempts: int = 4,
                 base_delay_s: float = 0.05,
                 max_delay_s: float = 2.0,
                 multiplier: float = 2.0,
                 budget_s: float = 30.0,
                 classify=is_transient,
                 rng: random.Random | None = None,
                 sleep=time.sleep):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay_s < 0 or max_delay_s < 0 or budget_s < 0:
            raise ValueError("retry delays cannot be negative")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.multiplier = multiplier
        self.budget_s = budget_s
        self.classify = classify
        self.rng = rng or random.Random()
        self.sleep = sleep
        self._lock = threading.Lock()
        #: total absorbed failures (i.e. re-attempts actually made).
        self.attempts_total = 0
        #: calls that exhausted attempts/budget on a transient error.
        self.giveups_total = 0
        #: per-target attempt counts for stats().
        self.by_target: dict[str, int] = {}

    @classmethod
    def from_config(cls, config, rng: random.Random | None = None,
                    sleep=time.sleep) -> "RetryPolicy":
        """Build the node policy from a :class:`HyperQConfig`."""
        return cls(
            max_attempts=config.retry_max_attempts,
            base_delay_s=config.retry_base_delay_s,
            max_delay_s=config.retry_max_delay_s,
            budget_s=config.retry_budget_s,
            rng=rng, sleep=sleep)

    def delay(self, attempt: int) -> float:
        """The jittered delay before the ``attempt``-th retry (1-based)."""
        with self._lock:
            return full_jitter_delay(
                attempt, self.base_delay_s, self.max_delay_s, self.rng,
                self.multiplier)

    def _count(self, target: str, gave_up: bool = False) -> None:
        with self._lock:
            if gave_up:
                self.giveups_total += 1
            else:
                self.attempts_total += 1
                self.by_target[target] = self.by_target.get(target, 0) + 1

    def call(self, fn, *, target: str = "", obs=None, parent=None,
             job_id: str = ""):
        """Run ``fn`` with transient-only retry; returns its result.

        ``obs`` (an :class:`repro.obs.Observability`) makes each retry a
        labeled counter increment and a ``retry`` child span of
        ``parent`` recording the attempt number, the absorbed error, and
        the backoff chosen — so a traced job shows exactly where time
        went when the cloud misbehaved.  With a ``job_id``, each retry
        (and give-up) also lands in that job's flight recorder so a
        post-mortem bundle carries the full retry history.
        """
        flight = getattr(obs, "flight", None) if job_id else None
        slept = 0.0
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except BaseException as exc:
                retryable = self.classify(exc)
                out_of_attempts = attempt >= self.max_attempts
                delay = 0.0 if out_of_attempts else self.delay(attempt)
                # Server-provided backoff hints (WlmThrottled and
                # friends expose ``retry_after_s``) floor the jittered
                # delay: retrying sooner than the peer asked would just
                # re-trip the same admission limit.  The floor is capped
                # at the *remaining* sleep budget so a single large hint
                # cannot turn a configured multi-attempt retry into an
                # instant give-up.
                if not out_of_attempts:
                    hint = float(
                        getattr(exc, "retry_after_s", 0.0) or 0.0)
                    if hint > 0:
                        remaining = max(self.budget_s - slept, 0.0)
                        delay = max(delay, min(hint, remaining))
                over_budget = slept + delay > self.budget_s
                if not retryable or out_of_attempts or over_budget:
                    if retryable:
                        self._count(target, gave_up=True)
                        if obs is not None:
                            obs.retry_giveups.labels(target=target).inc()
                        if flight is not None:
                            flight.record(
                                job_id, "retry_giveup", target=target,
                                attempt=attempt, error=str(exc))
                    raise
                self._count(target)
                if obs is not None:
                    obs.retry_attempts.labels(target=target).inc()
                    span = obs.tracer.span(
                        "retry", parent=parent, target=target,
                        attempt=attempt, delay_s=round(delay, 6),
                        error=str(exc))
                    span.end("error")
                if flight is not None:
                    flight.record(
                        job_id, "retry", target=target, attempt=attempt,
                        delay_s=round(delay, 4), error=str(exc))
                if delay > 0:
                    self.sleep(delay)
                slept += delay
        raise AssertionError("unreachable")  # pragma: no cover

    def snapshot(self) -> dict:
        """Stats-friendly counters for ``HyperQNode.stats()``."""
        with self._lock:
            return {
                "max_attempts": self.max_attempts,
                "attempts": self.attempts_total,
                "giveups": self.giveups_total,
                "by_target": dict(sorted(self.by_target.items())),
            }
