"""repro.resilience — retry, circuit breaking, and checkpointed restart.

The counterpart of :mod:`repro.faults`: where the injector makes the
cloud interfaces fail on demand, this package makes the virtualization
layer survive those failures without changing observable ETL semantics:

- :class:`RetryPolicy` — exponential backoff with full jitter, a sleep
  budget, and a transient-only predicate (:func:`is_transient`);
- :class:`CircuitBreaker` / :class:`CircuitBreakerRegistry` — per-target
  closed/open/half-open admission control that fails fast while a
  dependency is down;
- :class:`CheckpointJournal` — chunk-level load-job checkpointing so an
  interrupted job restarts without re-sending or re-uploading work that
  is already durable (the FastLoad checkpoint/restart semantics of
  Section 2).

See ``docs/RESILIENCE.md`` for how the pieces compose on each path.
"""

from __future__ import annotations

from repro.resilience.breaker import CircuitBreaker, CircuitBreakerRegistry
from repro.resilience.checkpoint import CheckpointJournal
from repro.resilience.retry import (
    RetryPolicy, full_jitter_delay, is_transient,
)

__all__ = [
    "RetryPolicy", "is_transient", "full_jitter_delay",
    "CircuitBreaker", "CircuitBreakerRegistry",
    "CheckpointJournal",
]
