"""Chunk-level checkpoint journal for restartable load jobs.

The legacy utilities the paper virtualizes (FastLoad/MultiLoad, Section
2) write checkpoint records so an interrupted load restarts *from the
checkpoint* instead of from scratch.  The reproduction mirrors that at
both ends of the wire with one append-only JSONL journal:

- **client side** — every acknowledged chunk sequence number is recorded
  (``ack`` records); on restart these narrow the set of chunks the
  client skips (an ack alone is *not* durability under the
  immediate-ack pipeline — the gateway's BEGIN_LOAD_OK reply carries
  the authoritative durable set);
- **gateway side** — each finalized staging file is recorded with the
  chunk manifest it contains (``staged``), each durable upload
  (``uploaded``), and the terminal ``COPY INTO`` (``copy``); a resumed
  :class:`~repro.core.pipeline.AcquisitionPipeline` re-uploads *zero*
  already-durable files, re-enqueues staged-but-unuploaded local files,
  and treats every chunk inside a durable file as already seen.

Records are single-line JSON objects with a ``t`` type tag; a torn final
line (the process died mid-append) is ignored on load, so a journal is
always readable after a crash.
"""

from __future__ import annotations

import json
import os
import threading

__all__ = ["CheckpointJournal"]


class CheckpointJournal:
    """Append-only JSONL journal of load-job progress (thread-safe)."""

    def __init__(self, path: str, fresh: bool = False,
                 fsync: bool = False):
        self.path = path
        self.fsync = fsync
        self._lock = threading.Lock()
        #: chunk seqs the server acknowledged (client-side records).
        self.acked: set[int] = set()
        #: finalized staging files: name -> its ``staged`` record.
        self.staged: dict[str, dict] = {}
        #: staging files durably uploaded to the cloud store.
        self.uploaded: set[str] = set()
        #: rows landed by a completed COPY INTO (None = not yet run).
        self.copy_rows: int | None = None
        #: blobs already copied by the eager-apply coordinator
        #: (blob name -> rows landed).
        self.eager_copied: dict[str, int] = {}
        #: highest chunk seq below which every staged row has been
        #: eagerly applied (None = eager apply never ran).
        self.eager_applied_below: int | None = None
        #: staging ``__SEQ``\ s the dq precheck already routed to the
        #: error table — resume re-deletes but never re-records them.
        self.dq_routed: set[int] = set()
        #: how many records were replayed from an existing journal.
        self.replayed = 0
        if fresh and os.path.exists(path):
            os.unlink(path)
        elif os.path.exists(path):
            self._load()
        self._handle = open(path, "a", encoding="utf-8")

    # -- load / replay ---------------------------------------------------------

    def _load(self) -> None:
        valid_bytes = 0
        with open(self.path, "rb") as handle:
            for raw in handle:
                line = raw.decode("utf-8", errors="replace").strip()
                if line:
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        break  # torn tail write from a crash — stop
                    self._apply(record)
                    self.replayed += 1
                if not raw.endswith(b"\n"):
                    break  # unterminated tail — do not append onto it
                valid_bytes += len(raw)
        if valid_bytes < os.path.getsize(self.path):
            # Drop the torn tail so future appends start a fresh line.
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)

    def _apply(self, record: dict) -> None:
        kind = record.get("t")
        if kind == "ack":
            self.acked.add(record["seq"])
        elif kind == "staged":
            self.staged[record["file"]] = record
        elif kind == "uploaded":
            self.uploaded.add(record["file"])
        elif kind == "copy":
            self.copy_rows = record["rows"]
        elif kind == "eager_copy":
            self.eager_copied[record["blob"]] = record["rows"]
        elif kind == "eager_apply":
            self.eager_applied_below = record["below_chunk"]
        elif kind == "dq_route":
            self.dq_routed.update(record["seqs"])
        # unknown record types are skipped: forward compatibility

    # -- appends ----------------------------------------------------------------

    def _append(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            self._apply(record)
            self._handle.write(line + "\n")
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())

    def record_ack(self, seq: int) -> None:
        """Client side: the server acknowledged chunk ``seq``."""
        self._append({"t": "ack", "seq": seq})

    def record_staged(self, name: str, *, path: str, size: int,
                      records: int, chunks: list[dict]) -> None:
        """Gateway side: staging file finalized with this chunk manifest.

        ``chunks`` entries are ``{"seq": int, "records": int,
        "errors": [...]}`` — enough to reconstruct
        ``pipeline.chunk_records`` and the acquisition-error list for
        every chunk the file contains.
        """
        self._append({"t": "staged", "file": name, "path": path,
                      "size": size, "records": records, "chunks": chunks})

    def record_uploaded(self, name: str) -> None:
        """Gateway side: the staging file is durable in the cloud store."""
        self._append({"t": "uploaded", "file": name})

    def record_copy(self, rows: int) -> None:
        """Gateway side: COPY INTO the staging table completed."""
        self._append({"t": "copy", "rows": rows})

    def record_eager_copy(self, blob: str, rows: int) -> None:
        """Gateway side: the eager coordinator COPYed one blob."""
        self._append({"t": "eager_copy", "blob": blob, "rows": rows})

    def record_eager_apply(self, below_chunk: int) -> None:
        """Gateway side: every chunk seq below ``below_chunk`` applied."""
        self._append({"t": "eager_apply", "below_chunk": below_chunk})

    def record_dq_route(self, seqs) -> None:
        """Gateway side: the dq precheck routed these staging seqs to
        the error table and deleted them from staging."""
        self._append({"t": "dq_route", "seqs": sorted(seqs)})

    # -- resume queries ----------------------------------------------------------

    def is_uploaded(self, name: str) -> bool:
        """Is the named staging file already durable in the store?"""
        with self._lock:
            return name in self.uploaded

    def durable_files(self) -> list[dict]:
        """``staged`` records of files already uploaded."""
        with self._lock:
            return [rec for name, rec in sorted(self.staged.items())
                    if name in self.uploaded]

    def pending_files(self) -> list[dict]:
        """``staged`` records finalized locally but never uploaded."""
        with self._lock:
            return [rec for name, rec in sorted(self.staged.items())
                    if name not in self.uploaded]

    def durable_chunks(self) -> dict[int, dict]:
        """Chunks that need not be resent: seq -> manifest entry.

        A chunk is durable once the staging file containing it is either
        uploaded or still present on local disk (the resumed pipeline
        re-enqueues such files for upload itself).
        """
        out: dict[int, dict] = {}
        with self._lock:
            for name, rec in self.staged.items():
                if name not in self.uploaded and \
                        not os.path.exists(rec.get("path", "")):
                    continue  # lost with the local disk state
                for chunk in rec.get("chunks", ()):
                    out[chunk["seq"]] = chunk
        return out

    def snapshot(self) -> dict:
        """Stats-friendly summary for ``HyperQNode.stats()``."""
        with self._lock:
            return {
                "path": self.path,
                "acked_chunks": len(self.acked),
                "staged_files": len(self.staged),
                "uploaded_files": len(self.uploaded),
                "copy_rows": self.copy_rows,
                "replayed_records": self.replayed,
            }

    def close(self) -> None:
        """Close the journal file (idempotent)."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "CheckpointJournal":
        """Context-manager support: returns the journal."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close on context exit."""
        self.close()
