"""Chunk-level checkpoint journal for restartable load jobs.

The legacy utilities the paper virtualizes (FastLoad/MultiLoad, Section
2) write checkpoint records so an interrupted load restarts *from the
checkpoint* instead of from scratch.  The reproduction mirrors that at
both ends of the wire with one append-only JSONL journal:

- **client side** — every acknowledged chunk sequence number is recorded
  (``ack`` records); on restart these narrow the set of chunks the
  client skips (an ack alone is *not* durability under the
  immediate-ack pipeline — the gateway's BEGIN_LOAD_OK reply carries
  the authoritative durable set);
- **gateway side** — each finalized staging file is recorded with the
  chunk manifest it contains (``staged``), each durable upload
  (``uploaded``), and the terminal ``COPY INTO`` (``copy``); a resumed
  :class:`~repro.core.pipeline.AcquisitionPipeline` re-uploads *zero*
  already-durable files, re-enqueues staged-but-unuploaded local files,
  and treats every chunk inside a durable file as already seen.

Records are single-line JSON objects with a ``t`` type tag; a torn final
line (the process died mid-append) is ignored on load, so a journal is
always readable after a crash.
"""

from __future__ import annotations

import json
import os
import threading

__all__ = ["CheckpointJournal"]


class CheckpointJournal:
    """Append-only JSONL journal of load-job progress (thread-safe)."""

    def __init__(self, path: str, fresh: bool = False,
                 fsync: bool = False):
        self.path = path
        self.fsync = fsync
        self._lock = threading.Lock()
        #: chunk seqs the server acknowledged (client-side records).
        self.acked: set[int] = set()
        #: finalized staging files: name -> its ``staged`` record.
        self.staged: dict[str, dict] = {}
        #: staging files durably uploaded to the cloud store.
        self.uploaded: set[str] = set()
        #: rows landed by a completed COPY INTO (None = not yet run).
        self.copy_rows: int | None = None
        #: blobs already copied by the eager-apply coordinator
        #: (blob name -> rows landed).
        self.eager_copied: dict[str, int] = {}
        #: highest chunk seq below which every staged row has been
        #: eagerly applied (None = eager apply never ran).
        self.eager_applied_below: int | None = None
        #: staging ``__SEQ``\ s the dq precheck already routed to the
        #: error table — resume re-deletes but never re-records them.
        self.dq_routed: set[int] = set()
        #: highest committed micro-batch sequence of a streaming feed
        #: (None = no stream commit journaled); with its source cursor,
        #: total rows, and the accepted wire layout it forms the feed's
        #: durable watermark (repro.stream).
        self.stream_committed_seq: int | None = None
        self.stream_cursor: str | None = None
        self.stream_rows: int = 0
        self.stream_layout: dict | None = None
        #: schema-drift events accepted so far (wire dicts, in order).
        self.stream_drift: list[dict] = []
        #: how many records were replayed from an existing journal.
        self.replayed = 0
        if fresh and os.path.exists(path):
            os.unlink(path)
        elif os.path.exists(path):
            self._load()
        self._handle = open(path, "a", encoding="utf-8")

    # -- load / replay ---------------------------------------------------------

    def _load(self) -> None:
        valid_bytes = 0
        with open(self.path, "rb") as handle:
            for raw in handle:
                line = raw.decode("utf-8", errors="replace").strip()
                if line:
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        break  # torn tail write from a crash — stop
                    self._apply(record)
                    self.replayed += 1
                if not raw.endswith(b"\n"):
                    break  # unterminated tail — do not append onto it
                valid_bytes += len(raw)
        if valid_bytes < os.path.getsize(self.path):
            # Drop the torn tail so future appends start a fresh line.
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)

    def _apply(self, record: dict) -> None:
        kind = record.get("t")
        if kind == "ack":
            self.acked.add(record["seq"])
        elif kind == "staged":
            self.staged[record["file"]] = record
        elif kind == "uploaded":
            self.uploaded.add(record["file"])
        elif kind == "copy":
            self.copy_rows = record["rows"]
        elif kind == "eager_copy":
            self.eager_copied[record["blob"]] = record["rows"]
        elif kind == "eager_apply":
            self.eager_applied_below = record["below_chunk"]
        elif kind == "dq_route":
            self.dq_routed.update(record["seqs"])
        elif kind == "stream_commit":
            seq = record["seq"]
            if self.stream_committed_seq is None \
                    or seq > self.stream_committed_seq:
                self.stream_committed_seq = seq
                self.stream_cursor = record.get("cursor")
            self.stream_rows = record.get(
                "total_rows", self.stream_rows + record.get("rows", 0))
            if record.get("layout") is not None:
                self.stream_layout = record["layout"]
        elif kind == "stream_drift":
            self.stream_drift.extend(record.get("events", ()))
            if record.get("layout") is not None:
                self.stream_layout = record["layout"]
        # unknown record types are skipped: forward compatibility

    # -- appends ----------------------------------------------------------------

    def _append(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            self._apply(record)
            self._handle.write(line + "\n")
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())

    def record_ack(self, seq: int) -> None:
        """Client side: the server acknowledged chunk ``seq``."""
        self._append({"t": "ack", "seq": seq})

    def record_staged(self, name: str, *, path: str, size: int,
                      records: int, chunks: list[dict]) -> None:
        """Gateway side: staging file finalized with this chunk manifest.

        ``chunks`` entries are ``{"seq": int, "records": int,
        "errors": [...]}`` — enough to reconstruct
        ``pipeline.chunk_records`` and the acquisition-error list for
        every chunk the file contains.
        """
        self._append({"t": "staged", "file": name, "path": path,
                      "size": size, "records": records, "chunks": chunks})

    def record_uploaded(self, name: str) -> None:
        """Gateway side: the staging file is durable in the cloud store."""
        self._append({"t": "uploaded", "file": name})

    def record_copy(self, rows: int) -> None:
        """Gateway side: COPY INTO the staging table completed."""
        self._append({"t": "copy", "rows": rows})

    def record_eager_copy(self, blob: str, rows: int) -> None:
        """Gateway side: the eager coordinator COPYed one blob."""
        self._append({"t": "eager_copy", "blob": blob, "rows": rows})

    def record_eager_apply(self, below_chunk: int) -> None:
        """Gateway side: every chunk seq below ``below_chunk`` applied."""
        self._append({"t": "eager_apply", "below_chunk": below_chunk})

    def record_dq_route(self, seqs) -> None:
        """Gateway side: the dq precheck routed these staging seqs to
        the error table and deleted them from staging."""
        self._append({"t": "dq_route", "seqs": sorted(seqs)})

    def record_stream_commit(self, seq: int, *, cursor: str | None = None,
                             rows: int = 0,
                             layout: dict | None = None) -> None:
        """Stream feed: micro-batch ``seq`` is fully applied.

        Journaled *before* the APPLY_RESULT reply leaves the gateway, so
        a feed resumed after any crash either skips the batch (commit
        record present) or redoes it through the normal per-batch resume
        path (commit record absent) — never both.
        """
        self._append({"t": "stream_commit", "seq": seq, "cursor": cursor,
                      "rows": rows, "layout": layout})

    def record_stream_drift(self, seq: int, events: list[dict],
                            layout: dict | None = None) -> None:
        """Stream feed: schema drift accepted while opening batch ``seq``.

        ``events`` are wire-shaped drift descriptions; ``layout`` is the
        feed's accepted wire layout *after* applying them.
        """
        self._append({"t": "stream_drift", "seq": seq, "events": events,
                      "layout": layout})

    # -- compaction --------------------------------------------------------------

    def compact(self) -> int:
        """Rewrite the journal as consolidated state; return bytes saved.

        Called at micro-batch commit boundaries so a long-running feed's
        watermark journal stays O(state) instead of O(history): the
        per-batch ``stream_commit`` records collapse into one carrying
        the accumulated row total, drift events collapse into a single
        record, and load-job records are re-emitted in replay order.
        The rewrite goes to a temp file that replaces the journal with
        ``os.replace`` — a crash mid-compaction leaves either the old
        journal or the new one, both fully valid, and the torn-tail
        rules of :meth:`_load` still cover any interrupted append that
        follows.
        """
        with self._lock:
            records: list[dict] = []
            for seq in sorted(self.acked):
                records.append({"t": "ack", "seq": seq})
            for name in sorted(self.staged):
                records.append(self.staged[name])
            for name in sorted(self.uploaded):
                records.append({"t": "uploaded", "file": name})
            if self.copy_rows is not None:
                records.append({"t": "copy", "rows": self.copy_rows})
            for blob in sorted(self.eager_copied):
                records.append({"t": "eager_copy", "blob": blob,
                                "rows": self.eager_copied[blob]})
            if self.eager_applied_below is not None:
                records.append({"t": "eager_apply",
                                "below_chunk": self.eager_applied_below})
            if self.dq_routed:
                records.append({"t": "dq_route",
                                "seqs": sorted(self.dq_routed)})
            if self.stream_drift:
                records.append({"t": "stream_drift", "seq": -1,
                                "events": list(self.stream_drift),
                                "layout": self.stream_layout})
            if self.stream_committed_seq is not None:
                records.append({"t": "stream_commit",
                                "seq": self.stream_committed_seq,
                                "cursor": self.stream_cursor,
                                "total_rows": self.stream_rows,
                                "layout": self.stream_layout})
            before = os.path.getsize(self.path) \
                if os.path.exists(self.path) else 0
            tmp_path = self.path + ".tmp"
            with open(tmp_path, "w", encoding="utf-8") as tmp:
                for record in records:
                    tmp.write(json.dumps(record, separators=(",", ":"))
                              + "\n")
                tmp.flush()
                os.fsync(tmp.fileno())
            if not self._handle.closed:
                self._handle.close()
            os.replace(tmp_path, self.path)
            self._handle = open(self.path, "a", encoding="utf-8")
            return max(0, before - os.path.getsize(self.path))

    # -- resume queries ----------------------------------------------------------

    def is_uploaded(self, name: str) -> bool:
        """Is the named staging file already durable in the store?"""
        with self._lock:
            return name in self.uploaded

    def durable_files(self) -> list[dict]:
        """``staged`` records of files already uploaded."""
        with self._lock:
            return [rec for name, rec in sorted(self.staged.items())
                    if name in self.uploaded]

    def pending_files(self) -> list[dict]:
        """``staged`` records finalized locally but never uploaded."""
        with self._lock:
            return [rec for name, rec in sorted(self.staged.items())
                    if name not in self.uploaded]

    def durable_chunks(self) -> dict[int, dict]:
        """Chunks that need not be resent: seq -> manifest entry.

        A chunk is durable once the staging file containing it is either
        uploaded or still present on local disk (the resumed pipeline
        re-enqueues such files for upload itself).
        """
        out: dict[int, dict] = {}
        with self._lock:
            for name, rec in self.staged.items():
                if name not in self.uploaded and \
                        not os.path.exists(rec.get("path", "")):
                    continue  # lost with the local disk state
                for chunk in rec.get("chunks", ()):
                    out[chunk["seq"]] = chunk
        return out

    def snapshot(self) -> dict:
        """Stats-friendly summary for ``HyperQNode.stats()``."""
        with self._lock:
            return {
                "path": self.path,
                "acked_chunks": len(self.acked),
                "staged_files": len(self.staged),
                "uploaded_files": len(self.uploaded),
                "copy_rows": self.copy_rows,
                "replayed_records": self.replayed,
                "stream_committed_seq": self.stream_committed_seq,
                "stream_rows": self.stream_rows,
                "stream_drift_events": len(self.stream_drift),
            }

    def close(self) -> None:
        """Close the journal file (idempotent)."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "CheckpointJournal":
        """Context-manager support: returns the journal."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close on context exit."""
        self.close()
