"""In-memory byte-stream transport.

The paper's Hyper-Q sits between an unmodified legacy client and the cloud
warehouse, listening on a TCP port.  For a hermetic, deterministic test bed
we replace the TCP socket with an in-memory duplex byte stream that has the
same essential properties:

- it carries *bytes*, not messages — writes can be split at arbitrary
  boundaries (an optional ``mtu`` forces splitting), so the receiving side
  genuinely needs the Coalescer of Figure 2 to reassemble frames;
- reads block until data or EOF;
- both ends can be driven from different threads.

:class:`Listener` plays the role of the server socket the Alpha process
listens on.
"""

from __future__ import annotations

import queue
import threading

from repro.errors import TransportClosed

__all__ = ["Endpoint", "Listener", "pipe"]

_EOF = object()


class _HalfStream:
    """One direction of a duplex stream: a byte queue with EOF."""

    def __init__(self, mtu: int | None = None):
        self._queue: queue.Queue = queue.Queue()
        self._mtu = mtu
        self._closed = False
        self._lock = threading.Lock()

    def write(self, data: bytes) -> None:
        with self._lock:
            if self._closed:
                raise TransportClosed("write on closed stream")
        if self._mtu is None:
            self._queue.put(bytes(data))
            return
        for start in range(0, len(data), self._mtu):
            self._queue.put(bytes(data[start:start + self._mtu]))

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_EOF)

    def read(self, timeout: float | None = None) -> bytes | None:
        """Return the next chunk, or ``None`` on EOF."""
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            raise TransportClosed(
                f"no data within {timeout}s (peer hung?)") from None
        if item is _EOF:
            self._queue.put(_EOF)  # keep EOF observable for repeat reads
            return None
        return item


class Endpoint:
    """One end of a duplex in-memory connection."""

    def __init__(self, outgoing: _HalfStream, incoming: _HalfStream,
                 name: str = ""):
        self._out = outgoing
        self._in = incoming
        self.name = name

    def send_bytes(self, data: bytes) -> None:
        """Write bytes to the peer (may split at the MTU)."""
        self._out.write(data)

    def recv_bytes(self, timeout: float | None = None) -> bytes | None:
        """Receive the next raw chunk; ``None`` signals EOF."""
        return self._in.read(timeout=timeout)

    def close(self) -> None:
        """Close the outgoing direction (peer sees EOF)."""
        self._out.close()

    def close_both(self) -> None:
        """Close both directions at once."""
        self._out.close()
        self._in.close()


def pipe(mtu: int | None = None,
         names: tuple[str, str] = ("client", "server")
         ) -> tuple[Endpoint, Endpoint]:
    """Create a connected pair of endpoints."""
    a_to_b = _HalfStream(mtu=mtu)
    b_to_a = _HalfStream(mtu=mtu)
    left = Endpoint(a_to_b, b_to_a, name=names[0])
    right = Endpoint(b_to_a, a_to_b, name=names[1])
    return left, right


class Listener:
    """Accepts in-memory connections, like a listening TCP socket."""

    def __init__(self, mtu: int | None = None):
        self._mtu = mtu
        self._pending: queue.Queue = queue.Queue()
        self._closed = False

    def connect(self) -> Endpoint:
        """Client side: establish a new connection to this listener."""
        if self._closed:
            raise TransportClosed("listener is closed")
        client_end, server_end = pipe(mtu=self._mtu)
        self._pending.put(server_end)
        return client_end

    def accept(self, timeout: float | None = None) -> Endpoint | None:
        """Server side: wait for the next connection (``None`` when closed)."""
        try:
            item = self._pending.get(timeout=timeout)
        except queue.Empty:
            return None
        if item is _EOF:
            self._pending.put(_EOF)
            return None
        return item

    def close(self) -> None:
        """Stop accepting; pending accepts see None."""
        if not self._closed:
            self._closed = True
            self._pending.put(_EOF)
