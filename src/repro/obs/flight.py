"""Per-job flight recorder: bounded event logs and post-mortem bundles.

When a load job dies — aborted by the client, abandoned on a dropped
connection, failed in apply — the interesting evidence is everything
that happened *before* the failure: admission throttles, retry loops,
breaker trips, eager COPY/apply ranges, adaptive DML splits.  Metrics
aggregate that history away and the span buffer may have rotated past
it, so the recorder keeps a small bounded event deque per live job
(plus one node-wide deque for events with no job context, like breaker
transitions) that costs a dict append per event.

On failure the gateway calls :meth:`dump`, which freezes the job's
events together with its spans and a metrics snapshot into one JSON
bundle on disk — the post-mortem the CLI ``flight <job_id>`` command
reads back.  Job slots are LRU-bounded: only the most recently active
``max_jobs`` jobs retain events, so a long-lived node serving millions
of sessions cannot leak memory into the recorder.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict, deque

__all__ = ["FlightRecorder", "NULL_FLIGHT_RECORDER"]

BUNDLE_VERSION = 1


class FlightRecorder:
    """Bounded in-memory event logs, dumpable as post-mortem bundles."""

    def __init__(self, enabled: bool = False,
                 max_events_per_job: int = 256, max_jobs: int = 64,
                 dump_dir: str | None = None):
        if max_events_per_job < 1:
            raise ValueError("max_events_per_job must be >= 1")
        if max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        self.enabled = enabled
        self.max_events_per_job = max_events_per_job
        self.max_jobs = max_jobs
        #: where :meth:`dump` writes bundles; the gateway points this
        #: at its staging directory unless configured explicitly.
        self.dump_dir = dump_dir
        self._lock = threading.Lock()
        self._jobs: OrderedDict[str, deque] = OrderedDict()
        self._node_events: deque = deque(maxlen=max_events_per_job)

    # -- recording ---------------------------------------------------------------

    def record(self, job_id: str, event: str, **fields) -> None:
        """Append one event to a job's log (no-op when disabled)."""
        if not self.enabled or not job_id:
            return
        entry = {"ts": round(time.time(), 6), "event": event, **fields}
        with self._lock:
            log = self._jobs.get(job_id)
            if log is None:
                log = deque(maxlen=self.max_events_per_job)
                self._jobs[job_id] = log
                while len(self._jobs) > self.max_jobs:
                    self._jobs.popitem(last=False)
            else:
                self._jobs.move_to_end(job_id)
            log.append(entry)

    def record_node(self, event: str, **fields) -> None:
        """Append a node-wide event (no job context, e.g. breaker trips)."""
        if not self.enabled:
            return
        entry = {"ts": round(time.time(), 6), "event": event, **fields}
        with self._lock:
            self._node_events.append(entry)

    # -- retrieval ---------------------------------------------------------------

    def events(self, job_id: str) -> list[dict]:
        """The recorded events of one job, oldest first."""
        with self._lock:
            log = self._jobs.get(job_id)
            return list(log) if log is not None else []

    def node_events(self) -> list[dict]:
        """Node-wide events, oldest first."""
        with self._lock:
            return list(self._node_events)

    def jobs(self) -> list[str]:
        """Job ids currently holding an event log (LRU order)."""
        with self._lock:
            return list(self._jobs)

    def forget(self, job_id: str) -> None:
        """Drop a job's event log (after a clean completion)."""
        with self._lock:
            self._jobs.pop(job_id, None)

    # -- bundles -----------------------------------------------------------------

    def bundle(self, job_id: str, spans: list[dict] | None = None,
               metrics: dict | None = None,
               reason: str = "") -> dict:
        """Freeze a job's history into a post-mortem bundle dict."""
        return {
            "version": BUNDLE_VERSION,
            "job_id": job_id,
            "reason": reason,
            "dumped_at": round(time.time(), 6),
            "events": self.events(job_id),
            "node_events": self.node_events(),
            "spans": spans or [],
            "metrics": metrics or {},
        }

    def dump(self, job_id: str, spans: list[dict] | None = None,
             metrics: dict | None = None,
             reason: str = "") -> str | None:
        """Write the bundle to ``<dump_dir>/<job_id>.json``.

        Returns the bundle path, or ``None`` when the recorder is
        disabled or has nowhere to write.  Dump failures are swallowed:
        a full disk must not turn a job abort into a node crash.
        """
        if not self.enabled or not self.dump_dir:
            return None
        payload = self.bundle(job_id, spans=spans, metrics=metrics,
                              reason=reason)
        path = os.path.join(self.dump_dir, f"{job_id}.json")
        try:
            os.makedirs(self.dump_dir, exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, default=str)
        except OSError:  # pragma: no cover - disk trouble
            return None
        return path

    @staticmethod
    def load_bundle(path: str) -> dict:
        """Read back a bundle written by :meth:`dump`."""
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)


#: shared disabled recorder for components wired without one.
NULL_FLIGHT_RECORDER = FlightRecorder(enabled=False)
