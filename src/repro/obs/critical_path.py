"""Stage attribution of a job's wall time from its span tree.

The adaptive story of the paper turns on one number per job: where did
the wall time go — acquisition, COPY, apply, or waiting for admission?
Phase stopwatches answer that for the two-phase pipeline, but once
eager apply overlaps COPY with acquisition and WLM queues jobs before
they start, only the span tree has enough structure to attribute time
honestly.

:func:`analyze` takes span records (from a tracer buffer or a
:class:`~repro.obs.tracestore.TraceStore` query) and, for each ``job``
span, computes the union of its descendants' time intervals per stage.
Overlapping spans of one stage count once (four converter workers
running concurrently are one second of acquisition per second of wall
time, not four); the residue the job span covers but no stage does is
``other_s`` (scheduling, protocol turnarounds, drain barriers).
Admission wait is taken from the ``wlm.admit`` span even though it
*precedes* the job span — by then the job exists for the client but
not yet for the gateway — so stage seconds can sum to more than the
job span's own duration.
"""

from __future__ import annotations

__all__ = ["STAGE_OF_SPAN", "analyze"]

#: span name -> attributed stage.  Spans not listed (codec.compile,
#: retry, apply.split events, ...) fall into the "other" residue.
STAGE_OF_SPAN = {
    "receive": "acquisition",
    "credit.acquire": "acquisition",
    "convert": "acquisition",
    "write": "acquisition",
    "upload": "acquisition",
    "copy": "copy",
    "eager.copy": "copy",
    "apply": "apply",
    "eager.apply_range": "apply",
    "wlm.admit": "admission_wait",
}

_STAGES = ("acquisition", "copy", "apply", "admission_wait")


def _union_seconds(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by a set of (start, end) intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    return total + (cur_end - cur_start)


def _descendants(root_span_id: int, by_parent: dict) -> list[dict]:
    out: list[dict] = []
    frontier = [root_span_id]
    while frontier:
        span_id = frontier.pop()
        for child in by_parent.get(span_id, ()):
            out.append(child)
            frontier.append(child["span_id"])
    return out


def analyze(records: list[dict],
            job_name: str = "job") -> list[dict]:
    """Per-job stage attribution for every ``job`` span in ``records``.

    Returns one dict per job span::

        {"job_id", "trace_id", "total_s",
         "stages": {"acquisition": s, "copy": s, "apply": s,
                    "admission_wait": s},
         "other_s", "critical_stage"}
    """
    by_parent: dict[int, list[dict]] = {}
    for record in records:
        parent = record.get("parent_id")
        if parent is not None:
            by_parent.setdefault(parent, []).append(record)

    analyses: list[dict] = []
    for record in records:
        if record["name"] != job_name:
            continue
        job_start = record["start_ts"]
        job_end = job_start + record["duration_s"]
        job_id = record.get("attrs", {}).get("job_id", "")
        stage_intervals: dict[str, list[tuple[float, float]]] = {
            stage: [] for stage in _STAGES}
        spans = _descendants(record["span_id"], by_parent)
        # Admission spans are siblings of the job span (both parented
        # to the client's remote context), so the descendant walk
        # misses them; pull them in by trace + job id instead.
        seen = {span["span_id"] for span in spans}
        spans += [
            span for span in records
            if span["span_id"] not in seen
            and span["trace_id"] == record["trace_id"]
            and STAGE_OF_SPAN.get(span["name"]) == "admission_wait"
            and span.get("attrs", {}).get("job_id", "") == job_id]
        for span in spans:
            stage = STAGE_OF_SPAN.get(span["name"])
            if stage is None:
                continue
            start = span["start_ts"]
            end = start + span["duration_s"]
            if stage != "admission_wait":
                # Clamp pipeline stages into the job window; admission
                # wait happened before the job span opened and is kept
                # whole.
                start = max(start, job_start)
                end = min(end, job_end)
            if end > start:
                stage_intervals[stage].append((start, end))
        stages = {stage: round(_union_seconds(intervals), 9)
                  for stage, intervals in stage_intervals.items()}
        total = record["duration_s"]
        in_window = sum(seconds for stage, seconds in stages.items()
                        if stage != "admission_wait")
        other = max(0.0, total - in_window)
        critical = max(stages, key=lambda stage: stages[stage]) \
            if any(stages.values()) else "other"
        analyses.append({
            "job_id": job_id,
            "trace_id": record["trace_id"],
            "total_s": round(total, 9),
            "stages": stages,
            "other_s": round(other, 9),
            "critical_stage": critical,
        })
    return analyses
