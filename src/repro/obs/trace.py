"""Span-based structured tracing of the virtualization pipeline.

Every unit of work flowing through a Hyper-Q node — a protocol chunk, a
staging file, a DML range — can be wrapped in a :class:`Span`.  Spans
nest: within one thread the tracer keeps an implicit current-span stack,
and across threads (the acquisition pipeline hops session handler →
converter → filewriter → uploader) the parent is passed explicitly, so
one load job yields a tree like::

    job
    ├── receive (chunk 0)          [session handler thread]
    │   ├── credit.acquire
    │   └── convert                [converter worker]
    │       └── write              [filewriter worker]
    ├── upload (part-00-00000.csv) [uploader thread]
    ├── copy
    └── apply
        └── apply.split …          (adaptive error handler events)

Finished spans land in a bounded in-memory ring buffer (oldest dropped
first) and can be exported as JSONL — one object per span with
``trace_id``/``span_id``/``parent_id`` for reconstruction.  A disabled
tracer hands out a shared null span; tracing points cost one method
call and nothing else.
"""

from __future__ import annotations

import itertools
import json
import threading
import time

__all__ = ["Span", "Tracer", "NULL_SPAN", "NULL_TRACER"]

_ids = itertools.count(1)


def _next_id() -> int:
    return next(_ids)


class Span:
    """One traced unit of work; record it by closing (``end()``)."""

    __slots__ = ("_tracer", "trace_id", "span_id", "parent_id", "name",
                 "attrs", "status", "started_at", "_t0", "duration_s",
                 "_ended")

    def __init__(self, tracer: "Tracer", name: str,
                 trace_id: int, parent_id: int | None, attrs: dict):
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = _next_id()
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.status = "ok"
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self.duration_s = 0.0
        self._ended = False

    def set_attribute(self, key: str, value) -> None:
        """Attach one key/value to the span."""
        self.attrs[key] = value

    def end(self, status: str | None = None) -> None:
        """Close the span and push its record to the ring buffer."""
        if self._ended:
            return
        self._ended = True
        if status is not None:
            self.status = status
        self.duration_s = time.perf_counter() - self._t0
        self._tracer._record(self)

    # -- context-manager protocol (same-thread nesting) -----------------------

    def __enter__(self) -> "Span":
        """Make this the creating thread's current (innermost) span."""
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Pop the stack and end, with ``"error"`` status on exception."""
        self._tracer._pop(self)
        self.end("error" if exc_type is not None else None)

    def to_dict(self) -> dict:
        """The span's JSONL-exportable record."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ts": round(self.started_at, 6),
            "duration_s": round(self.duration_s, 9),
            "status": self.status,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()
    trace_id = 0
    span_id = 0
    parent_id = None
    name = ""
    status = "ok"
    attrs: dict = {}

    def set_attribute(self, key: str, value) -> None:
        pass

    def end(self, status: str | None = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Producer and ring buffer of span records for one node."""

    def __init__(self, enabled: bool = False, max_events: int = 4096):
        if max_events < 1:
            raise ValueError("trace buffer needs at least one slot")
        self.enabled = enabled
        self.max_events = max_events
        self._lock = threading.Lock()
        self._buffer: list[dict] = []
        self._dropped = 0
        self._local = threading.local()

    # -- span creation ----------------------------------------------------------

    def span(self, name: str, parent: "Span | _NullSpan | None" = None,
             **attrs) -> "Span | _NullSpan":
        """Create a span (use as a context manager, or ``end()`` it).

        ``parent`` pins the span into an explicit tree — required when
        work hops threads.  Without it, the creating thread's innermost
        open span (entered via ``with``) is the parent; with no such
        span either, a new trace is started.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is None or parent is NULL_SPAN:
            parent = self._current()
        if parent is None:
            return Span(self, name, trace_id=_next_id(),
                        parent_id=None, attrs=attrs)
        return Span(self, name, trace_id=parent.trace_id,
                    parent_id=parent.span_id, attrs=attrs)

    def event(self, name: str, parent: "Span | None" = None,
              **attrs) -> None:
        """Record a point-in-time event (a zero-duration span)."""
        if not self.enabled:
            return
        self.span(name, parent=parent, **attrs).end()

    # -- thread-local current-span stack ---------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current(self) -> "Span | None":
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    # -- ring buffer -------------------------------------------------------------

    def _record(self, span: Span) -> None:
        record = span.to_dict()
        with self._lock:
            self._buffer.append(record)
            if len(self._buffer) > self.max_events:
                del self._buffer[:len(self._buffer) - self.max_events]
                self._dropped += 1

    def records(self) -> list[dict]:
        """Snapshot of the buffered span records (oldest first)."""
        with self._lock:
            return list(self._buffer)

    def spans(self, name: str | None = None) -> list[dict]:
        """Buffered records, optionally filtered by span name."""
        records = self.records()
        if name is None:
            return records
        return [r for r in records if r["name"] == name]

    @property
    def dropped(self) -> int:
        """How many times the ring buffer evicted old spans."""
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        """Empty the ring buffer and reset the dropped count."""
        with self._lock:
            self._buffer.clear()
            self._dropped = 0

    # -- export ------------------------------------------------------------------

    def export_jsonl(self, destination) -> int:
        """Write buffered spans as JSON lines; returns the span count.

        ``destination`` is a path or a writable text file object.
        """
        records = self.records()
        if hasattr(destination, "write"):
            for record in records:
                destination.write(json.dumps(record) + "\n")
        else:
            with open(destination, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(record) + "\n")
        return len(records)


#: a shared disabled tracer for components instantiated without one.
NULL_TRACER = Tracer(enabled=False)
