"""Span-based structured tracing of the virtualization pipeline.

Every unit of work flowing through a Hyper-Q node — a protocol chunk, a
staging file, a DML range — can be wrapped in a :class:`Span`.  Spans
nest: within one thread the tracer keeps an implicit current-span stack,
and across threads (the acquisition pipeline hops session handler →
converter → filewriter → uploader) the parent is passed explicitly, so
one load job yields a tree like::

    job
    ├── receive (chunk 0)          [session handler thread]
    │   ├── credit.acquire
    │   └── convert                [converter worker]
    │       └── write              [filewriter worker]
    ├── upload (part-00-00000.csv) [uploader thread]
    ├── copy
    └── apply
        └── apply.split …          (adaptive error handler events)

Traces also cross *process* boundaries: a span's :class:`SpanContext`
serializes to a W3C-traceparent-style header
(``00-<trace_id>-<span_id>-<flags>``) that the legacy protocol carries
in BEGIN_LOAD / APPLY_DML / BEGIN_EXPORT metadata, and a tracer given a
``SpanContext`` as ``parent`` continues the remote trace instead of
starting a new root — the client's ``client.job`` span and the
gateway's whole span tree stitch into one end-to-end trace.

Finished spans land in a bounded in-memory ring buffer (oldest dropped
first) and can be exported as JSONL — one object per span with
``trace_id``/``span_id``/``parent_id`` for reconstruction.  An optional
``sink`` callback (see :class:`repro.obs.tracestore.TraceStore`) sees
every record as it closes, and ``on_drop`` fires once per ring-buffer
eviction so drops can be surfaced as a metric.  A disabled tracer hands
out a shared null span; tracing points cost one method call and nothing
else.  ``sample_rate`` < 1.0 drops that fraction of *new roots* (spans
continuing an existing trace or remote context are always kept, so
sampling decisions are made once, at the trace root).
"""

from __future__ import annotations

import itertools
import json
import random
import threading
import time

__all__ = [
    "Span", "SpanContext", "Tracer", "NULL_SPAN", "NULL_TRACER",
    "current_span",
]

#: Span/trace ids are drawn from one process-wide counter seeded at a
#: random offset, so ids minted by different processes (the legacy
#: client on one side of the wire, the gateway on the other) do not
#: collide when their spans merge into a single trace.
_ids = itertools.count((random.getrandbits(44) << 18) + 1)


def _next_id() -> int:
    return next(_ids)


#: module-level current-span stack shared by every tracer in the
#: process: log records emitted inside a ``with span:`` block pick up
#: the innermost span's ids regardless of which tracer minted it.
_active = threading.local()


def _active_stack() -> list:
    stack = getattr(_active, "stack", None)
    if stack is None:
        stack = _active.stack = []
    return stack


def current_span() -> "Span | None":
    """The calling thread's innermost open span, if any.

    The hook :mod:`repro.obs.logging` uses to stamp ``trace_id`` /
    ``span_id`` onto records emitted inside an active span.
    """
    stack = _active_stack()
    return stack[-1] if stack else None


class SpanContext:
    """The propagatable identity of a span: trace, span, sampling flag.

    Serializes to/from a W3C-traceparent-style header so the legacy
    wire protocol can carry it in message metadata::

        00-<32 hex trace_id>-<16 hex span_id>-<2 hex flags>
    """

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: int, span_id: int,
                 sampled: bool = True):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def to_traceparent(self) -> str:
        """Render the context as a traceparent header value."""
        flags = 0x01 if self.sampled else 0x00
        return (f"00-{self.trace_id:032x}-{self.span_id:016x}"
                f"-{flags:02x}")

    @classmethod
    def from_traceparent(cls, header) -> "SpanContext | None":
        """Parse a traceparent header; ``None`` for anything malformed.

        Propagation is best-effort by design: a peer sending garbage
        (or nothing) must never fail the protocol message it rode in
        on — the receiver just starts a fresh root trace.
        """
        if not isinstance(header, str):
            return None
        parts = header.split("-")
        if len(parts) != 4 or parts[0] != "00":
            return None
        version, trace_hex, span_hex, flags_hex = parts
        if len(trace_hex) != 32 or len(span_hex) != 16 \
                or len(flags_hex) != 2:
            return None
        try:
            trace_id = int(trace_hex, 16)
            span_id = int(span_hex, 16)
            flags = int(flags_hex, 16)
        except ValueError:
            return None
        if trace_id == 0 or span_id == 0:
            return None
        return cls(trace_id, span_id, sampled=bool(flags & 0x01))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext({self.to_traceparent()})"


class Span:
    """One traced unit of work; record it by closing (``end()``)."""

    __slots__ = ("_tracer", "trace_id", "span_id", "parent_id", "name",
                 "attrs", "status", "started_at", "_t0", "duration_s",
                 "_ended")

    def __init__(self, tracer: "Tracer", name: str,
                 trace_id: int, parent_id: int | None, attrs: dict):
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = _next_id()
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.status = "ok"
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self.duration_s = 0.0
        self._ended = False

    @property
    def context(self) -> SpanContext:
        """The span's propagatable :class:`SpanContext`."""
        return SpanContext(self.trace_id, self.span_id, sampled=True)

    def set_attribute(self, key: str, value) -> None:
        """Attach one key/value to the span."""
        self.attrs[key] = value

    def end(self, status: str | None = None) -> None:
        """Close the span and push its record to the ring buffer."""
        if self._ended:
            return
        self._ended = True
        if status is not None:
            self.status = status
        self.duration_s = time.perf_counter() - self._t0
        self._tracer._record(self)

    # -- context-manager protocol (same-thread nesting) -----------------------

    def __enter__(self) -> "Span":
        """Make this the creating thread's current (innermost) span."""
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Pop the stack and end, with ``"error"`` status on exception."""
        self._tracer._pop(self)
        self.end("error" if exc_type is not None else None)

    def to_dict(self) -> dict:
        """The span's JSONL-exportable record."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ts": round(self.started_at, 6),
            "duration_s": round(self.duration_s, 9),
            "status": self.status,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()
    trace_id = 0
    span_id = 0
    parent_id = None
    name = ""
    status = "ok"
    attrs: dict = {}
    #: no identity to propagate — callers guard on ``ctx is None``.
    context = None

    def set_attribute(self, key: str, value) -> None:
        pass

    def end(self, status: str | None = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Producer and ring buffer of span records for one node."""

    def __init__(self, enabled: bool = False, max_events: int = 4096,
                 sample_rate: float = 1.0, sink=None, on_drop=None,
                 rng: random.Random | None = None):
        if max_events < 1:
            raise ValueError("trace buffer needs at least one slot")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        self.enabled = enabled
        self.max_events = max_events
        #: fraction of *new roots* kept; continuations are always kept.
        self.sample_rate = sample_rate
        #: ``sink(record)`` sees every closed span (trace-store spill).
        self.sink = sink
        #: ``on_drop()`` fires once per ring-buffer eviction batch.
        self.on_drop = on_drop
        self._rng = rng or random.Random()
        self._lock = threading.Lock()
        self._buffer: list[dict] = []
        self._dropped = 0
        self._local = threading.local()

    # -- span creation ----------------------------------------------------------

    def span(self, name: str,
             parent: "Span | SpanContext | _NullSpan | None" = None,
             **attrs) -> "Span | _NullSpan":
        """Create a span (use as a context manager, or ``end()`` it).

        ``parent`` pins the span into an explicit tree — required when
        work hops threads — and may be a :class:`SpanContext` received
        from a remote peer, in which case the span continues the
        remote trace.  Without it, the creating thread's innermost open
        span (entered via ``with``) is the parent; with no such span
        either, a new trace is started (subject to ``sample_rate``).
        """
        if not self.enabled:
            return NULL_SPAN
        if isinstance(parent, SpanContext):
            if not parent.sampled:
                return NULL_SPAN
            return Span(self, name, trace_id=parent.trace_id,
                        parent_id=parent.span_id, attrs=attrs)
        if parent is None or parent is NULL_SPAN:
            parent = self._current()
        if parent is None:
            if self.sample_rate < 1.0 \
                    and self._rng.random() >= self.sample_rate:
                return NULL_SPAN
            return Span(self, name, trace_id=_next_id(),
                        parent_id=None, attrs=attrs)
        return Span(self, name, trace_id=parent.trace_id,
                    parent_id=parent.span_id, attrs=attrs)

    def event(self, name: str,
              parent: "Span | SpanContext | None" = None,
              **attrs) -> None:
        """Record a point-in-time event (a zero-duration span)."""
        if not self.enabled:
            return
        self.span(name, parent=parent, **attrs).end()

    # -- thread-local current-span stack ---------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current(self) -> "Span | None":
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)
        _active_stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        active = _active_stack()
        if active and active[-1] is span:
            active.pop()

    # -- ring buffer -------------------------------------------------------------

    def _record(self, span: Span) -> None:
        record = span.to_dict()
        dropped = False
        with self._lock:
            self._buffer.append(record)
            if len(self._buffer) > self.max_events:
                del self._buffer[:len(self._buffer) - self.max_events]
                self._dropped += 1
                dropped = True
        # Callbacks run outside the lock: a sink that flushes to disk
        # (or a drop hook that logs) must not serialize the hot path.
        if self.sink is not None:
            self.sink(record)
        if dropped and self.on_drop is not None:
            self.on_drop()

    def records(self) -> list[dict]:
        """Snapshot of the buffered span records (oldest first)."""
        with self._lock:
            return list(self._buffer)

    def spans(self, name: str | None = None) -> list[dict]:
        """Buffered records, optionally filtered by span name."""
        records = self.records()
        if name is None:
            return records
        return [r for r in records if r["name"] == name]

    @property
    def dropped(self) -> int:
        """How many times the ring buffer evicted old spans."""
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        """Empty the ring buffer and reset the dropped count."""
        with self._lock:
            self._buffer.clear()
            self._dropped = 0

    # -- export ------------------------------------------------------------------

    def export_jsonl(self, destination) -> int:
        """Write buffered spans as JSON lines; returns the span count.

        ``destination`` is a path or a writable text file object.
        """
        records = self.records()
        if hasattr(destination, "write"):
            for record in records:
                destination.write(json.dumps(record) + "\n")
        else:
            with open(destination, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(record) + "\n")
        return len(records)


#: a shared disabled tracer for components instantiated without one.
NULL_TRACER = Tracer(enabled=False)
