"""Bounded on-disk spill of the span ring buffer.

The in-memory tracer forgets: its ring buffer holds the last N spans
and silently evicts the rest.  :class:`TraceStore` is the durable side
of the pair — wired in as the tracer's ``sink``, it appends every
closed span to a JSONL segment file, rotates segments at a fixed span
count, and prunes the oldest segments past a cap, so disk usage stays
bounded at roughly ``segment_max_spans * max_segments`` records no
matter how long the node runs.

On top of the segments sits the query API the CLI ``trace`` command
uses: :meth:`query` filters by ``trace_id`` or by ``job_id`` (resolving
the job's trace ids from span attributes first, then returning every
span of those traces, which may span rotated segment boundaries).
"""

from __future__ import annotations

import json
import os
import threading

__all__ = ["TraceStore"]

_SEGMENT_PREFIX = "spans-"
_SEGMENT_SUFFIX = ".jsonl"


class TraceStore:
    """Rotating JSONL segment files of span records under one directory."""

    def __init__(self, directory: str, segment_max_spans: int = 2048,
                 max_segments: int = 8):
        if segment_max_spans < 1:
            raise ValueError("segment_max_spans must be >= 1")
        if max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        self.directory = directory
        self.segment_max_spans = segment_max_spans
        self.max_segments = max_segments
        self._lock = threading.Lock()
        self._handle = None
        self._segment_spans = 0
        os.makedirs(directory, exist_ok=True)
        # Resume numbering after any segments left by a previous run.
        existing = self._segment_names()
        self._next_seq = len(existing) and (
            int(existing[-1][len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])
            + 1) or 1

    # -- write path (tracer sink) ---------------------------------------------

    def write(self, record: dict) -> None:
        """Append one span record; rotates and prunes as needed."""
        line = json.dumps(record) + "\n"
        with self._lock:
            if self._handle is None \
                    or self._segment_spans >= self.segment_max_spans:
                self._rotate_locked()
            self._handle.write(line)
            self._segment_spans += 1

    def _rotate_locked(self) -> None:
        if self._handle is not None:
            self._handle.close()
        name = f"{_SEGMENT_PREFIX}{self._next_seq:06d}{_SEGMENT_SUFFIX}"
        self._next_seq += 1
        self._handle = open(os.path.join(self.directory, name), "w",
                            encoding="utf-8")
        self._segment_spans = 0
        for stale in self._segment_names()[:-self.max_segments]:
            try:
                os.unlink(os.path.join(self.directory, stale))
            except OSError:  # pragma: no cover - racing cleanup
                pass

    def flush(self) -> None:
        """Flush the active segment so readers see buffered spans."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        """Flush and close the active segment."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # -- read path ---------------------------------------------------------------

    def _segment_names(self) -> list[str]:
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        return sorted(n for n in names
                      if n.startswith(_SEGMENT_PREFIX)
                      and n.endswith(_SEGMENT_SUFFIX))

    def segments(self) -> list[str]:
        """Absolute paths of the live segments, oldest first."""
        return [os.path.join(self.directory, n)
                for n in self._segment_names()]

    def records(self) -> list[dict]:
        """Every stored span record, oldest segment first."""
        self.flush()
        out: list[dict] = []
        for path in self.segments():
            try:
                with open(path, encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if line:
                            out.append(json.loads(line))
            except FileNotFoundError:  # pragma: no cover - pruned mid-read
                continue
        return out

    def query(self, trace_id: int | None = None,
              job_id: str | None = None) -> list[dict]:
        """Spans of one trace, or of every trace touching one job.

        A job's spans are found via their ``job_id`` attribute; the
        result then includes *all* spans of the matching traces, so a
        client-originated trace comes back whole even though only some
        of its spans carry the attribute.
        """
        records = self.records()
        if trace_id is None and job_id is None:
            return records
        wanted: set[int] = set()
        if trace_id is not None:
            wanted.add(trace_id)
        if job_id is not None:
            wanted.update(
                r["trace_id"] for r in records
                if r.get("attrs", {}).get("job_id") == job_id)
        return [r for r in records if r["trace_id"] in wanted]
