"""repro.obs — the end-to-end observability control plane.

Cooperating pieces, all threaded through the Hyper-Q stack via one
:class:`Observability` facade per node:

- :mod:`repro.obs.metrics` — a thread-safe registry of labeled
  counters/gauges/histograms aggregating across concurrent jobs, with
  trace exemplars on histograms;
- :mod:`repro.obs.trace`   — a span tracer that follows every chunk,
  staging file, and DML range through the pipeline into a bounded ring
  buffer, stitches cross-process traces via W3C-traceparent contexts,
  and exports JSONL;
- :mod:`repro.obs.tracestore` — bounded on-disk JSONL spill of the
  ring buffer with a trace/job query API;
- :mod:`repro.obs.slo`     — declarative per-pool objectives evaluated
  as multi-window burn rates;
- :mod:`repro.obs.flight`  — per-job flight recorder dumping
  post-mortem bundles on failure;
- :mod:`repro.obs.logging` — per-component structured loggers with an
  optional JSON formatter and automatic trace correlation.

Components take an ``obs`` argument defaulting to :data:`NULL_OBS`
(everything disabled, near-zero cost), so instrumentation points never
branch on ``None``.  See ``docs/OBSERVABILITY.md`` for the metric
catalog, the trace event schema, and the SLO profile format.
"""

from __future__ import annotations

from repro.obs.flight import NULL_FLIGHT_RECORDER, FlightRecorder
from repro.obs.logging import (
    JsonLogFormatter, configure_logging, get_logger,
)
from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricFamily, MetricsRegistry,
)
from repro.obs.slo import SloEngine, SloSpec
from repro.obs.trace import NULL_SPAN, Span, SpanContext, Tracer
from repro.obs.tracestore import TraceStore

__all__ = [
    "Observability", "NULL_OBS",
    "MetricsRegistry", "MetricFamily", "Counter", "Gauge", "Histogram",
    "Tracer", "Span", "SpanContext", "NULL_SPAN", "TraceStore",
    "SloEngine", "SloSpec", "FlightRecorder", "NULL_FLIGHT_RECORDER",
    "configure_logging", "get_logger", "JsonLogFormatter",
]


class Observability:
    """Per-node bundle of the metrics registry and the tracer.

    The canonical metric families every layer shares are created
    eagerly so call sites pay one attribute lookup — and so a disabled
    registry turns them all into the shared no-op instrument.
    """

    def __init__(self, *, metrics_enabled: bool = True,
                 trace_enabled: bool = False,
                 trace_buffer_events: int = 4096,
                 trace_sample_rate: float = 1.0,
                 trace_store_dir: str | None = None,
                 trace_store_segment_spans: int = 2048,
                 trace_store_max_segments: int = 8,
                 slo_profile=None,
                 flight_enabled: bool = True,
                 flight_max_events: int = 256,
                 flight_dump_dir: str | None = None,
                 node: str = "hyperq"):
        self.node = node
        self.registry = MetricsRegistry(enabled=metrics_enabled)
        self.trace_store = None
        if trace_enabled and trace_store_dir:
            self.trace_store = TraceStore(
                trace_store_dir,
                segment_max_spans=trace_store_segment_spans,
                max_segments=trace_store_max_segments)
        self._drop_warned = False
        self.tracer = Tracer(
            enabled=trace_enabled,
            max_events=trace_buffer_events,
            sample_rate=trace_sample_rate,
            sink=self.trace_store.write if self.trace_store else None,
            on_drop=self._on_span_drop)
        self.flight = FlightRecorder(
            enabled=flight_enabled,
            max_events_per_job=flight_max_events,
            dump_dir=flight_dump_dir)
        reg = self.registry
        self.slo = SloEngine.from_profile(slo_profile, registry=reg)

        # -- tracing health --
        self.trace_dropped_spans = reg.counter(
            "hyperq_trace_dropped_spans_total",
            "Span-buffer ring evictions (each loses the oldest spans)")

        # -- gateway / protocol --
        self.messages_total = reg.counter(
            "hyperq_messages_total",
            "Protocol messages dispatched by the PXC", ("kind",))
        self.connections_active = reg.gauge(
            "hyperq_connections_active",
            "Client connections currently open on the front end")
        self.connections_refused = reg.counter(
            "hyperq_connections_refused_total",
            "Connections shed at the max_connections cap")
        self.shard_queue_depth = reg.gauge(
            "hyperq_shard_queue_depth",
            "Frames queued per gateway shard worker", ("shard",))
        self.jobs_total = reg.counter(
            "hyperq_jobs_total",
            "Load jobs by lifecycle event", ("event",))
        self.job_phase_seconds = reg.histogram(
            "hyperq_job_phase_seconds",
            "Per-job phase durations (Figure 7 split)", ("phase",))

        # -- acquisition pipeline --
        self.stage_seconds = reg.histogram(
            "hyperq_stage_seconds",
            "Per-unit latency of each pipeline stage", ("stage",))
        self.chunks_received = reg.counter(
            "hyperq_chunks_received_total",
            "Client DATA chunks accepted")
        self.bytes_received = reg.counter(
            "hyperq_bytes_received_total",
            "Raw legacy-encoded bytes accepted")
        self.records_converted = reg.counter(
            "hyperq_records_converted_total",
            "Records successfully converted to staging CSV")
        self.acquisition_errors = reg.counter(
            "hyperq_acquisition_errors_total",
            "Records rejected during conversion")
        self.bytes_staged = reg.counter(
            "hyperq_bytes_staged_total",
            "CSV bytes handed to the FileWriters")
        self.files_written = reg.counter(
            "hyperq_files_written_total",
            "Staging files finalized on local disk")
        self.staged_file_bytes = reg.histogram(
            "hyperq_staged_file_bytes",
            "Size distribution of finalized staging files")
        self.bytes_uploaded = reg.counter(
            "hyperq_bytes_uploaded_total",
            "Bytes shipped to the cloud store (post-compression)")
        self.upload_seconds = reg.histogram(
            "hyperq_upload_seconds",
            "Bulk-loader upload latency per file")
        self.copy_rows = reg.counter(
            "hyperq_copy_rows_total",
            "Rows landed in staging tables by COPY INTO")

        # -- credit back-pressure --
        self.credit_acquires = reg.counter(
            "hyperq_credit_acquires_total",
            "Credit acquisitions", ("blocked",))
        self.credit_wait_seconds = reg.histogram(
            "hyperq_credit_wait_seconds",
            "Time sessions stalled waiting for a credit")
        self.credits_available = reg.gauge(
            "hyperq_credits_available",
            "Credits currently in the pool")

        # -- application phase --
        self.rows_applied = reg.counter(
            "hyperq_rows_applied_total",
            "Target-table rows affected by applied DML", ("op",))
        self.apply_statements = reg.counter(
            "hyperq_apply_statements_total",
            "Set-oriented DML executions (successful or failed)")
        self.apply_splits = reg.counter(
            "hyperq_apply_splits_total",
            "Adaptive error-handler chunk splits")
        self.apply_errors = reg.counter(
            "hyperq_apply_errors_total",
            "Errors recorded during application", ("kind",))
        self.apply_overlap_seconds = reg.histogram(
            "hyperq_apply_overlap_seconds",
            "Wall-clock seconds eager DML application overlapped "
            "ongoing acquisition, per job")
        self.scan_pruned_rows = reg.counter(
            "hyperq_scan_pruned_rows_total",
            "Staging rows skipped by __SEQ zone-map range pruning")

        # -- data-quality precheck (repro.dq) --
        self.dq_checked = reg.counter(
            "hyperq_dq_checked_total",
            "Staging rows scanned by the dq precheck")
        self.dq_violations = reg.counter(
            "hyperq_dq_violations_total",
            "Rule violations detected by the dq precheck", ("rule",))
        self.dq_routed_rows = reg.counter(
            "hyperq_dq_routed_rows_total",
            "Staging rows routed to the error table before APPLY")

        # -- continuous ingestion (repro.stream) --
        self.stream_batches = reg.counter(
            "hyperq_stream_batches_total",
            "Stream micro-batches by outcome (committed rode the full "
            "load path, skipped were replay of already-committed "
            "sequences, routed went whole to the error table)",
            ("feed", "outcome"))
        self.stream_lag_seconds = reg.gauge(
            "hyperq_stream_lag_seconds",
            "Source-to-commit lag of the last committed micro-batch "
            "(commit time minus the batch's source event timestamp)",
            ("feed",))
        self.stream_drift_events = reg.counter(
            "hyperq_stream_drift_events_total",
            "Schema-drift events accepted per feed", ("feed", "kind"))

        # -- compiled codecs / prepared plans --
        self.plan_cache_hits = reg.counter(
            "hyperq_plan_cache_hits_total",
            "Prepared-DML plan cache hits (template reused, only the "
            "__SEQ range literals rebound)")
        self.plan_cache_misses = reg.counter(
            "hyperq_plan_cache_misses_total",
            "Prepared-DML plan cache misses (full parse+bind+translate)")
        self.codec_compiles = reg.counter(
            "hyperq_codec_compiles_total",
            "Row codecs compiled per job layout", ("kind",))

        # -- resilience / fault injection --
        self.faults_injected = reg.counter(
            "hyperq_faults_injected_total",
            "Faults fired by the chaos injector", ("point", "kind"))
        self.retry_attempts = reg.counter(
            "hyperq_retry_attempts_total",
            "Transient failures absorbed by the retry layer",
            ("target",))
        self.retry_giveups = reg.counter(
            "hyperq_retry_giveups_total",
            "Retried calls that exhausted attempts or budget",
            ("target",))
        self.breaker_transitions = reg.counter(
            "hyperq_breaker_transitions_total",
            "Circuit-breaker state transitions", ("target", "state"))
        self.breaker_open = reg.gauge(
            "hyperq_breaker_open",
            "1 while a target's circuit breaker is open",
            ("target",))
        self.checkpoint_skips = reg.counter(
            "hyperq_checkpoint_skips_total",
            "Work units skipped because the checkpoint journal showed "
            "them durable", ("kind",))

        # -- workload management --
        self.wlm_admitted = reg.counter(
            "hyperq_wlm_admitted_total",
            "Jobs admitted into a resource pool", ("pool",))
        self.wlm_throttled = reg.counter(
            "hyperq_wlm_throttled_total",
            "Admissions shed with WLM_THROTTLED", ("pool", "reason"))
        self.wlm_timeouts = reg.counter(
            "hyperq_wlm_timeout_total",
            "Queued admissions that outlived queue_timeout_s", ("pool",))
        self.wlm_queue_depth = reg.gauge(
            "hyperq_wlm_queue_depth",
            "Admissions currently queued per pool", ("pool",))
        self.wlm_slots_occupied = reg.gauge(
            "hyperq_wlm_slots_occupied",
            "Concurrency slots currently occupied per pool", ("pool",))
        self.wlm_admission_wait_seconds = reg.histogram(
            "hyperq_wlm_admission_wait_seconds",
            "Time admitted jobs queued before getting a slot", ("pool",))
        self.wlm_job_seconds = reg.histogram(
            "hyperq_wlm_job_seconds",
            "Admission-to-release lifetime of pool slots", ("pool",))
        self.wlm_credit_grants = reg.counter(
            "hyperq_wlm_credit_grants_total",
            "Credits granted by the fair-share arbiter",
            ("pool", "contended"))
        self.wlm_credit_wait_seconds = reg.histogram(
            "hyperq_wlm_credit_wait_seconds",
            "Time sessions waited on the arbiter for a credit",
            ("pool",))

        # -- CDW substrate --
        self.statement_seconds = reg.histogram(
            "cdw_statement_seconds",
            "CDW engine statement latency", ("statement",))
        self.table_bytes = reg.gauge(
            "hyperq_table_bytes",
            "Estimated bytes of column/row data held per CDW table",
            ("table",))

    def _on_span_drop(self) -> None:
        """Tracer drop hook: count every eviction, warn exactly once."""
        self.trace_dropped_spans.inc()
        if not self._drop_warned:
            self._drop_warned = True
            get_logger("obs").warning(
                "trace ring buffer full; oldest spans are being "
                "dropped (raise trace_buffer_events or configure a "
                "trace store)",
                extra={"node": self.node,
                       "buffer_events": self.tracer.max_events})

    def close(self) -> None:
        """Flush and close the on-disk trace store, if one is wired.

        The node calls this on stop so spilled segments are readable
        by ``trace --query`` immediately afterwards.
        """
        if self.trace_store is not None:
            self.trace_store.close()

    @classmethod
    def from_config(cls, config, node: str = "hyperq") -> "Observability":
        """Build the bundle from a :class:`HyperQConfig`."""
        return cls(
            metrics_enabled=getattr(config, "metrics_enabled", True),
            trace_enabled=getattr(config, "trace_enabled", False),
            trace_buffer_events=getattr(config, "trace_buffer_events",
                                        4096),
            trace_sample_rate=getattr(config, "trace_sample_rate", 1.0),
            trace_store_dir=getattr(config, "trace_store_dir", None),
            trace_store_segment_spans=getattr(
                config, "trace_store_segment_spans", 2048),
            trace_store_max_segments=getattr(
                config, "trace_store_max_segments", 8),
            slo_profile=getattr(config, "slo_profile", None),
            flight_enabled=getattr(config, "flight_recorder_enabled",
                                   True),
            flight_max_events=getattr(config, "flight_max_events", 256),
            flight_dump_dir=getattr(config, "flight_dump_dir", None),
            node=node,
        )


#: shared fully-disabled bundle; the default ``obs`` everywhere.
NULL_OBS = Observability(metrics_enabled=False, trace_enabled=False,
                         flight_enabled=False, node="null")
