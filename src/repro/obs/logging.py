"""Structured logging for the repro stack.

Every component logs under the ``repro.`` hierarchy
(``repro.gateway``, ``repro.pipeline``, ``repro.legacy.server`` …) via
:func:`get_logger`.  Nothing is emitted until :func:`configure_logging`
installs a handler — importing the library never touches the root
logger configuration of the host application.

Two output shapes are supported: a compact human-readable line, and a
JSON object per line (``json_output=True``) carrying the timestamp,
level, component, message, and any extra fields passed via
``logger.info(..., extra={...})`` — the shape log shippers expect.

Records emitted while a tracing span is open on the emitting thread
automatically carry that span's ``trace_id``/``span_id``, so a log
line found by grep leads straight to the trace (and vice versa).
Explicit ``extra={"trace_id": ...}`` fields win over the implicit
correlation.
"""

from __future__ import annotations

import json
import logging
import sys

from repro.obs.trace import current_span

__all__ = ["JsonLogFormatter", "configure_logging", "get_logger",
           "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"

#: attributes of a vanilla LogRecord — anything else came in via
#: ``extra=`` and is forwarded as structured context.
_STANDARD_ATTRS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


def _trace_fields() -> dict:
    """Implicit trace correlation fields for the emitting thread.

    Formatting happens synchronously on the thread that logged, so the
    thread's innermost open span — if any — is the one the record was
    emitted under.
    """
    span = current_span()
    if span is None or not span.trace_id:
        return {}
    return {"trace_id": span.trace_id, "span_id": span.span_id}


class JsonLogFormatter(logging.Formatter):
    """Render each record as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(_trace_fields())
        for key, value in record.__dict__.items():
            if key not in _STANDARD_ATTRS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class _TextFormatter(logging.Formatter):
    """Human-readable line that still shows structured extras."""

    def format(self, record: logging.LogRecord) -> str:
        base = (f"{self.formatTime(record, '%H:%M:%S')} "
                f"{record.levelname:<7} {record.name}: "
                f"{record.getMessage()}")
        extras = dict(_trace_fields())
        extras.update({
            key: value for key, value in record.__dict__.items()
            if key not in _STANDARD_ATTRS and not key.startswith("_")
        })
        if extras:
            rendered = " ".join(
                f"{k}={v}" for k, v in sorted(extras.items()))
            base = f"{base} [{rendered}]"
        if record.exc_info and record.exc_info[0] is not None:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


def get_logger(component: str) -> logging.Logger:
    """The logger for one component, rooted under ``repro.``."""
    if component.startswith(ROOT_LOGGER_NAME + ".") \
            or component == ROOT_LOGGER_NAME:
        return logging.getLogger(component)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{component}")


def configure_logging(level: str | int = "INFO",
                      json_output: bool = False,
                      stream=None) -> logging.Logger:
    """Install (or replace) the stack's log handler; returns the root.

    Idempotent: calling it again reconfigures rather than stacking
    handlers, so tests and the CLI can adjust level/shape freely.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler._repro_handler = True
    handler.setFormatter(
        JsonLogFormatter() if json_output else _TextFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root
