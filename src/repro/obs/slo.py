"""Declarative SLOs evaluated as multi-window burn rates.

An :class:`SloSpec` states an objective for a workload pool (or a
glob of pools): "99% of ETL jobs in pool ``etl-*`` finish under 30
seconds", "99.9% of admissions are not throttled".  The engine feeds on
the same per-job observations that drive the
:class:`~repro.obs.metrics.MetricsRegistry` histograms and keeps them
in sliding windows, evaluating each objective as a **burn rate**: the
fraction of the error budget consumed per unit time, normalized so that
burn 1.0 means exactly exhausting the budget if the window's behaviour
persists::

    burn(window) = bad_fraction(window) / (1 - target)

Each SLO is checked over several windows at once (the classic
fast-burn/slow-burn pairing); it is *breaching* only when **every**
window burns at >= 1.0 — a short window alone is noise, a long window
alone is stale history, together they mean "on fire right now and it
has been going on long enough to matter".

Results surface three ways: ``hyperq_slo_*`` gauges in the registry,
``stats()["slo"]`` on the node, and the CLI ``slo`` command.

Profile format (``HyperQConfig.slo_profile``, JSON-friendly)::

    {"slos": [
        {"name": "etl-latency", "objective": "latency_p95",
         "pool": "etl-*", "threshold_s": 30.0, "target": 0.99,
         "windows_s": [60, 300]},
        {"name": "etl-errors", "objective": "error_rate",
         "pool": "*", "target": 0.999},
        {"name": "adhoc-throttles", "objective": "throttle_rate",
         "pool": "adhoc", "target": 0.95}
    ]}
"""

from __future__ import annotations

import fnmatch
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["SloSpec", "SloEngine", "OBJECTIVES"]

#: supported objective kinds and the feed they evaluate over.
#: - ``latency_p95``: jobs slower than ``threshold_s`` are "bad".
#: - ``error_rate``: jobs that failed are "bad".
#: - ``throttle_rate``: admission attempts that were shed are "bad".
OBJECTIVES = ("latency_p95", "error_rate", "throttle_rate")

#: bounded observation history shared by all SLOs.
_FEED_MAXLEN = 8192


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over a pool glob."""

    name: str
    objective: str
    pool: str = "*"
    threshold_s: float = 30.0
    target: float = 0.99
    windows_s: tuple = (60.0, 300.0)

    def __post_init__(self):
        """Validate the spec's fields."""
        if not self.name:
            raise ValueError("SLO needs a name")
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown SLO objective {self.objective!r}; "
                f"expected one of {OBJECTIVES}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"SLO {self.name}: target must be in (0, 1), "
                f"got {self.target}")
        if self.threshold_s <= 0:
            raise ValueError(
                f"SLO {self.name}: threshold_s must be positive")
        if not self.windows_s:
            raise ValueError(f"SLO {self.name}: needs >= 1 window")
        if any(w <= 0 for w in self.windows_s):
            raise ValueError(
                f"SLO {self.name}: windows must be positive")

    @classmethod
    def from_dict(cls, raw: dict) -> "SloSpec":
        known = {"name", "objective", "pool", "threshold_s", "target",
                 "windows_s"}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(
                f"unknown SLO spec keys: {sorted(unknown)}")
        kwargs = dict(raw)
        if "windows_s" in kwargs:
            kwargs["windows_s"] = tuple(
                float(w) for w in kwargs["windows_s"])
        return cls(**kwargs)


@dataclass
class _SloState:
    """Mutable evaluation state carried between evaluations."""

    spec: SloSpec
    breaching: bool = False
    burn_rates: dict = field(default_factory=dict)
    p95_s: float = 0.0
    good: int = 0
    bad: int = 0


class SloEngine:
    """Evaluates :class:`SloSpec` objectives over sliding feeds."""

    def __init__(self, specs: list[SloSpec] | None = None,
                 registry=None, clock=time.time):
        specs = list(specs or [])
        names = [spec.name for spec in specs]
        if len(names) != len(set(names)):
            raise ValueError("duplicate SLO names in profile")
        self.specs = specs
        self.enabled = bool(specs)
        self._clock = clock
        self._lock = threading.Lock()
        #: (ts, pool, latency_s, ok) per finished job
        self._jobs: deque = deque(maxlen=_FEED_MAXLEN)
        #: (ts, pool, admitted) per admission attempt
        self._admissions: deque = deque(maxlen=_FEED_MAXLEN)
        self._states = {spec.name: _SloState(spec) for spec in specs}
        if registry is not None and self.enabled:
            self._burn_gauge = registry.gauge(
                "hyperq_slo_burn_rate",
                "Error-budget burn rate per SLO and window "
                "(>= 1 consumes budget faster than allowed)",
                ("slo", "window"))
            self._healthy_gauge = registry.gauge(
                "hyperq_slo_healthy",
                "1 when the SLO is within budget on at least one "
                "window, 0 when every window is burning", ("slo",))
            self._p95_gauge = registry.gauge(
                "hyperq_slo_latency_p95_seconds",
                "Observed p95 job latency over the SLO's longest "
                "window", ("slo",))
        else:
            self._burn_gauge = None
            self._healthy_gauge = None
            self._p95_gauge = None

    @classmethod
    def from_profile(cls, profile, registry=None,
                     clock=time.time) -> "SloEngine":
        """Build from a profile dict/list; ``None`` -> disabled engine."""
        if profile is None:
            return cls([], registry=None, clock=clock)
        if isinstance(profile, dict):
            raw_specs = profile.get("slos")
            if raw_specs is None:
                raise ValueError('SLO profile dict needs an "slos" key')
            unknown = set(profile) - {"slos"}
            if unknown:
                raise ValueError(
                    f"unknown SLO profile keys: {sorted(unknown)}")
        elif isinstance(profile, list):
            raw_specs = profile
        else:
            raise ValueError(
                "SLO profile must be a dict, list, or None")
        specs = [SloSpec.from_dict(raw) for raw in raw_specs]
        return cls(specs, registry=registry, clock=clock)

    # -- feeds -------------------------------------------------------------------

    def record_job(self, pool: str, latency_s: float,
                   ok: bool = True) -> None:
        """Observe one finished (or failed) job."""
        if not self.enabled:
            return
        with self._lock:
            self._jobs.append(
                (self._clock(), pool or "", latency_s, ok))

    def record_admission(self, pool: str, admitted: bool) -> None:
        """Observe one admission attempt (admitted or shed)."""
        if not self.enabled:
            return
        with self._lock:
            self._admissions.append(
                (self._clock(), pool or "", admitted))

    # -- evaluation --------------------------------------------------------------

    def _window_feed(self, spec: SloSpec, now: float,
                     window_s: float) -> tuple[int, int, list[float]]:
        """(good, bad, latencies) of a spec's feed within one window."""
        cutoff = now - window_s
        good = bad = 0
        latencies: list[float] = []
        if spec.objective == "throttle_rate":
            for ts, pool, admitted in self._admissions:
                if ts < cutoff or not fnmatch.fnmatch(pool, spec.pool):
                    continue
                if admitted:
                    good += 1
                else:
                    bad += 1
            return good, bad, latencies
        for ts, pool, latency_s, ok in self._jobs:
            if ts < cutoff or not fnmatch.fnmatch(pool, spec.pool):
                continue
            latencies.append(latency_s)
            if spec.objective == "latency_p95":
                is_bad = latency_s > spec.threshold_s
            else:  # error_rate
                is_bad = not ok
            if is_bad:
                bad += 1
            else:
                good += 1
        return good, bad, latencies

    def evaluate(self, now: float | None = None) -> dict:
        """Re-evaluate every SLO and refresh the gauges.

        Returns ``{slo_name: {"objective", "pool", "target",
        "breaching", "burn_rates": {window: burn}, "p95_s",
        "good", "bad"}}``.
        """
        if not self.enabled:
            return {}
        if now is None:
            now = self._clock()
        results: dict[str, dict] = {}
        with self._lock:
            for state in self._states.values():
                spec = state.spec
                budget = 1.0 - spec.target
                burns: dict[str, float] = {}
                hot_windows = 0
                longest_latencies: list[float] = []
                for window_s in spec.windows_s:
                    good, bad, lats = self._window_feed(
                        spec, now, window_s)
                    total = good + bad
                    bad_fraction = bad / total if total else 0.0
                    burn = bad_fraction / budget if budget else 0.0
                    burns[f"{window_s:g}"] = round(burn, 6)
                    if total and burn >= 1.0:
                        hot_windows += 1
                    if window_s == max(spec.windows_s):
                        longest_latencies = lats
                        state.good, state.bad = good, bad
                state.burn_rates = burns
                # Breach only when every window is simultaneously
                # burning: the multi-window AND of fast+slow alerts.
                state.breaching = hot_windows == len(spec.windows_s)
                if longest_latencies:
                    longest_latencies.sort()
                    index = max(0, round(
                        0.95 * len(longest_latencies)) - 1)
                    state.p95_s = longest_latencies[index]
                else:
                    state.p95_s = 0.0
                results[spec.name] = {
                    "objective": spec.objective,
                    "pool": spec.pool,
                    "target": spec.target,
                    "threshold_s": spec.threshold_s,
                    "windows_s": list(spec.windows_s),
                    "breaching": state.breaching,
                    "burn_rates": dict(burns),
                    "p95_s": round(state.p95_s, 6),
                    "good": state.good,
                    "bad": state.bad,
                }
        if self._burn_gauge is not None:
            for name, result in results.items():
                for window, burn in result["burn_rates"].items():
                    self._burn_gauge.labels(
                        slo=name, window=window).set(burn)
                self._healthy_gauge.labels(slo=name).set(
                    0.0 if result["breaching"] else 1.0)
                if self._states[name].spec.objective == "latency_p95":
                    self._p95_gauge.labels(slo=name).set(
                        result["p95_s"])
        return results

    def snapshot(self) -> dict:
        """``stats()["slo"]`` payload: enabled flag + fresh evaluation."""
        return {"enabled": self.enabled, "slos": self.evaluate()}
