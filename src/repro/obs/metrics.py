"""The node-level metrics registry: counters, gauges, histograms.

The paper's evaluation (Figures 7-11) hinges on knowing *where time
goes* inside the virtualization layer — acquisition vs. DML application
vs. credit stalls.  :class:`MetricsRegistry` is the aggregation point
for that accounting across every concurrent job on a Hyper-Q node:

- :class:`Counter` — monotonically increasing totals (bytes received,
  chunks converted, DML statements executed);
- :class:`Gauge`   — instantaneous levels (credits available);
- :class:`Histogram` — latency/size distributions with p50/p95/p99
  summaries backed by a bounded reservoir.

Metrics are grouped in labeled *families*
(``hyperq_stage_seconds{stage="convert"}``), Prometheus style.  Every
mutation is thread-safe, and a registry built with ``enabled=False``
hands out shared no-op instruments so a disabled node pays one
attribute lookup and an empty method call per instrumentation point —
near-zero cost on the hot path.

Histograms additionally carry an **exemplar**: the trace id of their
worst recent observation (``observe(value, trace_id=...)``), so a p99
spike in a dashboard links straight to the one trace that caused it.
Exemplars ride in :meth:`Histogram.sample` / ``collect()`` output but
are deliberately left out of :func:`MetricsRegistry.render_prometheus`
— the text exposition stays strictly parseable by
:func:`parse_exposition`.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricFamily", "MetricsRegistry",
    "NULL_REGISTRY", "parse_exposition",
]

#: reservoir size per histogram child; old samples are evicted FIFO so
#: the quantiles track recent behaviour without unbounded memory.
HISTOGRAM_RESERVOIR = 2048

#: quantiles reported by histogram summaries and the text exposition.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


class _Timer:
    """Context manager that observes its wall-clock span on exit.

    Given a tracing span, the observation carries its trace id so the
    histogram's exemplar can link back to the trace.
    """

    __slots__ = ("_histogram", "_started", "_span")

    def __init__(self, histogram: "Histogram", span=None):
        self._histogram = histogram
        self._started = 0.0
        self._span = span

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        trace_id = getattr(self._span, "trace_id", 0) or None
        self._histogram.observe(
            time.perf_counter() - self._started, trace_id=trace_id)


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> dict:
        """Snapshot for :meth:`MetricsRegistry.collect`."""
        return {"value": self.value}


class Gauge:
    """An instantaneous level that can go up and down."""

    kind = "gauge"
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Raise the gauge by ``amount``."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Lower the gauge by ``amount``."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> dict:
        """Snapshot for :meth:`MetricsRegistry.collect`."""
        return {"value": self.value}


class Histogram:
    """A distribution with count/sum/min/max and reservoir quantiles."""

    kind = "histogram"
    __slots__ = ("_lock", "_samples", "count", "total", "min", "max",
                 "_reservoir", "_exemplar", "_exemplar_at")

    def __init__(self, reservoir: int = HISTOGRAM_RESERVOIR):
        self._lock = threading.Lock()
        self._samples: deque = deque(maxlen=reservoir)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._reservoir = reservoir
        self._exemplar: dict | None = None
        self._exemplar_at = 0

    def observe(self, value: float, trace_id=None) -> None:
        """Record one observation.

        A ``trace_id`` makes the observation an exemplar candidate:
        the histogram remembers the trace of its worst *recent* sample
        (worst value wins; a stale exemplar older than one reservoir's
        worth of observations is displaced by any traced sample).
        """
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self._samples.append(value)
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if trace_id:
                stale = self._exemplar is None or \
                    self.count - self._exemplar_at > self._reservoir
                if stale or value >= self._exemplar["value"]:
                    self._exemplar = {"value": value,
                                      "trace_id": trace_id}
                    self._exemplar_at = self.count

    def time(self, span=None) -> _Timer:
        """Context manager timing a block into this histogram.

        ``span`` (a tracing span) makes the timing an exemplar
        candidate carrying that span's trace id.
        """
        return _Timer(self, span)

    def percentile(self, q: float) -> float:
        """Reservoir quantile (nearest-rank); 0.0 with no samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        rank = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[rank]

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def sample(self) -> dict:
        """Snapshot: count/sum/min/max plus the summary quantiles.

        Includes an ``exemplar`` key (``{"value", "trace_id"}``) when
        a traced observation has been recorded.
        """
        with self._lock:
            count, total = self.count, self.total
            lo, hi = self.min, self.max
            exemplar = dict(self._exemplar) if self._exemplar else None
        summary = {
            "count": count,
            "sum": round(total, 9),
            "min": lo if lo is not None else 0.0,
            "max": hi if hi is not None else 0.0,
        }
        for q in SUMMARY_QUANTILES:
            summary[f"p{int(q * 100)}"] = self.percentile(q)
        if exemplar is not None:
            summary["exemplar"] = exemplar
        return summary


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge,
                 "histogram": Histogram}


class MetricFamily:
    """A named group of instruments distinguished by label values.

    ``labels()`` materializes (or retrieves) the child for one label
    combination.  A family declared without label names has exactly one
    anonymous child, and the instrument methods (``inc``, ``set``,
    ``observe``, ``time``) can be called on the family directly.
    """

    def __init__(self, kind: str, name: str, help: str = "",
                 labelnames: tuple[str, ...] = ()):
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple, object] = {}

    def labels(self, **labelvalues) -> "Counter | Gauge | Histogram":
        """The child instrument for one combination of label values."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(labelvalues)}")
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = _METRIC_TYPES[self.kind]()
                self._children[key] = child
        return child

    def _anonymous(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name} is labeled {self.labelnames}; "
                "use .labels(...)")
        return self.labels()

    # -- unlabeled convenience methods ---------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        """Increment the (unlabeled) family's single child."""
        self._anonymous().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the (unlabeled) family's single gauge child."""
        self._anonymous().dec(amount)

    def set(self, value: float) -> None:
        """Set the (unlabeled) family's single gauge child."""
        self._anonymous().set(value)

    def observe(self, value: float, trace_id=None) -> None:
        """Observe into the (unlabeled) family's single histogram."""
        self._anonymous().observe(value, trace_id=trace_id)

    def time(self, span=None) -> _Timer:
        """Timing context manager on the (unlabeled) histogram."""
        return self._anonymous().time(span)

    # -- snapshots ------------------------------------------------------------

    def samples(self) -> list[dict]:
        """One dict per child: label values plus the child snapshot."""
        with self._lock:
            children = list(self._children.items())
        out = []
        for key, child in sorted(children):
            row = {"labels": dict(zip(self.labelnames, key))}
            row.update(child.sample())
            out.append(row)
        return out


class _NullInstrument:
    """Shared no-op stand-in for every instrument of a disabled registry."""

    kind = "null"
    name = "null"
    help = ""
    labelnames = ()

    def labels(self, **labelvalues) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, trace_id=None) -> None:
        pass

    def time(self, span=None) -> "_NullInstrument":
        return self

    def samples(self) -> list:
        return []

    @property
    def value(self) -> float:
        return 0.0

    def percentile(self, q: float) -> float:
        return 0.0

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Registry of metric families for one Hyper-Q node.

    With ``enabled=False`` every factory returns the shared no-op
    instrument and ``collect()`` is empty — instrumentation points stay
    in place at near-zero cost.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    # -- factories -------------------------------------------------------------

    def _family(self, kind: str, name: str, help: str,
                labelnames: tuple[str, ...]):
        if not self.enabled:
            return NULL_INSTRUMENT
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(kind, name, help, labelnames)
                self._families[name] = family
            elif family.kind != kind or \
                    family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name} re-registered with a different "
                    "type or label set")
        return family

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> MetricFamily:
        """Get or create the counter family ``name``."""
        return self._family("counter", name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> MetricFamily:
        """Get or create the gauge family ``name``."""
        return self._family("gauge", name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = ()) -> MetricFamily:
        """Get or create the histogram family ``name``."""
        return self._family("histogram", name, help, labelnames)

    # -- export ----------------------------------------------------------------

    def collect(self) -> dict:
        """Snapshot of every family: ``{name: {type, help, samples}}``."""
        with self._lock:
            families = list(self._families.values())
        return {
            family.name: {
                "type": family.kind,
                "help": family.help,
                "samples": family.samples(),
            }
            for family in sorted(families, key=lambda f: f.name)
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the whole registry."""
        lines: list[str] = []
        for name, family in sorted(self.collect().items()):
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['type']}")
            for sample in family["samples"]:
                labels = sample["labels"]
                if family["type"] == "histogram":
                    lines.append(_expo(f"{name}_count", labels,
                                       sample["count"]))
                    lines.append(_expo(f"{name}_sum", labels,
                                       sample["sum"]))
                    for q in SUMMARY_QUANTILES:
                        qlabels = dict(labels, quantile=str(q))
                        lines.append(_expo(name, qlabels,
                                           sample[f"p{int(q * 100)}"]))
                else:
                    lines.append(_expo(name, labels, sample["value"]))
        return "\n".join(lines) + ("\n" if lines else "")


def _expo(name: str, labels: dict, value) -> str:
    """One Prometheus exposition line."""
    if labels:
        body = ",".join(
            f'{k}="{_escape(v)}"' for k, v in sorted(labels.items()))
        name = f"{name}{{{body}}}"
    if isinstance(value, float) and value == int(value):
        value = int(value)
    return f"{name} {value}"


def _escape(value) -> str:
    return str(value).replace("\\", r"\\").replace('"', r'\"') \
        .replace("\n", r"\n")


# -- strict exposition-format parsing ------------------------------------------

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_LINE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$")


def _parse_labels(body: str, line_no: int) -> dict:
    """Parse a ``k="v",k2="v2"`` label body, honouring escapes."""
    labels: dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.find('="', i)
        if eq < 0:
            raise ValueError(
                f"line {line_no}: malformed label body {body!r}")
        name = body[i:eq]
        if not _LABEL_NAME_RE.match(name):
            raise ValueError(
                f"line {line_no}: bad label name {name!r}")
        if name in labels:
            raise ValueError(
                f"line {line_no}: duplicate label {name!r}")
        # scan the quoted value, honouring backslash escapes
        j = eq + 2
        value_chars: list[str] = []
        while j < len(body):
            char = body[j]
            if char == "\\":
                if j + 1 >= len(body):
                    raise ValueError(
                        f"line {line_no}: dangling escape in {body!r}")
                escaped = body[j + 1]
                if escaped == "n":
                    value_chars.append("\n")
                elif escaped in ('"', "\\"):
                    value_chars.append(escaped)
                else:
                    raise ValueError(
                        f"line {line_no}: bad escape "
                        f"'\\{escaped}' in {body!r}")
                j += 2
            elif char == '"':
                break
            else:
                value_chars.append(char)
                j += 1
        else:
            raise ValueError(
                f"line {line_no}: unterminated label value in {body!r}")
        labels[name] = "".join(value_chars)
        i = j + 1
        if i < len(body):
            if body[i] != ",":
                raise ValueError(
                    f"line {line_no}: expected ',' between labels "
                    f"in {body!r}")
            i += 1
    return labels


def parse_exposition(text: str) -> dict:
    """Strictly parse Prometheus text exposition back to structure.

    The inverse of :meth:`MetricsRegistry.render_prometheus`, used by
    CI to prove the renderer emits well-formed exposition.  Raises
    :class:`ValueError` on anything malformed: unknown line shapes,
    bad metric/label names, bad escapes, non-numeric values, samples
    without a preceding ``# TYPE``, sample names inconsistent with the
    declared type (histograms may only emit ``<name>_count``,
    ``<name>_sum``, and quantile-labeled ``<name>`` lines), or
    duplicate series.

    Returns ``{metric: {"type", "help",
    "samples": [{"name", "labels", "value"}]}}``.
    """
    metrics: dict[str, dict] = {}
    seen_series: set[tuple] = set()

    def owner_of(sample_name: str, line_no: int) -> tuple[str, dict]:
        for candidate in (sample_name,
                          sample_name.rsplit("_", 1)[0]):
            meta = metrics.get(candidate)
            if meta is not None:
                return candidate, meta
        raise ValueError(
            f"line {line_no}: sample {sample_name!r} has no "
            "preceding # TYPE")

    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line:
            raise ValueError(f"line {line_no}: blank line")
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            if not _METRIC_NAME_RE.match(name):
                raise ValueError(
                    f"line {line_no}: bad metric name {name!r}")
            if name in metrics:
                raise ValueError(
                    f"line {line_no}: duplicate HELP for {name}")
            metrics[name] = {"type": None, "help": help_text,
                             "samples": []}
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, kind = rest.partition(" ")
            if not _METRIC_NAME_RE.match(name):
                raise ValueError(
                    f"line {line_no}: bad metric name {name!r}")
            if kind not in _METRIC_TYPES:
                raise ValueError(
                    f"line {line_no}: unknown metric type {kind!r}")
            meta = metrics.setdefault(
                name, {"type": None, "help": "", "samples": []})
            if meta["type"] is not None:
                raise ValueError(
                    f"line {line_no}: duplicate TYPE for {name}")
            if meta["samples"]:
                raise ValueError(
                    f"line {line_no}: TYPE after samples for {name}")
            meta["type"] = kind
            continue
        if line.startswith("#"):
            raise ValueError(
                f"line {line_no}: unknown comment {line!r}")
        match = _SAMPLE_LINE_RE.match(line)
        if not match:
            raise ValueError(
                f"line {line_no}: malformed sample line {line!r}")
        sample_name, label_body, value_text = match.groups()
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(
                f"line {line_no}: non-numeric value "
                f"{value_text!r}") from None
        labels = _parse_labels(label_body, line_no) \
            if label_body else {}
        owner, meta = owner_of(sample_name, line_no)
        if meta["type"] is None:
            raise ValueError(
                f"line {line_no}: sample {sample_name!r} precedes "
                f"# TYPE {owner}")
        if meta["type"] == "histogram":
            suffix = sample_name[len(owner):]
            if suffix not in ("", "_count", "_sum"):
                raise ValueError(
                    f"line {line_no}: sample {sample_name!r} not "
                    f"valid for histogram {owner}")
            if suffix == "" and "quantile" not in labels:
                raise ValueError(
                    f"line {line_no}: histogram series {owner} "
                    "without a quantile label")
        elif sample_name != owner:
            raise ValueError(
                f"line {line_no}: sample {sample_name!r} not valid "
                f"for {meta['type']} {owner}")
        series_key = (sample_name, tuple(sorted(labels.items())))
        if series_key in seen_series:
            raise ValueError(
                f"line {line_no}: duplicate series {series_key}")
        seen_series.add(series_key)
        meta["samples"].append(
            {"name": sample_name, "labels": labels, "value": value})

    for name, meta in metrics.items():
        if meta["type"] is None:
            raise ValueError(f"metric {name} has HELP but no TYPE")
    return metrics


#: a shared disabled registry for components instantiated without one.
NULL_REGISTRY = MetricsRegistry(enabled=False)
