"""Series formatting for benchmark output.

Each figure's benchmark prints a table with the same rows/series the
paper reports and also writes it under ``benchmarks/results/`` so the
tables survive pytest's output capturing.
"""

from __future__ import annotations

import json
import os

__all__ = ["format_series", "write_series", "write_bench_json"]


def format_series(title: str, rows: list[dict],
                  note: str = "") -> str:
    """Render a list of uniform dicts as an aligned text table."""
    if not rows:
        return f"== {title} ==\n(no data)\n"
    columns = list(rows[0].keys())
    rendered = [[_cell(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(r[i]) for r in rendered))
        for i, c in enumerate(columns)
    ]
    lines = [f"== {title} =="]
    if note:
        lines.append(note)
    lines.append("  ".join(
        str(c).ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines) + "\n"


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if value is None:
        return "-"
    return str(value)


def write_series(path: str, text: str) -> None:
    """Write a rendered table, creating the results directory."""
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def write_bench_json(path: str, payload: dict) -> str:
    """Write one machine-readable benchmark result file.

    These are the ``BENCH_*.json`` files at the repo root — the perf
    trajectory consumed by CI and by humans comparing PRs (see
    ``docs/PERFORMANCE.md`` for the schema conventions).
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
