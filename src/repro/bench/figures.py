"""Programmatic regeneration of every figure in the paper's evaluation.

Each ``figN_series`` function runs the corresponding experiment and
returns the rows the paper's figure plots; ``regenerate_all`` writes the
formatted tables to a directory.  The pytest benchmarks under
``benchmarks/`` call these same functions and add expected-shape
assertions; the CLI exposes them as ``python -m repro figures``.

``scale`` multiplies the row counts of the real-execution experiments
(Figures 7, 8, 11 and the session sweep); the discrete-event sweeps
(Figures 9, 10) have fixed modelled workloads.
"""

from __future__ import annotations

import os

from repro.baselines import SingletonInsertLoader
from repro.bench.harness import run_import_workload
from repro.bench.report import format_series, write_series
from repro.cdw.engine import CdwEngine
from repro.core.config import HyperQConfig
from repro.sim import SimParams, simulate_acquisition
from repro.workloads import make_workload

__all__ = [
    "fig7_series", "fig8_series", "fig9_series", "fig10_series",
    "fig11_series", "sessions_series", "fig7_paper_scale_series",
    "regenerate_all", "FIGURES",
]

_DEFAULT_CONFIG = dict(converters=4, filewriters=2, credits=32)


def _scaled(base_rows: int, scale: float) -> int:
    return max(int(base_rows * scale), 100)


# -- Figure 7: dataset size ---------------------------------------------------

def fig7_series(scale: float = 1.0,
                multipliers: tuple[int, ...] = (1, 2, 3, 4)) -> list[dict]:
    """Figure 7 sweep: phase split vs dataset size (scaled)."""
    base_rows = _scaled(12_500, scale)
    series: list[dict] = []
    baseline = None
    for multiplier in multipliers:
        workload = make_workload(
            rows=base_rows * multiplier, row_bytes=500,
            seed=70 + multiplier)
        metrics = run_import_workload(
            workload, config=HyperQConfig(**_DEFAULT_CONFIG),
            sessions=4, chunk_bytes=256 * 1024)
        if baseline is None:
            baseline = metrics
        series.append({
            "rows": base_rows * multiplier,
            "scale": f"{multiplier}x",
            "total_s": metrics.total_s,
            "acquisition_s": metrics.acquisition_s,
            "application_s": metrics.application_s,
            "other_s": metrics.other_s,
            "acq_growth_%": round(
                100 * metrics.acquisition_s / baseline.acquisition_s),
            "app_growth_%": round(
                100 * metrics.application_s / baseline.application_s),
        })
    return series


# -- Figure 7 cross-check at paper scale (DES) -------------------------------

def fig7_paper_scale_params(rows: int) -> SimParams:
    """SimParams for one paper-scale Figure 7 point."""
    return SimParams(
        rows=rows, row_bytes=500, chunk_bytes=4 << 20,
        sessions=8, cores=8, credits=64,
        convert_cpu_per_byte=1.2e-9, convert_cpu_per_row=2e-8,
        client_bandwidth_per_session=120e6,
        disk_bandwidth=2e9, link_bandwidth=1.5e9, copy_bandwidth=5e9,
        session_setup=4.0, fixed_setup=30.0, fixed_teardown=20.0)


def fig7_paper_scale_series(
        row_counts: tuple[int, ...] = (25_000_000, 50_000_000,
                                       75_000_000, 100_000_000)
) -> list[dict]:
    """Figure 7 acquisition growth at 25M-100M rows (DES)."""
    series: list[dict] = []
    baseline = None
    for rows in row_counts:
        report = simulate_acquisition(fig7_paper_scale_params(rows))
        if baseline is None:
            baseline = report
        series.append({
            "rows_M": rows // 1_000_000,
            "acquisition_s": round(report.acquisition_time, 1),
            "total_s": round(report.total_time, 1),
            "acq_growth_%": round(100 * report.acquisition_time
                                  / baseline.acquisition_time),
            "throughput_MBps": round(
                report.throughput_bytes_per_s / 2**20, 1),
        })
    return series


# -- Figure 8: row width ------------------------------------------------------

def fig8_series(scale: float = 1.0,
                widths: tuple[int, ...] = (250, 500, 1000, 2000)
                ) -> list[dict]:
    """Figure 8 sweep: row width at constant total bytes."""
    total_bytes = _scaled(12_500, scale) * 500
    series: list[dict] = []
    for width in widths:
        rows = max(total_bytes // width, 10)
        workload = make_workload(rows=rows, row_bytes=width, seed=80)
        metrics = run_import_workload(
            workload, config=HyperQConfig(**_DEFAULT_CONFIG),
            sessions=4, chunk_bytes=256 * 1024)
        series.append({
            "row_bytes": width,
            "rows": workload.rows,
            "total_MB": round(workload.bytes_total / 2**20, 2),
            "total_s": metrics.total_s,
            "acquisition_s": metrics.acquisition_s,
            "application_s": metrics.application_s,
        })
    return series


# -- Figure 9: CPU cores (DES) --------------------------------------------------

def fig9_params(cores: int) -> SimParams:
    """SimParams for one Figure 9 core-count point."""
    return SimParams(
        rows=2_000_000, row_bytes=500, chunk_bytes=1 << 20,
        sessions=8, cores=cores, credits=128,
        convert_cpu_per_byte=1e-7, convert_cpu_per_row=0.0,
        client_bandwidth_per_session=500e6,
        disk_bandwidth=4e9, link_bandwidth=4e9, copy_bandwidth=1e10,
        fixed_setup=2.0, fixed_teardown=2.0, session_setup=0.2)


def fig9_series(cores: tuple[int, ...] = (2, 4, 8, 16)) -> list[dict]:
    """Figure 9 sweep: cores vs time% and speedup efficiency."""
    series: list[dict] = []
    baseline = None
    for count in cores:
        report = simulate_acquisition(fig9_params(count))
        if baseline is None:
            baseline = report.total_time
        multiple = count / cores[0]
        series.append({
            "cores": count,
            "sim_total_s": report.total_time,
            "time_pct_of_2core": round(
                100 * report.total_time / baseline, 1),
            "speedup_eff_S": round(
                baseline / (report.total_time * multiple), 3),
        })
    return series


# -- Figure 10: credit pool (DES) ------------------------------------------------

def fig10_params(credits: int) -> SimParams:
    """SimParams for one Figure 10 credit-pool point."""
    return SimParams(
        rows=4_400_000, row_bytes=970, chunk_bytes=64 * 1024,
        sessions=8, cores=8, credits=credits,
        switch_cost=2e-6,
        convert_cpu_per_byte=2.4e-8, convert_cpu_per_row=0.0,
        client_bandwidth_per_session=120e6,
        disk_bandwidth=4e9, link_bandwidth=4e9, copy_bandwidth=1e10,
        memory_limit_bytes=int(2.0 * (1 << 30)),
        file_threshold_bytes=256 << 20,
        fixed_setup=2.0, fixed_teardown=2.0)


def fig10_series(credit_settings: tuple[int, ...] = (
        16, 256, 1024, 4096, 16384, 1_000_000)) -> list[dict]:
    """Figure 10 sweep: credit pool vs acquisition rate/OOM."""
    series: list[dict] = []
    for credits in credit_settings:
        report = simulate_acquisition(fig10_params(credits))
        series.append({
            "credits": credits,
            "acq_rate_MBps": round(
                report.throughput_bytes_per_s / 2**20, 1)
            if not report.crashed else 0.0,
            "acq_time_s": round(report.acquisition_time, 1),
            "peak_runnable": report.peak_runnable_tasks,
            "peak_mem_GB": round(report.peak_memory_bytes / 2**30, 2),
            "outcome": "OOM-CRASH" if report.crashed else "ok",
        })
    return series


# -- Figure 11: error handling -----------------------------------------------------

def fig11_series(scale: float = 1.0,
                 error_rates: tuple[float, ...] = (0.0, 0.01, 0.02,
                                                   0.05, 0.10)
                 ) -> list[dict]:
    """Figure 11 sweep: error % — Hyper-Q vs singleton baseline."""
    rows = _scaled(4_000, scale)
    series: list[dict] = []
    for rate in error_rates:
        workload = make_workload(rows=rows, row_bytes=200, seed=110,
                                 error_rate=rate, table="PROD.F11")
        hyperq = run_import_workload(
            workload, config=HyperQConfig(**_DEFAULT_CONFIG),
            sessions=2, chunk_bytes=64 * 1024)
        baseline_workload = make_workload(
            rows=rows, row_bytes=200, seed=110, error_rate=rate,
            table="PROD.F11B")
        loader = SingletonInsertLoader(CdwEngine())
        loader.prepare(baseline_workload)
        base = loader.run(baseline_workload)
        if hyperq.rows_inserted != base.rows_inserted:
            raise AssertionError(
                "Hyper-Q and the baseline must load the same rows")
        series.append({
            "error_pct": f"{rate * 100:.0f}%",
            "hyperq_total_s": hyperq.total_s,
            "baseline_total_s": base.elapsed_s,
            "hyperq_dml_stmts": hyperq.dml_statements,
            "baseline_stmts": base.statements,
            "errors_recorded": hyperq.et_errors + hyperq.uv_errors,
        })
    return series


# -- Section 9 note: parallel sessions ------------------------------------------------

def sessions_series(scale: float = 1.0,
                    session_counts: tuple[int, ...] = (2, 4, 8, 12, 16)
                    ) -> list[dict]:
    """Section 9 sweep: acquisition rate vs parallel sessions."""
    rows = _scaled(10_000, scale)
    series: list[dict] = []
    for sessions in session_counts:
        workload = make_workload(rows=rows, row_bytes=300, seed=90)
        metrics = run_import_workload(
            workload,
            config=HyperQConfig(converters=4, filewriters=2, credits=64),
            sessions=sessions, chunk_bytes=128 * 1024)
        series.append({
            "sessions": sessions,
            "acquisition_s": metrics.acquisition_s,
            "rate_MBps": round(metrics.acquisition_rate_mb_s, 2),
        })
    return series


#: figure id -> (title, series function taking scale).
FIGURES = {
    "fig7": ("Figure 7: performance with dataset size",
             lambda scale: fig7_series(scale)),
    "fig7_paper_scale": (
        "Figure 7 cross-check at paper scale (discrete-event model)",
        lambda scale: fig7_paper_scale_series()),
    "fig8": ("Figure 8: effect of row width (constant total bytes)",
             lambda scale: fig8_series(scale)),
    "fig9": ("Figure 9: acquisition scalability with CPU cores "
             "(discrete-event model)",
             lambda scale: fig9_series()),
    "fig10": ("Figure 10: acquisition scalability with credit pool "
              "size (discrete-event model)",
              lambda scale: fig10_series()),
    "fig11": ("Figure 11: error handling performance",
              lambda scale: fig11_series(scale)),
    "sessions": ("Acquisition rate vs parallel sessions (Section 9)",
                 lambda scale: sessions_series(scale)),
}


def regenerate_all(out_dir: str, scale: float = 1.0,
                   only: list[str] | None = None) -> dict[str, str]:
    """Regenerate figures into ``out_dir``; returns {figure: path}."""
    os.makedirs(out_dir, exist_ok=True)
    written: dict[str, str] = {}
    for figure, (title, runner) in FIGURES.items():
        if only and figure not in only:
            continue
        series = runner(scale)
        text = format_series(title, series)
        path = os.path.join(out_dir, f"{figure}.txt")
        write_series(path, text)
        written[figure] = path
    return written
