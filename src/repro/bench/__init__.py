"""Benchmark harness: end-to-end job runners and series reporting."""

from repro.bench.harness import (
    Stack, build_stack, run_import_workload, run_workload_through_hyperq,
)
from repro.bench.report import format_series, write_bench_json, write_series

__all__ = [
    "Stack", "build_stack", "run_import_workload",
    "run_workload_through_hyperq", "format_series", "write_series",
    "write_bench_json",
]
