"""End-to-end job runners used by the benchmarks and the examples.

``build_stack`` assembles a complete virtualized environment (CDW engine,
cloud store, Hyper-Q node); ``run_import_workload`` pushes a generated
workload through it with an unmodified legacy client and returns the
node-side :class:`~repro.core.metrics.JobMetrics` (phase split included).
``stage_timing_rows`` turns the node's per-stage latency histograms into
table rows so benchmarks can record where time goes alongside the
figure series (see ``benchmarks/test_stage_histograms.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.core.config import HyperQConfig
from repro.core.gateway import HyperQNode
from repro.core.metrics import JobMetrics
from repro.legacy.client import ImportJobSpec, LegacyEtlClient
from repro.workloads.generator import Workload

__all__ = ["Stack", "build_stack", "run_import_workload",
           "run_workload_through_hyperq", "stage_timing_rows"]


@dataclass
class Stack:
    """A complete virtualized environment for one experiment."""

    engine: CdwEngine
    store: CloudStore
    node: HyperQNode

    def close(self) -> None:
        """Stop the node and release the stack's resources."""
        self.node.stop()

    def __enter__(self) -> "Stack":
        """Context-manager support: returns the stack itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the stack on context exit."""
        self.close()


def build_stack(config: HyperQConfig | None = None,
                native_unique: bool = True,
                link_bandwidth_bytes_per_s: float | None = None,
                listener=None) -> Stack:
    """Assemble engine + store + started Hyper-Q node.

    ``listener`` swaps the default in-memory transport for something
    else (a :class:`repro.net_tcp.TcpListener` in the concurrency
    benchmark, so front-end comparisons include real socket costs).
    """
    store = CloudStore(bandwidth_bytes_per_s=link_bandwidth_bytes_per_s)
    engine = CdwEngine(store=store, native_unique=native_unique)
    node = HyperQNode(engine, store, config=config,
                      listener=listener).start()
    return Stack(engine=engine, store=store, node=node)


def run_workload_through_hyperq(stack: Stack, workload: Workload,
                                sessions: int = 2,
                                chunk_bytes: int = 64 * 1024,
                                max_errors: int | None = None,
                                max_retries: int | None = None,
                                create_tables: bool = True) -> JobMetrics:
    """Run one import job end to end; returns Hyper-Q's job metrics."""
    client = LegacyEtlClient(stack.node.connect)
    client.logon("cdw-host", "etl", "secret")
    try:
        if create_tables:
            client.execute_sql(workload.ddl)
        spec = ImportJobSpec(
            target_table=workload.target_table,
            et_table=workload.et_table,
            uv_table=workload.uv_table,
            layout=workload.layout,
            apply_sql=workload.apply_sql,
            data=workload.data,
            format_spec=workload.format_spec,
            sessions=sessions,
            chunk_bytes=chunk_bytes,
            max_errors=max_errors,
            max_retries=max_retries,
        )
        client.run_import(spec)
    finally:
        client.logoff()
    return stack.node.completed_jobs[-1]


def stage_timing_rows(node: HyperQNode,
                      family: str = "hyperq_stage_seconds") -> list[dict]:
    """Rows (one per pipeline stage) from a node's latency histograms.

    Suitable for :func:`repro.bench.report.format_series`; milliseconds
    for readability.  Empty when the node's metrics are disabled.
    """
    collected = node.obs.registry.collect().get(family)
    if not collected:
        return []
    rows = []
    for sample in collected["samples"]:
        labels = sample["labels"]
        count = sample["count"]
        rows.append({
            "stage": labels.get("stage", "-"),
            "count": count,
            "total_s": round(sample["sum"], 4),
            "mean_ms": round(sample["sum"] / count * 1000, 3)
            if count else 0.0,
            "p50_ms": round(sample["p50"] * 1000, 3),
            "p95_ms": round(sample["p95"] * 1000, 3),
            "p99_ms": round(sample["p99"] * 1000, 3),
            "max_ms": round(sample["max"] * 1000, 3),
        })
    return rows


def run_import_workload(workload: Workload,
                        config: HyperQConfig | None = None,
                        sessions: int = 2,
                        chunk_bytes: int = 64 * 1024,
                        native_unique: bool = True,
                        max_errors: int | None = None,
                        max_retries: int | None = None) -> JobMetrics:
    """Convenience: fresh stack, one job, teardown."""
    with build_stack(config=config, native_unique=native_unique) as stack:
        return run_workload_through_hyperq(
            stack, workload, sessions=sessions, chunk_bytes=chunk_bytes,
            max_errors=max_errors, max_retries=max_retries)
