"""The CDW's CSV bulk-ingest file format.

This is the serialization the DataConverter targets and ``COPY INTO``
consumes.  Unlike legacy VARTEXT, it distinguishes SQL NULL (the unquoted
marker ``\\N``) from the empty string (``""``) — exactly the discrepancy
Section 4 says the conversion layer must bridge — and uses RFC-4180-style
quoting for delimiters, quotes, and newlines inside values.
"""

from __future__ import annotations

import datetime as _dt
import gzip
import io
import re
from decimal import Decimal
from typing import Iterable, Iterator

from repro import values
from repro.errors import DataFormatError

__all__ = [
    "encode_csv_row", "encode_csv_rows", "decode_csv_rows",
    "decode_csv_columns", "CsvKernel", "compress", "decompress",
    "NULL_MARKER",
]

NULL_MARKER = "\\N"

#: every character a non-string value can render to ("true"/"false",
#: float/Decimal digits, exponents, inf/nan, ISO dates and timestamps).
#: A delimiter outside this alphabet can never collide with a rendered
#: number/bool/date, so those fields skip the quote check entirely.
_NONSTRING_ALPHABET = frozenset("0123456789+-.:eE naiftrusl")


def _render_value(value) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float, Decimal)):
        return str(value)
    if isinstance(value, values.Timestamp):
        return value.isoformat(sep=" ")
    if isinstance(value, values.Date):
        return value.isoformat()
    raise DataFormatError(
        f"cannot serialize {type(value).__name__} into a staging file")


def _quote(text: str, delimiter: str) -> str:
    needs_quoting = (
        delimiter in text or '"' in text or "\n" in text
        or "\r" in text or text == NULL_MARKER or text == ""
    )
    if needs_quoting:
        return '"' + text.replace('"', '""') + '"'
    return text


def encode_csv_row(row: tuple, delimiter: str = ",") -> str:
    """Encode one row; NULLs become the unquoted ``\\N`` marker."""
    rendered = [
        NULL_MARKER if value is None
        else _quote(_render_value(value), delimiter)
        for value in row
    ]
    return delimiter.join(rendered) + "\n"


def encode_csv_rows(rows: Iterable[tuple], delimiter: str = ",") -> bytes:
    """Encode many rows into staging-file bytes.

    Streams row-by-row into a :class:`bytearray` so peak memory is the
    output buffer, not the output buffer plus one giant intermediate str.
    """
    out = bytearray()
    for row in rows:
        out += encode_csv_row(row, delimiter).encode("utf-8")
    return bytes(out)


class CsvKernel:
    """A row→CSV renderer compiled once per delimiter.

    :func:`encode_csv_row` re-discovers each value's type and re-checks
    quoting rules per field; the kernel picks a renderer closure per
    concrete value type up front and skips the quote scan for rendered
    values that cannot collide with the delimiter.  Output is identical
    to :func:`encode_csv_row` for every input (the stagefile test suite
    holds the two equivalent); unusual types fall back to the reference
    functions, errors included.
    """

    def __init__(self, delimiter: str = ","):
        self.delimiter = delimiter
        search = re.compile("[%s\"\n\r]" % re.escape(delimiter)).search
        self._search = search

        def quote_checked(text: str) -> str:
            if text and text != NULL_MARKER and search(text) is None:
                return text
            return '"' + text.replace('"', '""') + '"'

        self._quote_checked = quote_checked
        safe = (len(delimiter) == 1
                and delimiter not in _NONSTRING_ALPHABET)
        self._safe_nonstring = safe
        if safe:
            render_number = str

            def render_bool(value):
                return "true" if value else "false"

            def render_timestamp(value):
                return value.isoformat(sep=" ")

            render_date = _dt.date.isoformat
        else:
            def render_number(value):
                return quote_checked(str(value))

            def render_bool(value):
                return quote_checked("true" if value else "false")

            def render_timestamp(value):
                return quote_checked(value.isoformat(sep=" "))

            def render_date(value):
                return quote_checked(value.isoformat())

        self._renderers = {
            str: quote_checked,
            bool: render_bool,
            int: render_number,
            float: render_number,
            Decimal: render_number,
            _dt.datetime: render_timestamp,
            _dt.date: render_date,
        }

    def _fallback(self, value) -> str:
        # Subclasses and unsupported types: exact reference behaviour.
        return _quote(_render_value(value), self.delimiter)

    def render_row(self, row: tuple, seq: int | None = None) -> str:
        """Render one row (optionally appending a ``__SEQ`` value)."""
        renderers = self._renderers
        fallback = self._fallback
        parts: list[str] = []
        append = parts.append
        for value in row:
            if value is None:
                append(NULL_MARKER)
                continue
            render = renderers.get(value.__class__)
            append(render(value) if render is not None else fallback(value))
        if seq is not None:
            text = str(seq)
            append(text if self._safe_nonstring
                   else self._quote_checked(text))
        return self.delimiter.join(parts) + "\n"


def decode_csv_rows(data: bytes,
                    delimiter: str = ",") -> Iterator[tuple[str | None, ...]]:
    """Decode a staging file back into rows of ``str | None`` fields.

    Typing is the COPY target table's job; the file format itself only
    distinguishes NULL from text.
    """
    text = data.decode("utf-8")
    if '"' not in text and len(delimiter) == 1 and delimiter not in '"\n\r':
        # No quoting anywhere: rows are exactly the newline-separated
        # segments (the terminator's trailing empty segment excluded),
        # every CR is skipped, and fields split on the bare delimiter.
        lines = text.split("\n")
        last = len(lines) - 1
        for index, line in enumerate(lines):
            if index == last and line == "":
                break
            if "\r" in line:
                line = line.replace("\r", "")
            parts = line.split(delimiter)
            yield tuple(
                [None if part == NULL_MARKER else part for part in parts])
        return
    pos = 0
    n = len(text)
    while pos < n:
        row: list[str | None] = []
        field_chars: list[str] = []
        quoted = False
        was_quoted = False
        while pos < n:
            ch = text[pos]
            if quoted:
                if ch == '"':
                    if pos + 1 < n and text[pos + 1] == '"':
                        field_chars.append('"')
                        pos += 2
                        continue
                    quoted = False
                    pos += 1
                    continue
                field_chars.append(ch)
                pos += 1
                continue
            if ch == '"' and not field_chars:
                quoted = True
                was_quoted = True
                pos += 1
                continue
            if ch == delimiter:
                row.append(_finish_field(field_chars, was_quoted))
                field_chars = []
                was_quoted = False
                pos += 1
                continue
            if ch == "\n":
                pos += 1
                break
            if ch == "\r":
                pos += 1
                continue
            field_chars.append(ch)
            pos += 1
        else:
            if quoted:
                raise DataFormatError("unterminated quoted CSV field")
        row.append(_finish_field(field_chars, was_quoted))
        yield tuple(row)


def decode_csv_columns(data: bytes, delimiter: str,
                       arity: int) -> "list[list[str | None]] | None":
    """Columnwise :func:`decode_csv_rows`: one value list per column.

    Only handles the quote-free layout with exactly ``arity`` fields per
    line — the shape every converter-produced staging file has.  Returns
    None for quoted, ragged, or exotic-delimiter data; the caller then
    uses the row decoder, whose error behaviour (wrong-arity rows reach
    ``coerce_row``) is the canonical one.
    """
    text = data.decode("utf-8")
    if '"' in text or len(delimiter) != 1 or delimiter in '"\n\r':
        return None
    cols: list[list[str | None]] = [[] for _ in range(arity)]
    lines = text.split("\n")
    last = len(lines) - 1
    for index, line in enumerate(lines):
        if index == last and line == "":
            break
        if "\r" in line:
            line = line.replace("\r", "")
        parts = line.split(delimiter)
        if len(parts) != arity:
            return None
        for i, part in enumerate(parts):
            cols[i].append(None if part == NULL_MARKER else part)
    return cols


def _finish_field(chars: list[str], was_quoted: bool) -> str | None:
    text = "".join(chars)
    if not was_quoted and text == NULL_MARKER:
        return None
    return text


def compress(data: bytes) -> bytes:
    """Apply the staging-file compression (gzip) used before upload."""
    buffer = io.BytesIO()
    # mtime=0 keeps output deterministic for tests.
    with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as handle:
        handle.write(data)
    return buffer.getvalue()


def decompress(data: bytes) -> bytes:
    """Undo :func:`compress`, mapping corruption to DataFormatError."""
    try:
        return gzip.decompress(data)
    except (OSError, EOFError) as exc:
        raise DataFormatError(f"corrupt compressed staging file: {exc}") \
            from exc
