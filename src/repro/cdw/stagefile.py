"""The CDW's CSV bulk-ingest file format.

This is the serialization the DataConverter targets and ``COPY INTO``
consumes.  Unlike legacy VARTEXT, it distinguishes SQL NULL (the unquoted
marker ``\\N``) from the empty string (``""``) — exactly the discrepancy
Section 4 says the conversion layer must bridge — and uses RFC-4180-style
quoting for delimiters, quotes, and newlines inside values.
"""

from __future__ import annotations

import gzip
import io
from decimal import Decimal
from typing import Iterable, Iterator

from repro import values
from repro.errors import DataFormatError

__all__ = [
    "encode_csv_row", "encode_csv_rows", "decode_csv_rows",
    "compress", "decompress", "NULL_MARKER",
]

NULL_MARKER = "\\N"


def _render_value(value) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float, Decimal)):
        return str(value)
    if isinstance(value, values.Timestamp):
        return value.isoformat(sep=" ")
    if isinstance(value, values.Date):
        return value.isoformat()
    raise DataFormatError(
        f"cannot serialize {type(value).__name__} into a staging file")


def _quote(text: str, delimiter: str) -> str:
    needs_quoting = (
        delimiter in text or '"' in text or "\n" in text
        or "\r" in text or text == NULL_MARKER or text == ""
    )
    if needs_quoting:
        return '"' + text.replace('"', '""') + '"'
    return text


def encode_csv_row(row: tuple, delimiter: str = ",") -> str:
    """Encode one row; NULLs become the unquoted ``\\N`` marker."""
    rendered = [
        NULL_MARKER if value is None
        else _quote(_render_value(value), delimiter)
        for value in row
    ]
    return delimiter.join(rendered) + "\n"


def encode_csv_rows(rows: Iterable[tuple], delimiter: str = ",") -> bytes:
    """Encode many rows into staging-file bytes."""
    return "".join(
        encode_csv_row(row, delimiter) for row in rows).encode("utf-8")


def decode_csv_rows(data: bytes,
                    delimiter: str = ",") -> Iterator[tuple[str | None, ...]]:
    """Decode a staging file back into rows of ``str | None`` fields.

    Typing is the COPY target table's job; the file format itself only
    distinguishes NULL from text.
    """
    text = data.decode("utf-8")
    pos = 0
    n = len(text)
    while pos < n:
        row: list[str | None] = []
        field_chars: list[str] = []
        quoted = False
        was_quoted = False
        while pos < n:
            ch = text[pos]
            if quoted:
                if ch == '"':
                    if pos + 1 < n and text[pos + 1] == '"':
                        field_chars.append('"')
                        pos += 2
                        continue
                    quoted = False
                    pos += 1
                    continue
                field_chars.append(ch)
                pos += 1
                continue
            if ch == '"' and not field_chars:
                quoted = True
                was_quoted = True
                pos += 1
                continue
            if ch == delimiter:
                row.append(_finish_field(field_chars, was_quoted))
                field_chars = []
                was_quoted = False
                pos += 1
                continue
            if ch == "\n":
                pos += 1
                break
            if ch == "\r":
                pos += 1
                continue
            field_chars.append(ch)
            pos += 1
        else:
            if quoted:
                raise DataFormatError("unterminated quoted CSV field")
        row.append(_finish_field(field_chars, was_quoted))
        yield tuple(row)


def _finish_field(chars: list[str], was_quoted: bool) -> str | None:
    text = "".join(chars)
    if not was_quoted and text == NULL_MARKER:
        return None
    return text


def compress(data: bytes) -> bytes:
    """Apply the staging-file compression (gzip) used before upload."""
    buffer = io.BytesIO()
    # mtime=0 keeps output deterministic for tests.
    with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as handle:
        handle.write(data)
    return buffer.getvalue()


def decompress(data: bytes) -> bytes:
    """Undo :func:`compress`, mapping corruption to DataFormatError."""
    try:
        return gzip.decompress(data)
    except (OSError, EOFError) as exc:
        raise DataFormatError(f"corrupt compressed staging file: {exc}") \
            from exc
