"""The CDW type system and value coercion.

Coercion failures raise :class:`~repro.errors.ExpressionError`; inside a
set-oriented DML statement the engine converts them into a statement-level
:class:`~repro.errors.BulkExecutionError` — one bad value aborts the whole
statement, which is what forces Hyper-Q's adaptive error handling.
"""

from __future__ import annotations

from dataclasses import dataclass
from decimal import Decimal, InvalidOperation

from repro import values
from repro.errors import ExpressionError, TypeError_
from repro.legacy.types import LegacyType
from repro.sqlxc import nodes as n
from repro.sqlxc.rewrites import TYPE_MAP

__all__ = ["CdwType", "cdw_type_from_node", "cdw_type_from_legacy"]

_KNOWN_BASES = {
    "NVARCHAR", "VARCHAR", "CHAR", "SMALLINT", "INT", "BIGINT",
    "DECIMAL", "DOUBLE", "DATE", "TIMESTAMP", "BOOLEAN",
}

_INT_RANGES = {
    "SMALLINT": (-2 ** 15, 2 ** 15 - 1),
    "INT": (-2 ** 31, 2 ** 31 - 1),
    "BIGINT": (-2 ** 63, 2 ** 63 - 1),
}


@dataclass(frozen=True)
class CdwType:
    """A CDW column type, e.g. ``NVARCHAR(50)`` or ``DECIMAL(10,2)``."""

    base: str
    length: int | None = None
    scale: int | None = None

    def __post_init__(self):
        """Validate the base type name."""
        if self.base not in _KNOWN_BASES:
            raise TypeError_(f"unknown CDW type {self.base!r}")

    def render(self) -> str:
        """SQL rendering of the type, e.g. ``NVARCHAR(10)``."""
        if self.base == "DECIMAL" and self.length is not None:
            return f"DECIMAL({self.length},{self.scale or 0})"
        if self.length is not None and self.base in (
                "NVARCHAR", "VARCHAR", "CHAR"):
            return f"{self.base}({self.length})"
        return self.base

    @property
    def is_character(self) -> bool:
        return self.base in ("NVARCHAR", "VARCHAR", "CHAR")

    @property
    def is_integer(self) -> bool:
        return self.base in _INT_RANGES

    # -- coercion ----------------------------------------------------------

    def coerce(self, value, field: str | None = None):
        """Coerce ``value`` into this type, raising on failure."""
        if value is None:
            return None
        handler = getattr(self, f"_coerce_{self.base.lower()}", None)
        if handler is None:  # pragma: no cover - all bases have handlers
            raise TypeError_(f"no coercion for {self.base}")
        return handler(value, field)

    def coerce_many(self, column_values: list,
                    field: str | None = None) -> list:
        """Bulk :meth:`coerce` over one column's values.

        Semantically identical to mapping :meth:`coerce` per value; the
        common COPY shapes (decoded strings landing in character,
        integer, and double columns) run as tight loops without
        per-value dispatch, and anything irregular falls back to the
        per-value path so errors stay canonical.
        """
        base = self.base
        try:
            if base in ("NVARCHAR", "VARCHAR"):
                length = self.length
                if all(v is None
                       or (type(v) is str
                           and (length is None or len(v) <= length))
                       for v in column_values):
                    return list(column_values)
            elif base in _INT_RANGES:
                low, high = _INT_RANGES[base]
                out: list = []
                append = out.append
                for v in column_values:
                    if v is None:
                        append(None)
                        continue
                    if type(v) is str:
                        v = int(v.strip())
                    elif type(v) is not int:
                        raise ValueError(v)
                    if not low <= v <= high:
                        raise ValueError(v)
                    append(v)
                return out
            elif base == "DOUBLE":
                out = []
                append = out.append
                for v in column_values:
                    if v is None:
                        append(None)
                    elif type(v) is str:
                        append(float(v.strip()))
                    elif type(v) is float:
                        append(v)
                    else:
                        raise ValueError(v)
                return out
            elif base == "DATE":
                # exact type: datetime is a date subclass but must go
                # through the per-value path (it truncates to a date)
                if all(v is None or type(v) is values.Date
                       for v in column_values):
                    return list(column_values)
            elif base == "TIMESTAMP":
                if all(v is None or type(v) is values.Timestamp
                       for v in column_values):
                    return list(column_values)
        except ValueError:
            pass
        return [self.coerce(v, field=field) for v in column_values]

    def _char_common(self, value, field, pad: bool):
        if isinstance(value, str):
            text = value
        elif isinstance(value, (int, float, Decimal)):
            text = str(value)
        elif isinstance(value, values.Timestamp):
            text = value.isoformat(sep=" ")
        elif isinstance(value, values.Date):
            text = value.isoformat()
        else:
            raise ExpressionError(
                f"cannot coerce {type(value).__name__} to {self.render()}",
                field=field)
        if self.length is not None and len(text) > self.length:
            raise ExpressionError(
                f"value {text[:24]!r}... too long for {self.render()}"
                if len(text) > 24 else
                f"value {text!r} too long for {self.render()}",
                field=field)
        if pad and self.length is not None:
            text = text.ljust(self.length)
        return text

    def _coerce_varchar(self, value, field):
        return self._char_common(value, field, pad=False)

    def _coerce_nvarchar(self, value, field):
        return self._char_common(value, field, pad=False)

    def _coerce_char(self, value, field):
        return self._char_common(value, field, pad=True)

    def _int_common(self, value, field):
        if isinstance(value, bool):
            result = int(value)
        elif isinstance(value, int):
            result = value
        elif isinstance(value, (float, Decimal)):
            if value != int(value):
                raise ExpressionError(
                    f"non-integral value {value} for {self.base}",
                    field=field)
            result = int(value)
        elif isinstance(value, str):
            try:
                result = int(value.strip())
            except ValueError as exc:
                raise ExpressionError(
                    f"{self.base} conversion failed: {value!r}",
                    field=field) from exc
        else:
            raise ExpressionError(
                f"cannot coerce {type(value).__name__} to {self.base}",
                field=field)
        low, high = _INT_RANGES[self.base]
        if not low <= result <= high:
            raise ExpressionError(
                f"value {result} out of range for {self.base}", field=field)
        return result

    _coerce_smallint = _int_common
    _coerce_int = _int_common
    _coerce_bigint = _int_common

    def _coerce_decimal(self, value, field):
        try:
            if isinstance(value, Decimal):
                result = value
            elif isinstance(value, int):
                result = Decimal(value)
            elif isinstance(value, float):
                result = Decimal(str(value))
            elif isinstance(value, str):
                result = Decimal(value.strip())
            else:
                raise ExpressionError(
                    f"cannot coerce {type(value).__name__} to DECIMAL",
                    field=field)
        except InvalidOperation as exc:
            raise ExpressionError(
                f"DECIMAL conversion failed: {value!r}", field=field) from exc
        if self.scale is not None:
            quantum = Decimal(1).scaleb(-self.scale)
            try:
                result = result.quantize(quantum)
            except InvalidOperation as exc:
                raise ExpressionError(
                    f"DECIMAL({self.length},{self.scale}) overflow: "
                    f"{value!r}", field=field) from exc
        if self.length is not None:
            digits = result.as_tuple()
            integral = len(digits.digits) + digits.exponent
            if integral > self.length - (self.scale or 0):
                raise ExpressionError(
                    f"value {result} exceeds precision {self.length}",
                    field=field)
        return result

    def _coerce_double(self, value, field):
        if isinstance(value, (int, float, Decimal)) \
                and not isinstance(value, bool):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError as exc:
                raise ExpressionError(
                    f"DOUBLE conversion failed: {value!r}",
                    field=field) from exc
        raise ExpressionError(
            f"cannot coerce {type(value).__name__} to DOUBLE", field=field)

    def _coerce_date(self, value, field):
        if isinstance(value, values.Timestamp):
            return value.date()
        if isinstance(value, values.Date):
            return value
        if isinstance(value, str):
            return values.parse_date(value, field=field)
        raise ExpressionError(
            f"DATE conversion failed: {value!r}", field=field)

    def _coerce_timestamp(self, value, field):
        if isinstance(value, values.Timestamp):
            return value
        if isinstance(value, values.Date):
            return values.Timestamp(value.year, value.month, value.day)
        if isinstance(value, str):
            return values.parse_timestamp(value, field=field)
        raise ExpressionError(
            f"TIMESTAMP conversion failed: {value!r}", field=field)

    def _coerce_boolean(self, value, field):
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "t", "1"):
                return True
            if lowered in ("false", "f", "0"):
                return False
        raise ExpressionError(
            f"BOOLEAN conversion failed: {value!r}", field=field)


def cdw_type_from_node(type_name: n.TypeName) -> CdwType:
    """Build a :class:`CdwType` from an AST type name (either dialect)."""
    base = type_name.base
    if type_name.dialect == "legacy" or base not in _KNOWN_BASES:
        mapped = TYPE_MAP.get(base)
        if mapped is None:
            raise TypeError_(f"type {base!r} has no CDW equivalent")
        base = mapped
    return CdwType(base, type_name.length, type_name.scale)


def cdw_type_from_legacy(legacy: LegacyType) -> CdwType:
    """Map a legacy type object to its CDW storage type (Section 6)."""
    mapped = TYPE_MAP.get(legacy.base)
    if mapped is None:
        raise TypeError_(f"legacy type {legacy.base!r} has no CDW mapping")
    return CdwType(mapped, legacy.length, legacy.scale)
