"""Reader/writer locks for the CDW engine.

PRs 1-4 left the engine behind one global ``threading.RLock``: every
statement — a multi-second COPY INTO included — serialized against every
other, so a monitoring SELECT or an export fetch stalled behind bulk
writes.  This module provides the two pieces that replace it:

* :class:`RWLock` — a reader/writer lock with *writer preference* (new
  readers queue behind a waiting writer, so bulk loads are not starved
  by a stream of monitoring reads) that is **reentrant for both sides**:
  a thread already holding the write side may re-acquire read or write
  (Beta's uniqueness emulation wraps several engine statements in one
  table-level write hold), and a thread already holding the read side is
  granted further read acquisitions immediately even when a writer is
  queued (otherwise writer preference would deadlock reentrant readers).
  Read→write upgrade is refused with ``RuntimeError`` — it deadlocks
  with two upgraders, so the engine never attempts it.

* :class:`LockManager` — the engine's lock table: one catalog-level
  RWLock guarding the table *namespace* plus one lazily-created RWLock
  per table guarding that table's *rows*.  Statements acquire the
  catalog read side plus their table locks in a single global order
  (catalog first, then tables sorted by upper-cased name, write before
  read for the same table), which makes deadlock impossible regardless
  of statement mix.  DDL takes the catalog write side exclusively.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["RWLock", "LockManager"]


class RWLock:
    """Reentrant reader/writer lock with writer preference."""

    def __init__(self):
        self._cond = threading.Condition(threading.Lock())
        #: per-thread count of read holds (reentrancy bookkeeping).
        self._readers: dict[int, int] = {}
        self._writer: int | None = None     # thread id holding write
        self._writer_depth = 0
        self._writers_waiting = 0

    # -- write side ---------------------------------------------------------

    def acquire_write(self) -> None:
        """Take the exclusive side; reentrant for the current writer.

        Raises ``RuntimeError`` on a read→write upgrade attempt.
        """
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if self._readers.get(me):
                raise RuntimeError(
                    "read->write lock upgrade is not supported")
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        """Drop one write hold; wakes waiters on the last one."""
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError("release_write by non-owner thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # -- read side ----------------------------------------------------------

    def acquire_read(self) -> None:
        """Take the shared side; queues behind a waiting writer unless
        this thread already holds either side (reentrancy)."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or self._readers.get(me):
                # Reentrant: a write holder reads its own data; an
                # existing reader must not queue behind a waiting writer
                # (writer preference would deadlock it).
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        """Drop one read hold; wakes writers when the last reader leaves."""
        me = threading.get_ident()
        with self._cond:
            count = self._readers.get(me, 0)
            if count == 0:
                raise RuntimeError("release_read by non-reader thread")
            if count == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = count - 1

    # -- context managers ---------------------------------------------------

    @contextmanager
    def read(self):
        """``with lock.read():`` — scoped shared hold."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """``with lock.write():`` — scoped exclusive hold."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class LockManager:
    """Catalog + per-table RWLocks with a deadlock-free global order."""

    def __init__(self):
        self.catalog = RWLock()
        self._meta = threading.Lock()
        self._tables: dict[str, RWLock] = {}

    def table_lock(self, name: str) -> RWLock:
        """The RWLock for a table name (created on first use).

        Locks are keyed by upper-cased name and survive DROP/CREATE of
        the same name — a lock object is identity, not catalog state, so
        reusing it across re-creations is harmless and keeps the lock
        table append-only.
        """
        key = name.upper()
        with self._meta:
            lock = self._tables.get(key)
            if lock is None:
                lock = self._tables[key] = RWLock()
            return lock

    @contextmanager
    def statement(self, read_tables: "set[str]", write_tables: "set[str]"):
        """Hold the locks for one DML/query statement.

        Catalog read side first, then table locks in sorted-name order;
        a table in both sets is taken write-only (write subsumes read).
        """
        writes = {t.upper() for t in write_tables}
        reads = {t.upper() for t in read_tables} - writes
        self.catalog.acquire_read()
        held: list[tuple[RWLock, bool]] = []
        try:
            for name in sorted(reads | writes):
                lock = self.table_lock(name)
                if name in writes:
                    lock.acquire_write()
                    held.append((lock, True))
                else:
                    lock.acquire_read()
                    held.append((lock, False))
            yield
        finally:
            for lock, is_write in reversed(held):
                if is_write:
                    lock.release_write()
                else:
                    lock.release_read()
            self.catalog.release_read()

    @contextmanager
    def ddl(self):
        """Exclusive catalog hold for namespace changes (and fallbacks)."""
        with self.catalog.write():
            yield
