"""The cloud data warehouse (CDW) substrate.

A from-scratch, in-process stand-in for the Synapse-like target system:

- :mod:`repro.cdw.types` — the CDW type system (NVARCHAR, INT, DOUBLE...);
- :mod:`repro.cdw.expressions` — the scalar expression evaluator (shared
  with the reference legacy server, whose SQL semantics coincide at the
  expression level);
- :mod:`repro.cdw.table` — catalog and row storage with optional native
  uniqueness enforcement;
- :mod:`repro.cdw.engine` — the SQL executor.  DML is strictly
  *set-oriented*: a statement either applies completely or aborts with a
  :class:`~repro.errors.BulkExecutionError` that does not identify the
  offending row — the property that motivates Section 7's adaptive error
  handling;
- :mod:`repro.cdw.stagefile` — the CDW's CSV bulk-ingest file format
  (distinguishes NULL from the empty string, unlike legacy VARTEXT);
- :mod:`repro.cdw.cloudstore` — the simulated cloud object store with an
  optional link-bandwidth model;
- :mod:`repro.cdw.bulkloader` — the AzCopy/`aws s3 cp`-like utility that
  uploads finalized staging files (optionally compressed) to the store.
"""

from repro.cdw.types import CdwType, cdw_type_from_node, cdw_type_from_legacy
from repro.cdw.table import CdwTable, ColumnSpec
from repro.cdw.engine import CdwEngine, CdwResult
from repro.cdw.cloudstore import CloudStore
from repro.cdw.bulkloader import CloudBulkLoader

__all__ = [
    "CdwType", "cdw_type_from_node", "cdw_type_from_legacy",
    "CdwTable", "ColumnSpec", "CdwEngine", "CdwResult",
    "CloudStore", "CloudBulkLoader",
]
