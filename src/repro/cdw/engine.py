"""The CDW SQL executor.

Executes the shared AST (parsed in the ``cdw`` dialect) against the
catalog.  Two properties matter for the paper:

1. **Set-oriented DML.**  Every DML statement is all-or-nothing: effects
   are computed against a working copy and committed only if *every* row
   succeeds.  A single bad tuple raises
   :class:`~repro.errors.BulkExecutionError` whose message deliberately
   does not identify the row — "the error will be observed at the level of
   the chunk containing the faulty tuple rather than at the tuple level"
   (Section 7).  This is what Hyper-Q's adaptive error handling works
   around.
2. **Optional native uniqueness.**  ``native_unique=False`` models CDWs
   that do not enforce declared unique constraints; Hyper-Q then emulates
   the check (Section 7, citing [26]).

MERGE applies source rows *in order* against the working target (later
source rows see earlier ones' effects).  That is intentionally the legacy
tuple-at-a-time upsert semantics the virtualization layer must preserve,
not strict SQL:2003 MERGE.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from decimal import Decimal

from repro import values
from repro.cdw import stagefile
from repro.cdw.cloudstore import CloudStore
from repro.cdw.expressions import (_Evaluator, ColumnBatch, GatherBatch,
                                   RowContext, compile_expr, compile_vector,
                                   evaluate, is_true, prepare_layout,
                                   vec_values)
from repro.cdw.locks import LockManager
from repro.cdw.table import Catalog, CdwTable, ColumnSpec
from repro.cdw.types import cdw_type_from_node
from repro.errors import (
    BulkExecutionError, CatalogError, CdwError, ExpressionError,
    SqlTranslationError,
)
from repro.plancache import PlanCache
from repro.sqlxc import nodes as n
from repro.sqlxc.parser import parse_statement

__all__ = ["CdwEngine", "CdwResult"]

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


@dataclass
class CdwResult:
    """Outcome of one statement."""

    kind: str                       # 'rows' | 'count' | 'ddl'
    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rows_inserted: int = 0
    rows_updated: int = 0
    rows_deleted: int = 0

    @property
    def activity_count(self) -> int:
        if self.kind == "rows":
            return len(self.rows)
        return self.rows_inserted + self.rows_updated + self.rows_deleted


def _sort_key(value):
    """Total order over heterogeneous SQL values (NULLs first)."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float, Decimal)):
        return (2, float(value))
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, values.Timestamp):
        return (4, value.isoformat())
    if isinstance(value, values.Date):
        return (4, value.isoformat() + " 00:00:00")
    return (5, repr(value))


class CdwEngine:
    """An in-process cloud data warehouse."""

    def __init__(self, store: CloudStore | None = None,
                 native_unique: bool = True,
                 parse_cache_size: int = 256,
                 zone_map_pruning: bool = True,
                 columnar: bool = True):
        self.catalog = Catalog()
        self.store = store
        self.native_unique = native_unique
        #: catalog + per-table reader/writer locks.  Statements lock only
        #: the tables they touch (write beats read), so read-only SQL and
        #: exports proceed concurrently with a bulk load's COPY INTO, and
        #: eager-apply DML ranges interleave with later files' copies.
        self.locks = LockManager()
        self._counts_lock = threading.Lock()
        #: slice BETWEEN scans over zone-mapped tables via binary search
        #: (False keeps the full-scan path, for A/B benchmarking).
        self.zone_map_pruning = zone_map_pruning
        #: store tables as typed column vectors and execute SELECT /
        #: INSERT..SELECT / COPY / plain DELETE over column batches.
        #: False keeps row-of-tuples storage and the per-row interpreter
        #: everywhere — the behavioural oracle for differential tests.
        self.columnar = columnar
        #: parsed-statement cache for SQL text handed to execute():
        #: repeated statement texts (staging DDL probes, prepared error
        #: INSERT shapes, bench workloads) skip the parser entirely.
        #: Safe because executors treat parsed trees as read-only.
        self.plan_cache = PlanCache(capacity=parse_cache_size)
        #: statement log (statement type -> count), for tests/metrics.
        self.statement_counts: dict[str, int] = {}
        #: optional observability hook ``(statement_name, seconds)``,
        #: called after every execution (including failed ones); the
        #: Hyper-Q node points this at its statement-latency histogram.
        self.on_statement: "callable | None" = None
        #: optional observability hook ``(rows_skipped,)`` fired whenever
        #: a zone-map slice avoids scanning that many rows.
        self.on_scan_pruned: "callable | None" = None

    # -- locking -------------------------------------------------------------

    def _lock_sets(self, statement: n.Statement
                   ) -> "tuple[set[str], set[str]] | None":
        """(read, write) table-name sets for a statement.

        Returns None for DDL and unknown shapes — those fall back to an
        exclusive catalog hold.  Read names come from every TableRef in
        the tree (joins, derived tables, scalar subqueries included), so
        a held statement never touches an unlocked table.
        """
        if isinstance(statement, (n.Insert, n.Update, n.Delete)):
            writes = {statement.table.name}
        elif isinstance(statement, n.Merge):
            writes = {statement.target.name}
        elif isinstance(statement, n.CopyInto):
            writes = {statement.table.name}
        elif isinstance(statement, n.Upsert):
            writes = {statement.update.table.name,
                      statement.insert.table.name}
        elif isinstance(statement, (n.Select, n.SetOp)):
            writes = set()
        else:
            return None
        reads = {node.name for node in n.walk(statement)
                 if isinstance(node, n.TableRef)}
        return reads, writes

    # -- public API ----------------------------------------------------------

    def execute(self, statement: "str | n.Statement") -> CdwResult:
        """Execute one statement (SQL text is parsed in the cdw dialect)."""
        if isinstance(statement, str):
            statement = self.plan_cache.get_or_compile(
                statement,
                lambda: parse_statement(statement, dialect="cdw"))
        name = type(statement).__name__
        with self._counts_lock:
            self.statement_counts[name] = \
                self.statement_counts.get(name, 0) + 1
        handler = getattr(self, f"_exec_{name}", None)
        if handler is None:
            raise CdwError(f"cannot execute {name} statement")
        sets = self._lock_sets(statement)
        guard = self.locks.ddl() if sets is None \
            else self.locks.statement(*sets)
        with guard:
            hook = self.on_statement
            if hook is None:
                return handler(statement)
            started = time.perf_counter()
            try:
                return handler(statement)
            finally:
                hook(name, time.perf_counter() - started)

    def query(self, sql: "str | n.Select") -> list[tuple]:
        """Convenience: run a SELECT and return its rows."""
        result = self.execute(sql)
        if result.kind != "rows":
            raise CdwError("query() expects a SELECT")
        return result.rows

    def table(self, name: str) -> CdwTable:
        """Look up a table object in the catalog."""
        return self.catalog.get(name)

    def storage_snapshot(self) -> dict:
        """Per-table physical storage: ``{name: {rows, bytes, mode}}``."""
        return {table.name: table.storage_info()
                for table in self.catalog.tables.values()}

    # -- DDL ---------------------------------------------------------------------

    def _exec_CreateTable(self, stmt: n.CreateTable) -> CdwResult:
        columns = [
            ColumnSpec(c.name, cdw_type_from_node(c.type), c.nullable)
            for c in stmt.columns
        ]
        table = CdwTable(stmt.table.name, columns,
                         [tuple(k) for k in stmt.unique],
                         columnar=self.columnar)
        self.catalog.create(table, if_not_exists=stmt.if_not_exists)
        return CdwResult(kind="ddl")

    def _exec_CreateTableAs(self, stmt: n.CreateTableAs) -> CdwResult:
        rows, columns = self._run_query(stmt.query, outer=None)
        specs = [
            ColumnSpec(name, _infer_cdw_type([row[i] for row in rows]))
            for i, name in enumerate(columns)
        ]
        table = CdwTable(stmt.table.name, specs, columnar=self.columnar)
        created = self.catalog.create(
            table, if_not_exists=stmt.if_not_exists)
        if created:
            table.rows = [table.coerce_row(row) for row in rows]
        return CdwResult(kind="count",
                         rows_inserted=len(rows) if created else 0)

    def _exec_AlterTable(self, stmt: n.AlterTable) -> CdwResult:
        """Schema evolution (``_lock_sets`` returns None for DDL, so
        this always runs under the exclusive catalog hold)."""
        table = self.catalog.get(stmt.table.name)
        if stmt.action == "add":
            spec = ColumnSpec(stmt.column.name,
                              cdw_type_from_node(stmt.column.type),
                              stmt.column.nullable)
            table.add_column(spec, if_not_exists=stmt.if_not_exists)
        elif stmt.action == "rename":
            table.rename_column(stmt.old_name, stmt.new_name)
        else:
            raise CdwError(
                f"unknown ALTER TABLE action {stmt.action!r}")
        return CdwResult(kind="ddl")

    def _exec_DropTable(self, stmt: n.DropTable) -> CdwResult:
        self.catalog.drop(stmt.table.name, if_exists=stmt.if_exists)
        return CdwResult(kind="ddl")

    # -- COPY INTO ------------------------------------------------------------------

    def _exec_CopyInto(self, stmt: n.CopyInto) -> CdwResult:
        if self.store is None:
            raise CdwError("engine has no cloud store attached")
        table = self.catalog.get(stmt.table.name)
        container, prefix = CloudStore.parse_url(stmt.source_url)
        datas: list[bytes] = []
        for blob in self.store.list_blobs(container, prefix):
            data = self.store.get_blob(container, blob)
            if blob.endswith(".gz"):
                data = stagefile.decompress(data)
            datas.append(data)
        if self.columnar and table.columnar:
            result = self._try_columnar_copy(table, datas, stmt.delimiter)
            if result is not None:
                return result
        new_rows: list[tuple] = []
        for data in datas:
            for raw in stagefile.decode_csv_rows(data, stmt.delimiter):
                try:
                    new_rows.append(table.coerce_row(raw))
                except ExpressionError as exc:
                    raise BulkExecutionError(
                        f"COPY INTO {table.name} aborted: {exc}",
                        field=exc.field) from exc
        if self.native_unique and table.unique_keys:
            table.check_unique_append(new_rows)
        table.append_rows(new_rows)
        return CdwResult(kind="count", rows_inserted=len(new_rows))

    def _try_columnar_copy(self, table: CdwTable, datas: list[bytes],
                           delimiter: str) -> "CdwResult | None":
        """Staged bytes straight into column vectors.

        CSV fields decode columnwise (:func:`stagefile.decode_csv_columns`),
        coerce in bulk per column, and append without intermediate row
        tuples.  Returns None — quoted/ragged data, any coercion or NOT
        NULL failure — to let the row path produce the canonical result
        or error (decode and coercion have no side effects, so re-running
        them is safe).
        """
        cols: "list[list] | None" = None
        for data in datas:
            decoded = stagefile.decode_csv_columns(data, delimiter,
                                                   table.arity)
            if decoded is None:
                return None
            if cols is None:
                cols = decoded
            else:
                for bucket, col in zip(cols, decoded):
                    bucket.extend(col)
        if cols is None:
            cols = [[] for _ in range(table.arity)]
        try:
            coerced = []
            for spec, col in zip(table.columns, cols):
                if not spec.nullable and any(v is None for v in col):
                    return None
                coerced.append(spec.ctype.coerce_many(col,
                                                      field=spec.name))
        except ExpressionError:
            return None
        if self.native_unique and table.unique_keys:
            table.check_unique_append_columns(coerced)
        table.append_columns(coerced)
        return CdwResult(kind="count",
                         rows_inserted=len(cols[0]) if cols else 0)

    # -- SELECT ------------------------------------------------------------------------

    def _exec_Select(self, stmt: n.Select) -> CdwResult:
        rows, columns = self._run_select(stmt, outer=None)
        return CdwResult(kind="rows", columns=columns, rows=rows)

    def _exec_SetOp(self, stmt: n.SetOp) -> CdwResult:
        rows, columns = self._run_query(stmt, outer=None)
        return CdwResult(kind="rows", columns=columns, rows=rows)

    def _run_query(self, query: "n.Select | n.SetOp",
                   outer: RowContext | None) -> tuple[list[tuple],
                                                      list[str]]:
        """Run a SELECT or a set-operation tree."""
        if isinstance(query, n.Select):
            return self._run_select(query, outer)
        if not isinstance(query, n.SetOp):
            raise CdwError(
                f"cannot run {type(query).__name__} as a query")
        left_rows, left_columns = self._run_query(query.left, outer)
        right_rows, right_columns = self._run_query(query.right, outer)
        if len(left_columns) != len(right_columns):
            raise CdwError(
                f"{query.op} operands have {len(left_columns)} vs "
                f"{len(right_columns)} columns")

        def keys(rows):
            return [tuple(_sort_key(v) for v in row) for row in rows]

        if query.op == "UNION":
            if query.all:
                return left_rows + right_rows, left_columns
            seen = set()
            out = []
            for row, key in zip(left_rows + right_rows,
                                keys(left_rows + right_rows)):
                if key not in seen:
                    seen.add(key)
                    out.append(row)
            return out, left_columns
        if query.op == "EXCEPT":
            right_keys = set(keys(right_rows))
            seen = set()
            out = []
            for row, key in zip(left_rows, keys(left_rows)):
                if key not in right_keys and key not in seen:
                    seen.add(key)
                    out.append(row)
            return out, left_columns
        # INTERSECT
        right_keys = set(keys(right_rows))
        seen = set()
        out = []
        for row, key in zip(left_rows, keys(left_rows)):
            if key in right_keys and key not in seen:
                seen.add(key)
                out.append(row)
        return out, left_columns

    def _subquery_runner(self, select: "n.Select | n.SetOp",
                         ctx: RowContext) -> list[tuple]:
        rows, _ = self._run_query(select, outer=ctx)
        return rows

    # FROM resolution -------------------------------------------------------

    def _source_contexts(self, source: "n.TableRef | n.Join | None",
                         outer: RowContext | None) -> list[RowContext]:
        """Materialize the FROM clause into row contexts."""
        if source is None:
            return [RowContext(parent=outer)]
        bindings = self._bind_rows(source)
        contexts = []
        for combo in bindings:
            ctx = RowContext(parent=outer)
            for binding, columns, row in combo:
                ctx.bind(binding, columns, row)
            contexts.append(ctx)
        return contexts

    def _table_rows(self, ref: "n.TableRef | n.DerivedTable"
                    ) -> tuple[str, list[str], list[tuple]]:
        if isinstance(ref, n.DerivedTable):
            rows, columns = self._run_query(ref.query, outer=None)
            return (ref.binding, columns, rows)
        table = self.catalog.get(ref.name)
        return (ref.binding, table.column_names, table.materialized_rows())

    def _bind_rows(self, source: "n.TableRef | n.DerivedTable | n.Join"
                   ) -> list[list[tuple[str, list[str], tuple]]]:
        if isinstance(source, (n.TableRef, n.DerivedTable)):
            binding, columns, rows = self._table_rows(source)
            return [[(binding, columns, row)] for row in rows]
        if not isinstance(source, n.Join):
            raise CdwError(f"unsupported FROM node {type(source).__name__}")
        left_combos = self._bind_rows(source.left)
        right_binding, right_columns, right_rows = \
            self._table_rows(source.right)
        joined: list[list[tuple[str, list[str], tuple]]] = []
        null_row = tuple([None] * len(right_columns))
        for left in left_combos:
            matched = False
            for right_row in right_rows:
                combo = left + [(right_binding, right_columns, right_row)]
                if source.kind == "CROSS":
                    joined.append(combo)
                    continue
                ctx = RowContext()
                for binding, columns, row in combo:
                    ctx.bind(binding, columns, row)
                if is_true(evaluate(source.on, ctx, self._subquery_runner)):
                    joined.append(combo)
                    matched = True
            if source.kind == "LEFT" and not matched:
                joined.append(
                    left + [(right_binding, right_columns, null_row)])
            if source.kind in ("RIGHT", "FULL"):
                raise CdwError(
                    f"{source.kind} JOIN is not supported by this engine")
        return joined

    # projection ------------------------------------------------------------

    def _expand_items(self, stmt: n.Select,
                      contexts: list[RowContext]) -> list[n.SelectItem]:
        """Expand ``*`` into explicit column references."""
        items: list[n.SelectItem] = []
        for item in stmt.items:
            if isinstance(item.expr, n.Star):
                if stmt.from_ is None:
                    raise CdwError("SELECT * needs a FROM clause")
                for binding, columns in self._from_shape(stmt.from_):
                    for column in columns:
                        items.append(n.SelectItem(
                            n.ColumnRef(column, table=binding), column))
            else:
                items.append(item)
        return items

    def _from_shape(self, source: "n.TableRef | n.DerivedTable | n.Join"
                    ) -> list[tuple[str, list[str]]]:
        if isinstance(source, n.TableRef):
            table = self.catalog.get(source.name)
            return [(source.binding, table.column_names)]
        if isinstance(source, n.DerivedTable):
            # Column names require running the subquery; only the
            # SELECT-* expansion path pays this.
            _, columns = self._run_query(source.query, outer=None)
            return [(source.binding, columns)]
        return self._from_shape(source.left) + self._from_shape(source.right)

    @staticmethod
    def _item_name(item: n.SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, n.ColumnRef):
            return item.expr.name
        return f"col{index + 1}"

    def _contains_aggregate(self, expr: n.Expr) -> bool:
        return any(
            isinstance(node, n.FuncCall) and node.name in _AGGREGATES
            for node in n.walk(expr))

    @staticmethod
    def _where_conjuncts(where: n.Expr) -> list[n.Expr]:
        """Flatten top-level AND structure into its conjuncts."""
        conjuncts: list[n.Expr] = []
        stack = [where]
        while stack:
            node = stack.pop()
            if isinstance(node, n.BinaryOp) and node.op == "AND":
                stack.extend([node.left, node.right])
            else:
                conjuncts.append(node)
        return conjuncts

    @staticmethod
    def _zone_map_conjunct(conjuncts: list[n.Expr], table: CdwTable,
                           binding: str) -> "int | None":
        """Index of a ``sorted_by BETWEEN literal AND literal`` conjunct
        usable to slice ``table``'s zone map, or None."""
        if table.sorted_by is None:
            return None
        for i, conjunct in enumerate(conjuncts):
            if (isinstance(conjunct, n.Between) and not conjunct.negated
                    and isinstance(conjunct.operand, n.ColumnRef)
                    and conjunct.operand.name.upper()
                    == table.sorted_by.upper()
                    and (conjunct.operand.table is None
                         or conjunct.operand.table.upper()
                         == binding.upper())
                    and isinstance(conjunct.low, n.Literal)
                    and isinstance(conjunct.high, n.Literal)):
                return i
        return None

    def _note_pruned(self, table: CdwTable, lo: int, hi: int) -> None:
        skipped = len(table.rows) - max(hi - lo, 0)
        if skipped > 0 and self.on_scan_pruned is not None:
            self.on_scan_pruned(skipped)

    def _try_sorted_slice(self, stmt: n.Select, outer: RowContext | None
                          ) -> "tuple[list[RowContext], n.Expr | None] | None":
        """BETWEEN-range pushdown over a table sorted by one column.

        When the FROM clause is a single table whose ``sorted_by`` column
        appears in a top-level ``BETWEEN literal AND literal`` conjunct,
        binary-search the row range instead of scanning.  This is what
        keeps Hyper-Q's recursive chunk splitting (Section 7) cheap: each
        sub-chunk attempt touches only its own row range.
        """
        if not self.zone_map_pruning:
            return None
        if not isinstance(stmt.from_, n.TableRef) or stmt.where is None:
            return None
        table = self.catalog.get(stmt.from_.name)
        binding = stmt.from_.binding
        conjuncts = self._where_conjuncts(stmt.where)
        chosen = self._zone_map_conjunct(conjuncts, table, binding)
        if chosen is None:
            return None
        between = conjuncts[chosen]
        lo, hi = table.seq_slice(between.low.value, between.high.value)
        self._note_pruned(table, lo, hi)
        binding_upper = binding.upper()
        layout = prepare_layout(table.column_names)
        contexts = []
        for row in table.rows[lo:hi]:
            ctx = RowContext(parent=outer)
            ctx.bind_prepared(binding_upper, layout, row)
            contexts.append(ctx)
        residual: n.Expr | None = None
        for i, conjunct in enumerate(conjuncts):
            if i == chosen:
                continue
            residual = conjunct if residual is None \
                else n.BinaryOp("AND", residual, conjunct)
        return contexts, residual

    def _pruned_source_contexts(self, source: "n.TableRef | n.Join | None",
                                where: "n.Expr | None"
                                ) -> list[RowContext]:
        """Source contexts for UPDATE/DELETE, zone-map sliced if possible.

        When the FROM/USING clause is a single zone-mapped table and the
        statement WHERE carries a top-level BETWEEN conjunct on its sort
        column, bind only the sliced rows.  The full WHERE is still
        evaluated per (target row × source row) pair afterwards — the
        BETWEEN re-check over the slice is redundant but cheap, and
        keeping it avoids rewriting the predicate.  This is the fix for
        the Fig 11 cascade: each re-executed ``__SEQ`` range now binds
        O(rows in range) source contexts instead of O(staging_rows).
        """
        if (self.zone_map_pruning and isinstance(source, n.TableRef)
                and where is not None):
            table = self.catalog.get(source.name)
            conjuncts = self._where_conjuncts(where)
            chosen = self._zone_map_conjunct(
                conjuncts, table, source.binding)
            if chosen is not None:
                between = conjuncts[chosen]
                lo, hi = table.seq_slice(
                    between.low.value, between.high.value)
                self._note_pruned(table, lo, hi)
                binding_upper = source.binding.upper()
                layout = prepare_layout(table.column_names)
                contexts = []
                for row in table.rows[lo:hi]:
                    ctx = RowContext(parent=None)
                    ctx.bind_prepared(binding_upper, layout, row)
                    contexts.append(ctx)
                return contexts
        return self._source_contexts(source, None)

    def _run_select(self, stmt: n.Select,
                    outer: RowContext | None) -> tuple[list[tuple],
                                                       list[str]]:
        vectorized = self._try_vector_select(stmt)
        if vectorized is not None:
            return vectorized
        sliced = self._try_sorted_slice(stmt, outer)
        if sliced is not None:
            contexts, where = sliced
        else:
            contexts = self._source_contexts(stmt.from_, outer)
            where = stmt.where
        # One evaluator, rebound per row: on wide scans the per-row
        # _Evaluator construction is pure overhead (it carries no
        # per-row state beyond the context).
        ev = _Evaluator(None, self._subquery_runner)
        if where is not None:
            where_fn = compile_expr(where)
            kept = []
            for ctx in contexts:
                ev.ctx = ctx
                if where_fn(ev) is True:
                    kept.append(ctx)
            contexts = kept
        items = self._expand_items(stmt, contexts)
        columns = [self._item_name(item, i) for i, item in enumerate(items)]

        grouped = bool(stmt.group_by) or any(
            self._contains_aggregate(item.expr) for item in items)
        if grouped:
            rows = self._run_grouped(stmt, items, contexts)
        else:
            rows = self._project(items, contexts, ev)
            rows = self._order_rows(stmt, rows, contexts, items)

        return self._finish_select(stmt, rows), columns

    @staticmethod
    def _finish_select(stmt: n.Select, rows: list[tuple]) -> list[tuple]:
        """Shared DISTINCT + LIMIT tail of the row and vector paths."""
        if stmt.distinct:
            seen = set()
            unique_rows = []
            for row in rows:
                key = tuple(_sort_key(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    unique_rows.append(row)
            rows = unique_rows
        if stmt.limit is not None:
            rows = rows[:stmt.limit]
        return rows

    # -- vectorized execution ------------------------------------------------
    #
    # Columnar tables execute single-table SELECT / INSERT..SELECT /
    # plain DELETE over whole column slices: predicates compile once per
    # (layout, binding) into vector closures (repro.cdw.expressions),
    # the WHERE produces a selection, and projection / aggregation read
    # only the touched columns.  Every helper returns None the moment
    # anything falls outside the vector compiler's scope — or when eager
    # evaluation raises — and the caller runs the per-row interpreter
    # instead, which either succeeds (it short-circuits rows the eager
    # path touched) or raises its canonical first error.  Statements
    # have no effects before commit, so the re-execution is safe and the
    # two paths are observationally identical.

    def _vector_scan(self, stmt: n.Select):
        """FROM-one-columnar-table scan for the vector paths.

        Zone-map-slices the batch exactly like :meth:`_try_sorted_slice`
        (same pruning telemetry), applies the residual WHERE as a
        vectorized mask, and returns ``(batch, layout, binding_upper)``
        for the surviving rows — or None when out of scope.
        """
        if not self.columnar or not isinstance(stmt.from_, n.TableRef):
            return None
        table = self.catalog.get(stmt.from_.name)
        if not table.columnar:
            return None
        binding = stmt.from_.binding
        binding_upper = binding.upper()
        layout = prepare_layout(table.column_names)
        lo, hi = 0, table.row_count
        residual = stmt.where
        if self.zone_map_pruning and stmt.where is not None \
                and table.sorted_by is not None:
            conjuncts = self._where_conjuncts(stmt.where)
            chosen = self._zone_map_conjunct(conjuncts, table, binding)
            if chosen is not None:
                between = conjuncts[chosen]
                lo, hi = table.seq_slice(between.low.value,
                                         between.high.value)
                self._note_pruned(table, lo, hi)
                residual = None
                for i, conjunct in enumerate(conjuncts):
                    if i == chosen:
                        continue
                    residual = conjunct if residual is None \
                        else n.BinaryOp("AND", residual, conjunct)
        batch = ColumnBatch(table, lo, max(hi, lo))
        if residual is None:
            return batch, layout, binding_upper
        mask_fn = compile_vector(residual, layout, binding_upper)
        if mask_fn is None:
            return None
        mask = vec_values(mask_fn(batch), batch.length)
        sel = [i for i, v in enumerate(mask) if v is True]
        return GatherBatch(batch, sel), layout, binding_upper

    def _try_vector_select(self, stmt: n.Select
                           ) -> "tuple[list[tuple], list[str]] | None":
        """Columnar SELECT: WHERE, projection, and aggregation over
        column batches instead of per-row contexts.  Returns the usual
        ``(rows, columns)`` pair, or None to run the row path."""
        if not isinstance(stmt.from_, n.TableRef):
            return None
        try:
            scan = self._vector_scan(stmt)
            if scan is None:
                return None
            data, layout, binding_upper = scan
            items = self._expand_items(stmt, [])
            columns = [self._item_name(item, i)
                       for i, item in enumerate(items)]
            grouped = bool(stmt.group_by) or any(
                self._contains_aggregate(item.expr) for item in items)
            if grouped:
                rows = self._vector_grouped(stmt, items, data, layout,
                                            binding_upper)
            else:
                rows = self._vector_project(stmt, items, data, layout,
                                            binding_upper)
            if rows is None:
                return None
        except (ExpressionError, SqlTranslationError):
            return None
        return self._finish_select(stmt, rows), columns

    def _vector_project(self, stmt: n.Select, items: list[n.SelectItem],
                        data, layout, binding_upper
                        ) -> "list[tuple] | None":
        """Evaluate the select list columnwise and zip into rows."""
        fns = []
        for item in items:
            fn = compile_vector(item.expr, layout, binding_upper)
            if fn is None:
                return None
            fns.append(fn)
        nrows = data.length
        out_cols = [vec_values(fn(data), nrows) for fn in fns]
        rows = list(zip(*out_cols)) if out_cols else []
        return self._vector_order(stmt, rows, items, data, layout,
                                  binding_upper)

    def _vector_order(self, stmt: n.Select, rows: list[tuple],
                      items: list[n.SelectItem], data, layout,
                      binding_upper) -> "list[tuple] | None":
        """ORDER BY over vector-projected rows (mirrors _order_rows:
        positions and aliases address the output row, anything else is
        an expression over the source row)."""
        if not stmt.order_by:
            return rows
        aliases: dict[str, int] = {}
        for i, item in enumerate(items):
            aliases.setdefault(self._item_name(item, i).upper(), i)
        for i, item in enumerate(items):
            if item.alias:
                aliases[item.alias.upper()] = i
        key_cols = []
        for expr, ascending in stmt.order_by:
            if isinstance(expr, n.Literal) and isinstance(expr.value, int):
                vals = [row[expr.value - 1] for row in rows]
            elif isinstance(expr, n.ColumnRef) and expr.table is None \
                    and expr.name.upper() in aliases:
                idx = aliases[expr.name.upper()]
                vals = [row[idx] for row in rows]
            else:
                fn = compile_vector(expr, layout, binding_upper)
                if fn is None:
                    return None
                vals = vec_values(fn(data), data.length)
            key_cols.append((vals, ascending))

        def order_key(i: int):
            key = []
            for vals, ascending in key_cols:
                rank = _sort_key(vals[i])
                key.append(rank if ascending
                           else (-rank[0], _negate(rank[1])))
            return tuple(key)

        order = sorted(range(len(rows)), key=order_key)
        return [rows[i] for i in order]

    def _vector_grouped(self, stmt: n.Select, items: list[n.SelectItem],
                        data, layout, binding_upper
                        ) -> "list[tuple] | None":
        """GROUP BY / aggregation over a batch (mirrors _run_grouped).

        Supports direct aggregate calls and plain per-group expressions;
        HAVING and aggregates nested inside larger expressions go to the
        row path.
        """
        if stmt.having is not None:
            return None
        plans: list[tuple[str, object]] = []
        for item in items:
            expr = item.expr
            if type(expr) is n.FuncCall and expr.name in _AGGREGATES:
                plans.append(("agg", expr))
            elif self._contains_aggregate(expr):
                return None
            else:
                fn = compile_vector(expr, layout, binding_upper)
                if fn is None:
                    return None
                plans.append(("expr", fn))
        nrows = data.length
        if stmt.group_by:
            key_fns = []
            for group_expr in stmt.group_by:
                fn = compile_vector(group_expr, layout, binding_upper)
                if fn is None:
                    return None
                key_fns.append(fn)
            key_cols = [vec_values(fn(data), nrows) for fn in key_fns]
            groups: dict[tuple, list[int]] = {}
            for i in range(nrows):
                key = tuple(_sort_key(col[i]) for col in key_cols)
                groups.setdefault(key, []).append(i)
            group_list = [groups[k] for k in sorted(groups)]
        else:
            group_list = [list(range(nrows))]
        evaluated: list = []
        for kind, payload in plans:
            if kind == "expr":
                evaluated.append(vec_values(payload(data), nrows))
                continue
            call = payload
            if call.name == "COUNT" and call.args \
                    and isinstance(call.args[0], n.Star):
                evaluated.append(None)      # COUNT(*): group size only
                continue
            if not call.args or any(isinstance(a, n.Star)
                                    for a in call.args):
                return None                 # row path raises for these
            fn = compile_vector(call.args[0], layout, binding_upper)
            if fn is None:
                return None
            evaluated.append(vec_values(fn(data), nrows))
        out_rows: list[tuple] = []
        for group in group_list:
            row = []
            for (kind, payload), values_ in zip(plans, evaluated):
                if kind == "expr":
                    if not group:
                        return None   # representative-row semantics
                    row.append(values_[group[0]])
                else:
                    row.append(self._vector_aggregate(
                        payload, values_, group))
            out_rows.append(tuple(row))
        if stmt.order_by:
            out_rows = self._order_rows(stmt, out_rows, [], items)
        return out_rows

    def _vector_aggregate(self, call: n.FuncCall,
                          arg_values: "list | None",
                          group: list[int]):
        """One aggregate over a group's positions (mirrors _aggregate)."""
        if arg_values is None:              # COUNT(*)
            return len(group)
        name = call.name
        non_null = [v for v in (arg_values[i] for i in group)
                    if v is not None]
        if call.distinct:
            deduped = []
            seen = set()
            for v in non_null:
                key = _sort_key(v)
                if key not in seen:
                    seen.add(key)
                    deduped.append(v)
            non_null = deduped
        if name == "COUNT":
            return len(non_null)
        if not non_null:
            return None
        if name == "SUM":
            return _sum(non_null)
        if name == "AVG":
            total = _sum(non_null)
            return float(total) / len(non_null)
        if name == "MIN":
            return min(non_null, key=_sort_key)
        if name == "MAX":
            return max(non_null, key=_sort_key)
        raise CdwError(f"unknown aggregate {name}")

    def _project(self, items: list[n.SelectItem],
                 contexts: list[RowContext],
                 ev: _Evaluator) -> list[tuple]:
        """Evaluate the select list against each row context.

        When every item is an unqualified column over a single-table
        context — the shape of every bulk INSERT..SELECT and dq pass —
        resolve the column indexes once and slice rows directly instead
        of walking the expression tree per row.  Anything irregular
        (extra bindings, qualified or computed items, a name the layout
        lacks) falls back to the evaluator row by row.
        """
        exprs = [item.expr for item in items]
        fast_cols = [e.name.upper() for e in exprs] \
            if exprs and all(type(e) is n.ColumnRef and e.table is None
                             for e in exprs) else None
        rows: list[tuple] = []
        idxs: "list[int] | None" = None
        prev_layout: "dict[str, int] | None" = None
        for ctx in contexts:
            if fast_cols is not None and len(ctx._bindings) == 1:
                layout, row = next(iter(ctx._bindings.values()))
                if layout is not prev_layout:
                    prev_layout = layout
                    try:
                        idxs = [layout[c] for c in fast_cols]
                    except KeyError:
                        idxs = None
                if idxs is not None:
                    rows.append(tuple(row[i] for i in idxs))
                    continue
            ev.ctx = ctx
            rows.append(tuple(ev.eval(e) for e in exprs))
        return rows

    def _order_rows(self, stmt: n.Select, rows: list[tuple],
                    contexts: list[RowContext],
                    items: list[n.SelectItem]) -> list[tuple]:
        if not stmt.order_by:
            return rows
        # Output columns are addressable by alias or by projected name
        # (e.g. ``GROUP BY REGION ... ORDER BY REGION``).
        aliases: dict[str, int] = {}
        for i, item in enumerate(items):
            aliases.setdefault(self._item_name(item, i).upper(), i)
        for i, item in enumerate(items):
            if item.alias:
                aliases[item.alias.upper()] = i

        def order_values(pair):
            row, ctx = pair
            key = []
            for expr, ascending in stmt.order_by:
                if isinstance(expr, n.Literal) and isinstance(expr.value,
                                                              int):
                    value = row[expr.value - 1]
                elif isinstance(expr, n.ColumnRef) and expr.table is None \
                        and expr.name.upper() in aliases:
                    value = row[aliases[expr.name.upper()]]
                elif ctx is not None:
                    value = evaluate(expr, ctx, self._subquery_runner)
                else:
                    raise CdwError(
                        "ORDER BY over aggregates must use output "
                        "positions or aliases")
                rank = _sort_key(value)
                key.append(rank if ascending
                           else (-rank[0], _negate(rank[1])))
            return tuple(key)

        paired = list(zip(rows, contexts)) if contexts and \
            len(contexts) == len(rows) else [(row, None) for row in rows]
        paired.sort(key=order_values)
        return [row for row, _ in paired]

    # grouping ----------------------------------------------------------------

    def _run_grouped(self, stmt: n.Select, items: list[n.SelectItem],
                     contexts: list[RowContext]) -> list[tuple]:
        groups: dict[tuple, list[RowContext]] = {}
        if stmt.group_by:
            key_fns = [compile_expr(g) for g in stmt.group_by]
            ev = _Evaluator(None, self._subquery_runner)
            for ctx in contexts:
                ev.ctx = ctx
                key = tuple(_sort_key(fn(ev)) for fn in key_fns)
                groups.setdefault(key, []).append(ctx)
        else:
            groups[()] = contexts

        rows: list[tuple] = []
        for key in sorted(groups):
            group = groups[key]
            if stmt.having is not None:
                having_value = self._eval_with_aggregates(
                    stmt.having, group)
                if not is_true(having_value):
                    continue
            rows.append(tuple(
                self._eval_with_aggregates(item.expr, group)
                for item in items))
        if stmt.order_by:
            rows = self._order_rows(stmt, rows, [], items)
        return rows

    def _eval_with_aggregates(self, expr: n.Expr,
                              group: list[RowContext]):
        """Evaluate an expression over a group: aggregate sub-calls are
        computed over all group rows, the remainder over a representative
        row."""

        def rule(node: n.Node) -> n.Node:
            if isinstance(node, n.FuncCall) and node.name in _AGGREGATES:
                return n.Literal(self._aggregate(node, group))
            return node

        # transform() is bottom-up; nested aggregates are not supported by
        # SQL anyway, and the inner-most call wins here.
        folded = n.transform(expr, rule)
        representative = group[0] if group else RowContext()
        return evaluate(folded, representative, self._subquery_runner)

    def _aggregate(self, call: n.FuncCall, group: list[RowContext]):
        name = call.name
        if name == "COUNT" and call.args \
                and isinstance(call.args[0], n.Star):
            return len(group)
        if not call.args:
            raise CdwError(f"{name} needs an argument")
        arg_fn = compile_expr(call.args[0])
        ev = _Evaluator(None, self._subquery_runner)
        raw = []
        for ctx in group:
            ev.ctx = ctx
            raw.append(arg_fn(ev))
        non_null = [v for v in raw if v is not None]
        if call.distinct:
            deduped = []
            seen = set()
            for v in non_null:
                key = _sort_key(v)
                if key not in seen:
                    seen.add(key)
                    deduped.append(v)
            non_null = deduped
        if name == "COUNT":
            return len(non_null)
        if not non_null:
            return None
        if name == "SUM":
            return _sum(non_null)
        if name == "AVG":
            total = _sum(non_null)
            return float(total) / len(non_null)
        if name == "MIN":
            return min(non_null, key=_sort_key)
        if name == "MAX":
            return max(non_null, key=_sort_key)
        raise CdwError(f"unknown aggregate {name}")

    # -- DML --------------------------------------------------------------------------

    def _wrap_row_error(self, exc: ExpressionError,
                        what: str) -> BulkExecutionError:
        return BulkExecutionError(
            f"{what} aborted: {exc}", kind="conversion", field=exc.field)

    def _insert_rows_from_source(self, stmt: n.Insert) -> list[tuple]:
        if isinstance(stmt.source, n.Values):
            ctx = RowContext()
            rows = []
            for row_exprs in stmt.source.rows:
                rows.append(tuple(
                    evaluate(e, ctx, self._subquery_runner)
                    for e in row_exprs))
            return rows
        if isinstance(stmt.source, (n.Select, n.SetOp)):
            rows, _ = self._run_query(stmt.source, outer=None)
            return rows
        raise CdwError("INSERT without a source")

    def _shape_insert_row(self, table: CdwTable, columns: list[str],
                          row: tuple) -> tuple:
        if not columns:
            return row
        if len(columns) != len(row):
            raise BulkExecutionError(
                f"INSERT column list has {len(columns)} names but the "
                f"source row has {len(row)} values")
        full: list = [None] * table.arity
        for name, value in zip(columns, row):
            full[table.column_index(name)] = value
        return tuple(full)

    def _try_vector_insert(self, stmt: n.Insert, table: CdwTable
                           ) -> "CdwResult | None":
        """Columnwise INSERT..SELECT: source columns are computed by the
        vector path, coerced in bulk, and appended to the target's
        column store without ever forming row tuples.  Returns None to
        run the row path — including on any error, whose canonical
        version the row path then raises."""
        src = stmt.source
        if (not self.columnar or not table.columnar
                or not isinstance(src, n.Select)
                or src.group_by or src.order_by or src.distinct
                or src.limit is not None or src.having is not None):
            return None
        try:
            if any(self._contains_aggregate(item.expr)
                   for item in src.items):
                return None
            scan = self._vector_scan(src)
            if scan is None:
                return None
            data, layout, binding_upper = scan
            items = self._expand_items(src, [])
            source_cols = []
            for item in items:
                fn = compile_vector(item.expr, layout, binding_upper)
                if fn is None:
                    return None
                source_cols.append(vec_values(fn(data), data.length))
            nrows = data.length
            if stmt.columns:
                if len(stmt.columns) != len(source_cols):
                    return None       # row path raises the arity error
                full = [[None] * nrows for _ in range(table.arity)]
                for name, col in zip(stmt.columns, source_cols):
                    full[table.column_index(name)] = col
            else:
                if len(source_cols) != table.arity:
                    return None       # row path raises the arity error
                full = source_cols
            coerced = []
            for spec, col in zip(table.columns, full):
                if not spec.nullable and any(v is None for v in col):
                    return None       # row path raises NOT NULL error
                coerced.append(spec.ctype.coerce_many(col,
                                                      field=spec.name))
        except (ExpressionError, SqlTranslationError, BulkExecutionError):
            return None
        if self.native_unique and table.unique_keys:
            table.check_unique_append_columns(coerced)
        table.append_columns(coerced)
        return CdwResult(kind="count", rows_inserted=nrows)

    def _exec_Insert(self, stmt: n.Insert) -> CdwResult:
        table = self.catalog.get(stmt.table.name)
        vectorized = self._try_vector_insert(stmt, table)
        if vectorized is not None:
            return vectorized
        try:
            source_rows = self._insert_rows_from_source(stmt)
            new_rows = [
                table.coerce_row(
                    self._shape_insert_row(table, stmt.columns, row))
                for row in source_rows
            ]
        except ExpressionError as exc:
            raise self._wrap_row_error(
                exc, f"INSERT INTO {table.name}") from exc
        if self.native_unique and table.unique_keys:
            table.check_unique_append(new_rows)
        table.append_rows(new_rows)
        return CdwResult(kind="count", rows_inserted=len(new_rows))

    def _exec_Update(self, stmt: n.Update) -> CdwResult:
        table = self.catalog.get(stmt.table.name)
        binding = stmt.table.binding
        source_contexts = (
            self._pruned_source_contexts(stmt.from_, stmt.where)
            if stmt.from_ is not None else [None])
        working = list(table.rows)
        updated: dict[int, tuple] = {}
        try:
            for index, row in enumerate(working):
                # Source rows apply in order; with several matches the
                # later row's assignment wins — the tuple-at-a-time
                # semantics of the legacy system this engine must let
                # Hyper-Q preserve.
                for source_ctx in source_contexts:
                    current = updated.get(index, row)
                    ctx = RowContext(parent=source_ctx)
                    ctx.bind(binding, table.column_names, current)
                    if stmt.where is not None and not is_true(
                            evaluate(stmt.where, ctx,
                                     self._subquery_runner)):
                        continue
                    new_row = list(current)
                    for assignment in stmt.assignments:
                        col = table.column_index(assignment.column)
                        new_row[col] = evaluate(
                            assignment.value, ctx, self._subquery_runner)
                    updated[index] = table.coerce_row(tuple(new_row))
        except ExpressionError as exc:
            raise self._wrap_row_error(
                exc, f"UPDATE {table.name}") from exc
        for index, row in updated.items():
            working[index] = row
        if self.native_unique and table.unique_keys:
            table.check_unique(working)
        table.rows = working
        if updated and table.sorted_by is not None and any(
                a.column.upper() == table.sorted_by.upper()
                for a in stmt.assignments):
            table.sorted_by = None     # order no longer guaranteed
        return CdwResult(kind="count", rows_updated=len(updated))

    def _exec_Delete(self, stmt: n.Delete) -> CdwResult:
        table = self.catalog.get(stmt.table.name)
        binding = stmt.table.binding
        source_contexts = (
            self._pruned_source_contexts(stmt.using, stmt.where)
            if stmt.using is not None else [None])
        # Plain DELETEs (no USING) zone-map-slice the *target* scan:
        # rows outside a top-level ``sorted_by BETWEEN`` conjunct cannot
        # match, so only the slice is evaluated and everything around it
        # is kept untouched (order preserved — the zone map stays armed).
        # This is what keeps the dq precheck's violation-routing DELETE
        # sub-linear in staging size.
        rows = table.rows
        lo, hi = 0, len(rows)
        if (self.zone_map_pruning and stmt.using is None
                and stmt.where is not None):
            conjuncts = self._where_conjuncts(stmt.where)
            chosen = self._zone_map_conjunct(conjuncts, table, binding)
            if chosen is not None:
                between = conjuncts[chosen]
                lo, hi = table.seq_slice(
                    between.low.value, between.high.value)
                self._note_pruned(table, lo, hi)
        if (stmt.using is None and stmt.where is not None
                and self.columnar and table.columnar):
            result = self._try_vector_delete(table, binding,
                                             stmt.where, lo, hi)
            if result is not None:
                return result
        keep: list[tuple] = []
        deleted = 0
        ev = _Evaluator(None, self._subquery_runner)
        where_fn = compile_expr(stmt.where) if stmt.where is not None \
            else None
        try:
            for row in rows[lo:hi]:
                doomed = False
                for source_ctx in source_contexts:
                    ctx = RowContext(parent=source_ctx)
                    ctx.bind(binding, table.column_names, row)
                    if where_fn is None:
                        doomed = True
                        break
                    ev.ctx = ctx
                    if where_fn(ev) is True:
                        doomed = True
                        break
                if doomed:
                    deleted += 1
                else:
                    keep.append(row)
        except ExpressionError as exc:
            raise self._wrap_row_error(
                exc, f"DELETE FROM {table.name}") from exc
        table.rows = rows[:lo] + keep + rows[hi:]
        return CdwResult(kind="count", rows_deleted=deleted)

    def _try_vector_delete(self, table: CdwTable, binding: str,
                           where: n.Expr, lo: int, hi: int
                           ) -> "CdwResult | None":
        """Vectorized plain DELETE: mask the (possibly zone-map-sliced)
        candidate range, drop matching rows via a columnwise take.

        Order of survivors is preserved, so ``sorted_by`` stays armed —
        exactly like the row path.  Returns None to run the row path.
        """
        layout = prepare_layout(table.column_names)
        fn = compile_vector(where, layout, binding.upper())
        if fn is None:
            return None
        batch = ColumnBatch(table, lo, hi)
        try:
            mask = vec_values(fn(batch), batch.length)
        except (ExpressionError, SqlTranslationError):
            return None
        keep = list(range(lo))
        keep.extend(lo + i for i, v in enumerate(mask) if v is not True)
        deleted = batch.length - (len(keep) - lo)
        if deleted:
            keep.extend(range(hi, table.row_count))
            table.take_rows(keep)
        return CdwResult(kind="count", rows_deleted=deleted)

    def _exec_Upsert(self, stmt: n.Upsert) -> CdwResult:
        """Legacy atomic upsert: UPDATE, and if nothing matched, INSERT.

        Only reaches the engine from the reference legacy server (per
        bound record); Hyper-Q rewrites upserts to MERGE instead.
        """
        update_result = self._exec_Update(stmt.update)
        if update_result.rows_updated > 0:
            return update_result
        return self._exec_Insert(stmt.insert)

    # MERGE ----------------------------------------------------------------------

    def _merge_source(self, stmt: n.Merge
                      ) -> tuple[str, list[str], list[tuple]]:
        if isinstance(stmt.source, n.TableRef):
            source_table = self.catalog.get(stmt.source.name)
            binding = stmt.source_alias or stmt.source.binding
            return binding, source_table.column_names, list(
                source_table.rows)
        rows, columns = self._run_query(stmt.source, outer=None)
        binding = stmt.source_alias or "src"
        return binding, columns, rows

    @staticmethod
    def _equi_keys(on: n.Expr, target_binding: str, target_table: CdwTable,
                   source_binding: str, source_columns: list[str]
                   ) -> "list[tuple[int, int]] | None":
        """Extract ``target.col = source.col`` pairs from a conjunction.

        Returns (target column index, source column index) pairs, or None
        when the ON clause is not a pure equi-join — the caller then falls
        back to a nested loop.
        """
        pairs: list[tuple[int, int]] = []
        stack = [on]
        source_upper = [c.upper() for c in source_columns]
        while stack:
            node = stack.pop()
            if isinstance(node, n.BinaryOp) and node.op == "AND":
                stack.extend([node.left, node.right])
                continue
            if not (isinstance(node, n.BinaryOp) and node.op == "="
                    and isinstance(node.left, n.ColumnRef)
                    and isinstance(node.right, n.ColumnRef)):
                return None
            left, right = node.left, node.right
            sides = {}
            for ref in (left, right):
                if ref.table and ref.table.upper() == target_binding.upper():
                    sides["target"] = ref
                elif ref.table and ref.table.upper() == \
                        source_binding.upper():
                    sides["source"] = ref
                else:
                    return None
            if "target" not in sides or "source" not in sides:
                return None
            try:
                t_index = target_table.column_index(sides["target"].name)
            except CatalogError:
                return None
            s_name = sides["source"].name.upper()
            if s_name not in source_upper:
                return None
            pairs.append((t_index, source_upper.index(s_name)))
        return pairs or None

    def _exec_Merge(self, stmt: n.Merge) -> CdwResult:
        table = self.catalog.get(stmt.target.name)
        target_binding = stmt.target.binding
        source_binding, source_columns, source_rows = \
            self._merge_source(stmt)
        if stmt.on is None:
            raise CdwError("MERGE needs an ON clause")

        working = list(table.rows)
        inserted = updated = deleted = 0
        equi = self._equi_keys(stmt.on, target_binding, table,
                               source_binding, source_columns)
        index: dict[tuple, int] | None = None
        if equi is not None:
            index = {}
            for position, row in enumerate(working):
                key = tuple(_sort_key(row[t]) for t, _ in equi)
                index.setdefault(key, position)

        def find_match(source_row: tuple) -> int | None:
            if equi is not None and index is not None:
                key = tuple(_sort_key(source_row[s]) for _, s in equi)
                position = index.get(key)
                if position is not None and working[position] is not None:
                    return position
                return None
            for position, target_row in enumerate(working):
                if target_row is None:
                    continue
                ctx = RowContext()
                ctx.bind(target_binding, table.column_names, target_row)
                ctx.bind(source_binding, source_columns, source_row)
                if is_true(evaluate(stmt.on, ctx, self._subquery_runner)):
                    return position
            return None

        try:
            for source_row in source_rows:
                source_ctx = RowContext()
                source_ctx.bind(source_binding, source_columns, source_row)
                position = find_match(source_row)
                if position is not None:
                    matched = stmt.matched
                    if matched is None:
                        continue
                    ctx = RowContext()
                    ctx.bind(target_binding, table.column_names,
                             working[position])
                    ctx.bind(source_binding, source_columns, source_row)
                    if matched.condition is not None and not is_true(
                            evaluate(matched.condition, ctx,
                                     self._subquery_runner)):
                        continue
                    if matched.delete:
                        working[position] = None
                        deleted += 1
                        continue
                    new_row = list(working[position])
                    for assignment in matched.assignments:
                        col = table.column_index(assignment.column)
                        new_row[col] = evaluate(
                            assignment.value, ctx, self._subquery_runner)
                    working[position] = table.coerce_row(tuple(new_row))
                    if equi is not None and index is not None:
                        key = tuple(_sort_key(working[position][t])
                                    for t, _ in equi)
                        index.setdefault(key, position)
                    updated += 1
                    continue
                not_matched = stmt.not_matched
                if not_matched is None:
                    continue
                if not_matched.condition is not None and not is_true(
                        evaluate(not_matched.condition, source_ctx,
                                 self._subquery_runner)):
                    continue
                raw = tuple(
                    evaluate(value, source_ctx, self._subquery_runner)
                    for value in not_matched.values)
                shaped = self._shape_insert_row(
                    table, not_matched.columns, raw)
                new_row = table.coerce_row(shaped)
                working.append(new_row)
                if equi is not None and index is not None:
                    key = tuple(_sort_key(new_row[t]) for t, _ in equi)
                    index.setdefault(key, len(working) - 1)
                inserted += 1
        except ExpressionError as exc:
            raise self._wrap_row_error(
                exc, f"MERGE INTO {table.name}") from exc

        final = [row for row in working if row is not None]
        if self.native_unique and table.unique_keys:
            table.check_unique(final)
        table.rows = final
        if (inserted or updated) and table.sorted_by is not None:
            table.sorted_by = None     # appends/updates may break order
        return CdwResult(kind="count", rows_inserted=inserted,
                         rows_updated=updated, rows_deleted=deleted)


def _infer_cdw_type(column_values: list) -> "CdwType":
    """Narrowest CDW type carrying every value (CREATE TABLE AS)."""
    from repro.cdw.types import CdwType
    kinds = {type(v) for v in column_values if v is not None}
    if not kinds:
        return CdwType("NVARCHAR")
    if kinds <= {bool}:
        return CdwType("BOOLEAN")
    if kinds <= {bool, int}:
        return CdwType("BIGINT")
    if kinds <= {bool, int, float}:
        return CdwType("DOUBLE")
    if kinds <= {bool, int, Decimal}:
        return CdwType("DECIMAL")
    if kinds == {values.Timestamp}:
        return CdwType("TIMESTAMP")
    if all(isinstance(v, values.Date)
           and not isinstance(v, values.Timestamp)
           for v in column_values if v is not None):
        return CdwType("DATE")
    return CdwType("NVARCHAR")


def _sum(items: list):
    if any(isinstance(v, Decimal) for v in items):
        return sum((Decimal(str(v)) for v in items), Decimal(0))
    total = 0
    for v in items:
        total += v
    return total


def _negate(value):
    """Invert a sort-key payload for descending order."""
    if isinstance(value, (int, float)):
        return -value
    if isinstance(value, str):
        return tuple(-ord(c) for c in value)
    return value
