"""Catalog and row storage for the CDW engine (and the legacy server).

Tables store rows as plain tuples.  Uniqueness enforcement is *declared*
here but *checked* by the engine at statement commit, so that violation
semantics stay set-oriented.  ``native_unique=False`` on the engine makes
declared keys advisory — modelling CDWs without native uniqueness support,
for which Hyper-Q "enforces uniqueness through emulation" (Section 7).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.cdw.types import CdwType
from repro.errors import BulkExecutionError, CatalogError, ExpressionError

__all__ = ["ColumnSpec", "CdwTable", "Catalog"]


@dataclass(frozen=True)
class ColumnSpec:
    name: str
    ctype: CdwType
    nullable: bool = True


class CdwTable:
    """One table: schema, rows, and declared unique keys."""

    def __init__(self, name: str, columns: list[ColumnSpec],
                 unique_keys: list[tuple[str, ...]] | None = None):
        if not columns:
            raise CatalogError(f"table {name!r} needs at least one column")
        self.name = name
        self.columns = list(columns)
        self._index = {c.name.upper(): i for i, c in enumerate(columns)}
        if len(self._index) != len(columns):
            raise CatalogError(f"table {name!r} has duplicate column names")
        self.unique_keys: list[tuple[int, ...]] = []
        for key in unique_keys or []:
            self.unique_keys.append(
                tuple(self.column_index(col) for col in key))
        #: cached per-key sets of the current rows' unique-key values;
        #: None when stale.  Maintained by :meth:`append_rows`, dropped
        #: by any wholesale ``rows`` reassignment or :meth:`truncate_rows`.
        self._unique_index: list[set] | None = None
        self.rows: list[tuple] = []
        #: name of a column the rows are known to be sorted by (set by
        #: Hyper-Q's Beta after sorting the staging table); lets the
        #: engine slice BETWEEN-range scans with binary search instead of
        #: a full scan.  The setter must guarantee the order holds.
        self.sorted_by: str | None = None

    # -- row storage ---------------------------------------------------------

    @property
    def rows(self) -> list[tuple]:
        """The table's rows (plain tuples, in storage order)."""
        return self._rows

    @rows.setter
    def rows(self, value: list[tuple]) -> None:
        """Replace the row list wholesale; drops the unique-key index
        (UPDATE/DELETE/MERGE/rollback may have freed arbitrary keys)."""
        self._rows = value
        self._unique_index = None

    def truncate_rows(self, length: int) -> None:
        """Drop every row past ``length`` (Beta's emulation rollback).

        Invalidates the unique-key index so the removed rows' keys
        become insertable again.
        """
        del self._rows[length:]
        self._unique_index = None

    # -- schema -------------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def arity(self) -> int:
        return len(self.columns)

    def column_index(self, name: str) -> int:
        """Position of a column by (case-insensitive) name."""
        try:
            return self._index[name.upper()]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}") from None

    def column(self, name: str) -> ColumnSpec:
        """The ColumnSpec for a column name."""
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        """Whether a column of this name exists."""
        return name.upper() in self._index

    # -- zone map -----------------------------------------------------------

    def set_sorted(self, column: str) -> None:
        """Sort the rows by ``column`` and arm the zone map.

        After this, :meth:`seq_slice` answers range queries by binary
        search and :meth:`append_rows` keeps the order as new rows land
        (Hyper-Q's Beta arms the staging table once per apply run; the
        eager-apply path then interleaves COPY INTO appends with
        range-pruned DML scans).
        """
        col = self.column_index(column)
        self.rows.sort(key=lambda r: r[col])
        self.sorted_by = column

    def seq_slice(self, low, high) -> tuple[int, int]:
        """Index range ``[lo, hi)`` of rows with sort-column values in
        ``[low, high]`` — a binary search over the armed zone map.

        Raises :class:`CatalogError` when no sort column is armed.
        """
        if self.sorted_by is None:
            raise CatalogError(
                f"table {self.name!r} has no sorted column")
        col = self.column_index(self.sorted_by)
        lo = bisect.bisect_left(self.rows, low, key=lambda r: r[col])
        hi = bisect.bisect_right(self.rows, high, key=lambda r: r[col])
        return lo, hi

    def append_rows(self, new_rows: list[tuple]) -> None:
        """Append rows, preserving the zone-map order when armed.

        The common eager-apply case — a staged file strictly after every
        row already present — is a plain extend; out-of-order arrivals
        (round-robin writers finishing early chunks late) fall back to a
        timsort, which is near-linear on the mostly-sorted result.
        """
        if not new_rows:
            return
        if self._unique_index is not None:
            # An append never *removes* keys, so the index stays live:
            # fold the new rows in rather than rebuilding O(table) later.
            for key_no, key in enumerate(self.unique_keys):
                bucket = self._unique_index[key_no]
                for row in new_rows:
                    key_value = tuple(row[i] for i in key)
                    if not any(v is None for v in key_value):
                        bucket.add(key_value)
        if self.sorted_by is None:
            self.rows.extend(new_rows)
            return
        col = self.column_index(self.sorted_by)
        in_order = (not self.rows
                    or self.rows[-1][col] <= new_rows[0][col])
        self.rows.extend(new_rows)
        if not in_order or any(
                new_rows[i][col] > new_rows[i + 1][col]
                for i in range(len(new_rows) - 1)):
            self.rows.sort(key=lambda r: r[col])

    # -- row validation -----------------------------------------------------

    def coerce_row(self, row: tuple) -> tuple:
        """Type-coerce one candidate row against the schema.

        Raises :class:`ExpressionError` on a bad value and
        :class:`BulkExecutionError` for NOT NULL violations (both are
        turned into statement-level aborts by the engine).
        """
        if len(row) != self.arity:
            raise BulkExecutionError(
                f"row has {len(row)} values, table {self.name!r} has "
                f"{self.arity} columns")
        coerced = []
        for value, spec in zip(row, self.columns):
            if value is None and not spec.nullable:
                raise BulkExecutionError(
                    f"NULL in NOT NULL column {spec.name} of {self.name}",
                    field=spec.name)
            coerced.append(spec.ctype.coerce(value, field=spec.name))
        return tuple(coerced)

    def unique_key_values(self, row: tuple) -> list[tuple]:
        """Key tuples of ``row`` for each declared unique key.

        Keys containing a NULL do not participate in uniqueness (standard
        SQL semantics).
        """
        out = []
        for key in self.unique_keys:
            key_value = tuple(row[i] for i in key)
            out.append(None if any(v is None for v in key_value)
                       else key_value)
        return out

    def check_unique(self, candidate_rows: list[tuple],
                     field_hint: str | None = None) -> None:
        """Verify ``candidate_rows`` (the table's would-be full contents)
        satisfy every declared unique key; raise a *uniqueness*
        BulkExecutionError otherwise (without identifying the row)."""
        for key_no, key in enumerate(self.unique_keys):
            seen: set[tuple] = set()
            for row in candidate_rows:
                key_value = tuple(row[i] for i in key)
                if any(v is None for v in key_value):
                    continue
                if key_value in seen:
                    columns = ", ".join(
                        self.columns[i].name for i in key)
                    raise BulkExecutionError(
                        f"uniqueness violation on {self.name}({columns})",
                        kind="uniqueness",
                        field=field_hint or self.columns[key[0]].name)
                seen.add(key_value)

    def _ensure_unique_index(self) -> list[set]:
        """Build (once) the per-key sets of current rows' key values."""
        if self._unique_index is None:
            index: list[set] = [set() for _ in self.unique_keys]
            for row in self._rows:
                for key_no, key in enumerate(self.unique_keys):
                    key_value = tuple(row[i] for i in key)
                    if not any(v is None for v in key_value):
                        index[key_no].add(key_value)
            self._unique_index = index
        return self._unique_index

    def check_unique_append(self, new_rows: list[tuple],
                            field_hint: str | None = None) -> None:
        """Verify appending ``new_rows`` keeps every unique key satisfied,
        assuming the existing rows already do.

        The incremental counterpart to :meth:`check_unique`: instead of
        rescanning the whole table per statement — quadratic across the
        many small ranged statements eager apply issues — it checks new
        rows against a cached key index (built once, extended by
        :meth:`append_rows`, dropped on any other mutation).  Only valid
        when every prior insert into this table was checked, which the
        engine's ``native_unique`` mode guarantees.  Raises the same
        uniqueness :class:`BulkExecutionError` as :meth:`check_unique`.
        """
        if not self.unique_keys:
            return
        index = self._ensure_unique_index()
        staged: list[set] = [set() for _ in self.unique_keys]
        for key_no, key in enumerate(self.unique_keys):
            seen, local = index[key_no], staged[key_no]
            for row in new_rows:
                key_value = tuple(row[i] for i in key)
                if any(v is None for v in key_value):
                    continue
                if key_value in seen or key_value in local:
                    columns = ", ".join(
                        self.columns[i].name for i in key)
                    raise BulkExecutionError(
                        f"uniqueness violation on {self.name}({columns})",
                        kind="uniqueness",
                        field=field_hint or self.columns[key[0]].name)
                local.add(key_value)


@dataclass
class Catalog:
    """The engine's table namespace."""

    tables: dict[str, CdwTable] = field(default_factory=dict)

    def create(self, table: CdwTable, if_not_exists: bool = False) -> bool:
        """Register a table; returns False if it already existed."""
        key = table.name.upper()
        if key in self.tables:
            if if_not_exists:
                return False
            raise CatalogError(f"table {table.name!r} already exists")
        self.tables[key] = table
        return True

    def drop(self, name: str, if_exists: bool = False) -> bool:
        """Remove a table; returns False for if_exists no-ops."""
        key = name.upper()
        if key not in self.tables:
            if if_exists:
                return False
            raise CatalogError(f"no such table {name!r}")
        del self.tables[key]
        return True

    def get(self, name: str) -> CdwTable:
        """Look up a table; raises CatalogError if absent."""
        try:
            return self.tables[name.upper()]
        except KeyError:
            raise CatalogError(f"no such table {name!r}") from None

    def exists(self, name: str) -> bool:
        """Whether a table of this name exists."""
        return name.upper() in self.tables

    def names(self) -> list[str]:
        """Sorted names of every table."""
        return sorted(t.name for t in self.tables.values())
