"""Catalog and row storage for the CDW engine (and the legacy server).

Tables store rows as plain tuples.  Uniqueness enforcement is *declared*
here but *checked* by the engine at statement commit, so that violation
semantics stay set-oriented.  ``native_unique=False`` on the engine makes
declared keys advisory — modelling CDWs without native uniqueness support,
for which Hyper-Q "enforces uniqueness through emulation" (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cdw.types import CdwType
from repro.errors import BulkExecutionError, CatalogError, ExpressionError

__all__ = ["ColumnSpec", "CdwTable", "Catalog"]


@dataclass(frozen=True)
class ColumnSpec:
    name: str
    ctype: CdwType
    nullable: bool = True


class CdwTable:
    """One table: schema, rows, and declared unique keys."""

    def __init__(self, name: str, columns: list[ColumnSpec],
                 unique_keys: list[tuple[str, ...]] | None = None):
        if not columns:
            raise CatalogError(f"table {name!r} needs at least one column")
        self.name = name
        self.columns = list(columns)
        self._index = {c.name.upper(): i for i, c in enumerate(columns)}
        if len(self._index) != len(columns):
            raise CatalogError(f"table {name!r} has duplicate column names")
        self.unique_keys: list[tuple[int, ...]] = []
        for key in unique_keys or []:
            self.unique_keys.append(
                tuple(self.column_index(col) for col in key))
        self.rows: list[tuple] = []
        #: name of a column the rows are known to be sorted by (set by
        #: Hyper-Q's Beta after sorting the staging table); lets the
        #: engine slice BETWEEN-range scans with binary search instead of
        #: a full scan.  The setter must guarantee the order holds.
        self.sorted_by: str | None = None

    # -- schema -------------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def arity(self) -> int:
        return len(self.columns)

    def column_index(self, name: str) -> int:
        """Position of a column by (case-insensitive) name."""
        try:
            return self._index[name.upper()]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}") from None

    def column(self, name: str) -> ColumnSpec:
        """The ColumnSpec for a column name."""
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        """Whether a column of this name exists."""
        return name.upper() in self._index

    # -- row validation -----------------------------------------------------

    def coerce_row(self, row: tuple) -> tuple:
        """Type-coerce one candidate row against the schema.

        Raises :class:`ExpressionError` on a bad value and
        :class:`BulkExecutionError` for NOT NULL violations (both are
        turned into statement-level aborts by the engine).
        """
        if len(row) != self.arity:
            raise BulkExecutionError(
                f"row has {len(row)} values, table {self.name!r} has "
                f"{self.arity} columns")
        coerced = []
        for value, spec in zip(row, self.columns):
            if value is None and not spec.nullable:
                raise BulkExecutionError(
                    f"NULL in NOT NULL column {spec.name} of {self.name}",
                    field=spec.name)
            coerced.append(spec.ctype.coerce(value, field=spec.name))
        return tuple(coerced)

    def unique_key_values(self, row: tuple) -> list[tuple]:
        """Key tuples of ``row`` for each declared unique key.

        Keys containing a NULL do not participate in uniqueness (standard
        SQL semantics).
        """
        out = []
        for key in self.unique_keys:
            key_value = tuple(row[i] for i in key)
            out.append(None if any(v is None for v in key_value)
                       else key_value)
        return out

    def check_unique(self, candidate_rows: list[tuple],
                     field_hint: str | None = None) -> None:
        """Verify ``candidate_rows`` (the table's would-be full contents)
        satisfy every declared unique key; raise a *uniqueness*
        BulkExecutionError otherwise (without identifying the row)."""
        for key_no, key in enumerate(self.unique_keys):
            seen: set[tuple] = set()
            for row in candidate_rows:
                key_value = tuple(row[i] for i in key)
                if any(v is None for v in key_value):
                    continue
                if key_value in seen:
                    columns = ", ".join(
                        self.columns[i].name for i in key)
                    raise BulkExecutionError(
                        f"uniqueness violation on {self.name}({columns})",
                        kind="uniqueness",
                        field=field_hint or self.columns[key[0]].name)
                seen.add(key_value)


@dataclass
class Catalog:
    """The engine's table namespace."""

    tables: dict[str, CdwTable] = field(default_factory=dict)

    def create(self, table: CdwTable, if_not_exists: bool = False) -> bool:
        """Register a table; returns False if it already existed."""
        key = table.name.upper()
        if key in self.tables:
            if if_not_exists:
                return False
            raise CatalogError(f"table {table.name!r} already exists")
        self.tables[key] = table
        return True

    def drop(self, name: str, if_exists: bool = False) -> bool:
        """Remove a table; returns False for if_exists no-ops."""
        key = name.upper()
        if key not in self.tables:
            if if_exists:
                return False
            raise CatalogError(f"no such table {name!r}")
        del self.tables[key]
        return True

    def get(self, name: str) -> CdwTable:
        """Look up a table; raises CatalogError if absent."""
        try:
            return self.tables[name.upper()]
        except KeyError:
            raise CatalogError(f"no such table {name!r}") from None

    def exists(self, name: str) -> bool:
        """Whether a table of this name exists."""
        return name.upper() in self.tables

    def names(self) -> list[str]:
        """Sorted names of every table."""
        return sorted(t.name for t in self.tables.values())
