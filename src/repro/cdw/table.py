"""Catalog and row storage for the CDW engine (and the legacy server).

Tables store their data in one of two layouts:

- **columnar** (the default): typed column vectors from
  :mod:`repro.cdw.columns` — flat buffers per column with a validity
  byte per value.  The ``rows`` property then returns a
  :class:`RowsView` shim that materializes tuples on demand, so every
  pre-existing tuple-level call site keeps working; the engine's
  vectorized paths read whole columns via :meth:`CdwTable.column_values`
  instead.
- **row** (``columnar=False``): the original list of plain tuples, kept
  as the behavioural oracle and A/B baseline.

Uniqueness enforcement is *declared* here but *checked* by the engine at
statement commit, so that violation semantics stay set-oriented.
``native_unique=False`` on the engine makes declared keys advisory —
modelling CDWs without native uniqueness support, for which Hyper-Q
"enforces uniqueness through emulation" (Section 7).
"""

from __future__ import annotations

import bisect
import sys
from dataclasses import dataclass, field, replace

from repro.cdw.columns import ColumnStore
from repro.cdw.types import CdwType
from repro.errors import BulkExecutionError, CatalogError, ExpressionError

__all__ = ["ColumnSpec", "CdwTable", "RowsView", "Catalog"]

#: storage layout for tables constructed without an explicit choice
#: (the engine passes its own ``columnar`` flag for tables it creates).
COLUMNAR_DEFAULT = True


@dataclass(frozen=True)
class ColumnSpec:
    name: str
    ctype: CdwType
    nullable: bool = True


def _key_repr(key_value: tuple) -> str:
    """Bounded repr of a unique-key value for violation messages."""
    if len(key_value) == 1:
        body = repr(key_value[0])
    else:
        body = "(" + ", ".join(repr(v) for v in key_value) + ")"
    if len(body) > 64:
        body = body[:61] + "..."
    return body


class RowsView:
    """Sequence-of-tuples facade over a :class:`ColumnStore`.

    Supports the read-only list operations existing call sites use
    (len, indexing, slicing, iteration, equality, concatenation).
    Mutation goes through the table's own methods.
    """

    __slots__ = ("_store",)

    def __init__(self, store: ColumnStore):
        self._store = store

    def __len__(self) -> int:
        """Number of rows behind the view."""
        return len(self._store)

    def __getitem__(self, item):
        if isinstance(item, slice):
            start, stop, step = item.indices(len(self._store))
            if step == 1:
                return self._store.tuples(start, stop)
            return self._store.tuples(0, len(self._store))[item]
        return self._store.row(item)

    def __iter__(self):
        return iter(self._store.tuples(0, len(self._store)))

    def __eq__(self, other):
        if isinstance(other, RowsView):
            other = list(other)
        if isinstance(other, list):
            return list(self) == other
        return NotImplemented

    def __add__(self, other):
        return list(self) + list(other)

    def __radd__(self, other):
        return list(other) + list(self)

    def __bool__(self) -> bool:
        return len(self._store) > 0

    def __repr__(self) -> str:
        return f"RowsView({list(self)!r})"


class CdwTable:
    """One table: schema, rows, and declared unique keys."""

    def __init__(self, name: str, columns: list[ColumnSpec],
                 unique_keys: list[tuple[str, ...]] | None = None,
                 columnar: bool | None = None):
        if not columns:
            raise CatalogError(f"table {name!r} needs at least one column")
        self.name = name
        self.columns = list(columns)
        self._index = {c.name.upper(): i for i, c in enumerate(columns)}
        if len(self._index) != len(columns):
            raise CatalogError(f"table {name!r} has duplicate column names")
        self.unique_keys: list[tuple[int, ...]] = []
        for key in unique_keys or []:
            self.unique_keys.append(
                tuple(self.column_index(col) for col in key))
        self.columnar = COLUMNAR_DEFAULT if columnar is None else columnar
        #: cached per-key sets of the current rows' unique-key values;
        #: None when stale.  Maintained by :meth:`append_rows`, dropped
        #: by any wholesale ``rows`` reassignment or :meth:`truncate_rows`.
        self._unique_index: list[set] | None = None
        self._store: ColumnStore | None = \
            ColumnStore(self.columns) if self.columnar else None
        self._rows: list[tuple] = []
        #: name of a column the rows are known to be sorted by (set by
        #: Hyper-Q's Beta after sorting the staging table); lets the
        #: engine slice BETWEEN-range scans with binary search instead of
        #: a full scan.  The setter must guarantee the order holds.
        self.sorted_by: str | None = None

    # -- row storage ---------------------------------------------------------

    @property
    def rows(self) -> "list[tuple] | RowsView":
        """The table's rows (tuples in storage order; a live view when
        the table is columnar)."""
        if self._store is not None:
            return RowsView(self._store)
        return self._rows

    @rows.setter
    def rows(self, value: list[tuple]) -> None:
        """Replace the row list wholesale; drops the unique-key index
        (UPDATE/DELETE/MERGE/rollback may have freed arbitrary keys)."""
        if self._store is not None:
            if isinstance(value, RowsView):
                value = list(value)
            self._store = ColumnStore.from_rows(self.columns, value)
        else:
            self._rows = value
        self._unique_index = None

    @property
    def row_count(self) -> int:
        return len(self._store) if self._store is not None \
            else len(self._rows)

    def materialized_rows(self) -> list[tuple]:
        """The rows as a plain list (no copy in row mode).  Callers must
        treat the result as read-only."""
        if self._store is not None:
            return self._store.tuples(0, len(self._store))
        return self._rows

    def take_rows(self, indices: list[int]) -> None:
        """Replace contents with the rows at ``indices``, in that order.

        The vectorized DELETE path uses this to drop a selection without
        materializing tuples.  Like any wholesale mutation it drops the
        unique-key index; ``sorted_by`` is the *caller's* contract (a
        subsequence of sorted rows stays sorted, so DELETE keeps it).
        """
        if self._store is not None:
            self._store = self._store.take(indices)
        else:
            rows = self._rows
            self._rows = [rows[i] for i in indices]
        self._unique_index = None

    def truncate_rows(self, length: int) -> None:
        """Drop every row past ``length`` (Beta's emulation rollback).

        Invalidates the unique-key index so the removed rows' keys
        become insertable again.  ``sorted_by`` is deliberately left
        armed: truncation removes a suffix, which cannot disturb the
        order of what remains, so zone-map slices stay valid for the
        eager ranges that follow a rollback.
        """
        if self._store is not None:
            self._store.truncate(length)
        else:
            del self._rows[length:]
        self._unique_index = None

    # -- schema -------------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def arity(self) -> int:
        return len(self.columns)

    def column_index(self, name: str) -> int:
        """Position of a column by (case-insensitive) name."""
        try:
            return self._index[name.upper()]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}") from None

    def column(self, name: str) -> ColumnSpec:
        """The ColumnSpec for a column name."""
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        """Whether a column of this name exists."""
        return name.upper() in self._index

    # -- schema evolution ----------------------------------------------------

    def add_column(self, spec: ColumnSpec,
                   if_not_exists: bool = False) -> bool:
        """Append a column, NULL-backfilling every existing row.

        The new column lands at the end of the schema so existing
        positional semantics (unique-key positions, error-table
        layouts) are untouched.  Returns False for an ``if_not_exists``
        no-op.  A NOT NULL column cannot be added to a non-empty table
        (there is no DEFAULT mechanism to backfill it).
        """
        if self.has_column(spec.name):
            if if_not_exists:
                return False
            raise CatalogError(
                f"table {self.name!r} already has column {spec.name!r}")
        if not spec.nullable and self.row_count:
            raise CatalogError(
                f"cannot add NOT NULL column {spec.name!r} to non-empty "
                f"table {self.name!r}")
        self.columns.append(spec)
        self._index[spec.name.upper()] = len(self.columns) - 1
        if self._store is not None:
            # ``self._store.specs`` aliases ``self.columns`` (the spec
            # is already appended above); this just adds the vector.
            self._store.add_column(spec)
        else:
            self._rows = [row + (None,) for row in self._rows]
        return True

    def rename_column(self, old: str, new: str) -> None:
        """Rename a column in place; data and positions are untouched."""
        idx = self.column_index(old)
        if self.has_column(new) and idx != self.column_index(new):
            raise CatalogError(
                f"table {self.name!r} already has column {new!r}")
        spec = self.columns[idx]
        self.columns[idx] = replace(spec, name=new)
        self._index = {c.name.upper(): i
                       for i, c in enumerate(self.columns)}
        if self.sorted_by is not None \
                and self.sorted_by.upper() == old.upper():
            self.sorted_by = new

    # -- columnar reads ------------------------------------------------------

    def column_values(self, name: str, lo: int = 0,
                      hi: "int | None" = None) -> list:
        """One column's values over row range ``[lo, hi)`` as a list.

        O(range) without materializing row tuples in columnar mode —
        the read primitive of the vectorized engine paths and Beta's
        ``staged_seqs``.
        """
        return self.column_values_at(self.column_index(name), lo, hi)

    def column_values_at(self, idx: int, lo: int = 0,
                         hi: "int | None" = None) -> list:
        """Like :meth:`column_values` but by column position."""
        if self._store is not None:
            return self._store.column_list(idx, lo, hi)
        rows = self._rows if hi is None else self._rows[lo:hi]
        if hi is None and lo:
            rows = rows[lo:]
        return [row[idx] for row in rows]

    # -- zone map -----------------------------------------------------------

    def set_sorted(self, column: str) -> None:
        """Sort the rows by ``column`` and arm the zone map.

        After this, :meth:`seq_slice` answers range queries by binary
        search and :meth:`append_rows` keeps the order as new rows land
        (Hyper-Q's Beta arms the staging table once per apply run; the
        eager-apply path then interleaves COPY INTO appends with
        range-pruned DML scans).
        """
        col = self.column_index(column)
        if self._store is not None:
            self._sort_store(col)
        else:
            self._rows.sort(key=lambda r: r[col])
        self.sorted_by = column

    def _sort_store(self, col: int) -> None:
        """Stable-sort the column store by one column (argsort + take)."""
        store = self._store
        keys = store.column_list(col)
        n = len(keys)
        if all(keys[i] <= keys[i + 1] for i in range(n - 1)):
            return                      # already in order: no rebuild
        order = sorted(range(n), key=keys.__getitem__)
        self._store = store.take(order)

    def seq_slice(self, low, high) -> tuple[int, int]:
        """Index range ``[lo, hi)`` of rows with sort-column values in
        ``[low, high]`` — a binary search over the armed zone map.

        Raises :class:`CatalogError` when no sort column is armed.
        """
        if self.sorted_by is None:
            raise CatalogError(
                f"table {self.name!r} has no sorted column")
        col = self.column_index(self.sorted_by)
        if self._store is not None:
            column = self._store.cols[col]
            lo = bisect.bisect_left(column, low)
            hi = bisect.bisect_right(column, high)
            return lo, hi
        lo = bisect.bisect_left(self._rows, low, key=lambda r: r[col])
        hi = bisect.bisect_right(self._rows, high, key=lambda r: r[col])
        return lo, hi

    def append_rows(self, new_rows: list[tuple]) -> None:
        """Append rows, preserving the zone-map order when armed.

        The common eager-apply case — a staged file strictly after every
        row already present — is a plain extend; out-of-order arrivals
        (round-robin writers finishing early chunks late) fall back to a
        sort, which is near-linear on the mostly-sorted result.
        """
        if not new_rows:
            return
        if self._unique_index is not None:
            # An append never *removes* keys, so the index stays live:
            # fold the new rows in rather than rebuilding O(table) later.
            for key_no, key in enumerate(self.unique_keys):
                bucket = self._unique_index[key_no]
                for row in new_rows:
                    key_value = tuple(row[i] for i in key)
                    if not any(v is None for v in key_value):
                        bucket.add(key_value)
        if self.sorted_by is None:
            self._extend(new_rows)
            return
        col = self.column_index(self.sorted_by)
        last = None
        if self.row_count:
            last = self._store.cols[col][self.row_count - 1] \
                if self._store is not None else self._rows[-1][col]
        in_order = last is None or last <= new_rows[0][col]
        self._extend(new_rows)
        if not in_order or any(
                new_rows[i][col] > new_rows[i + 1][col]
                for i in range(len(new_rows) - 1)):
            if self._store is not None:
                self._sort_store(col)
            else:
                self._rows.sort(key=lambda r: r[col])

    def _extend(self, new_rows: list[tuple]) -> None:
        if self._store is not None:
            self._store.extend_rows(new_rows)
        else:
            self._rows.extend(new_rows)

    def append_columns(self, column_values: list[list]) -> None:
        """Columnwise :meth:`append_rows`: one value list per column,
        all the same length, values already coerced.

        The COPY/INSERT..SELECT hot path — rows never exist as tuples.
        """
        if not column_values or not column_values[0]:
            return
        n = len(column_values[0])
        if self._unique_index is not None:
            for key_no, key in enumerate(self.unique_keys):
                bucket = self._unique_index[key_no]
                for key_value in zip(*(column_values[i] for i in key)):
                    if not any(v is None for v in key_value):
                        bucket.add(key_value)
        sort_needed = False
        if self.sorted_by is not None:
            col = self.column_index(self.sorted_by)
            new_col = column_values[col]
            last = None
            if self.row_count:
                last = self._store.cols[col][self.row_count - 1] \
                    if self._store is not None else self._rows[-1][col]
            sort_needed = (last is not None and last > new_col[0]) or any(
                new_col[i] > new_col[i + 1] for i in range(n - 1))
        if self._store is not None:
            self._store.extend_columns(column_values)
        else:
            self._rows.extend(zip(*column_values))
        if sort_needed:
            col = self.column_index(self.sorted_by)
            if self._store is not None:
                self._sort_store(col)
            else:
                self._rows.sort(key=lambda r: r[col])

    # -- row validation -----------------------------------------------------

    def coerce_row(self, row: tuple) -> tuple:
        """Type-coerce one candidate row against the schema.

        Raises :class:`ExpressionError` on a bad value and
        :class:`BulkExecutionError` for NOT NULL violations (both are
        turned into statement-level aborts by the engine).
        """
        if len(row) != self.arity:
            raise BulkExecutionError(
                f"row has {len(row)} values, table {self.name!r} has "
                f"{self.arity} columns")
        coerced = []
        for value, spec in zip(row, self.columns):
            if value is None and not spec.nullable:
                raise BulkExecutionError(
                    f"NULL in NOT NULL column {spec.name} of {self.name}",
                    field=spec.name)
            coerced.append(spec.ctype.coerce(value, field=spec.name))
        return tuple(coerced)

    def unique_key_values(self, row: tuple) -> list[tuple]:
        """Key tuples of ``row`` for each declared unique key.

        Keys containing a NULL do not participate in uniqueness (standard
        SQL semantics).
        """
        out = []
        for key in self.unique_keys:
            key_value = tuple(row[i] for i in key)
            out.append(None if any(v is None for v in key_value)
                       else key_value)
        return out

    def _uniqueness_error(self, key: tuple[int, ...], key_value: tuple,
                          field_hint: str | None) -> BulkExecutionError:
        columns = ", ".join(self.columns[i].name for i in key)
        return BulkExecutionError(
            f"uniqueness violation on {self.name}({columns}): "
            f"key {_key_repr(key_value)}",
            kind="uniqueness",
            field=field_hint or self.columns[key[0]].name)

    def _key_tuples(self, key: tuple[int, ...], candidate_rows):
        """Iterate key tuples of ``candidate_rows`` — columnwise when the
        candidate is this table's own live view (no tuple building)."""
        if isinstance(candidate_rows, RowsView) \
                and candidate_rows._store is self._store \
                and self._store is not None:
            return zip(*(self._store.column_list(i) for i in key))
        return (tuple(row[i] for i in key) for row in candidate_rows)

    def check_unique(self, candidate_rows: list[tuple],
                     field_hint: str | None = None) -> None:
        """Verify ``candidate_rows`` (the table's would-be full contents)
        satisfy every declared unique key; raise a *uniqueness*
        BulkExecutionError naming the first violating key otherwise
        (without identifying the row)."""
        for key in self.unique_keys:
            seen: set[tuple] = set()
            for key_value in self._key_tuples(key, candidate_rows):
                if any(v is None for v in key_value):
                    continue
                if key_value in seen:
                    raise self._uniqueness_error(key, key_value, field_hint)
                seen.add(key_value)

    def _ensure_unique_index(self) -> list[set]:
        """Build (once) the per-key sets of current rows' key values."""
        if self._unique_index is None:
            index: list[set] = []
            for key in self.unique_keys:
                bucket: set = set()
                for key_value in self._key_tuples(key, self.rows):
                    if not any(v is None for v in key_value):
                        bucket.add(key_value)
                index.append(bucket)
            self._unique_index = index
        return self._unique_index

    def check_unique_append(self, new_rows: list[tuple],
                            field_hint: str | None = None) -> None:
        """Verify appending ``new_rows`` keeps every unique key satisfied,
        assuming the existing rows already do.

        The incremental counterpart to :meth:`check_unique`: instead of
        rescanning the whole table per statement — quadratic across the
        many small ranged statements eager apply issues — it checks new
        rows against a cached key index (built once, extended by
        :meth:`append_rows`, dropped on any other mutation).  Only valid
        when every prior insert into this table was checked, which the
        engine's ``native_unique`` mode guarantees.  Raises the same
        uniqueness :class:`BulkExecutionError` as :meth:`check_unique`.
        """
        if not self.unique_keys:
            return
        index = self._ensure_unique_index()
        for key_no, key in enumerate(self.unique_keys):
            seen, local = index[key_no], set()
            for row in new_rows:
                key_value = tuple(row[i] for i in key)
                if any(v is None for v in key_value):
                    continue
                if key_value in seen or key_value in local:
                    raise self._uniqueness_error(key, key_value, field_hint)
                local.add(key_value)

    def check_unique_append_columns(self, column_values: list[list],
                                    field_hint: str | None = None) -> None:
        """Columnwise :meth:`check_unique_append` over candidate column
        lists (same order semantics: first duplicate in row order)."""
        if not self.unique_keys:
            return
        index = self._ensure_unique_index()
        for key_no, key in enumerate(self.unique_keys):
            seen, local = index[key_no], set()
            for key_value in zip(*(column_values[i] for i in key)):
                if any(v is None for v in key_value):
                    continue
                if key_value in seen or key_value in local:
                    raise self._uniqueness_error(key, key_value, field_hint)
                local.add(key_value)

    # -- storage stats -------------------------------------------------------

    def storage_info(self) -> dict:
        """Snapshot of this table's physical footprint.

        ``bytes`` is the column-buffer footprint in columnar mode and a
        per-object estimate in row mode — comparable enough to make the
        layout win observable in ``stats()`` and the gauge.
        """
        if self._store is not None:
            nbytes = self._store.nbytes()
        else:
            nbytes = sys.getsizeof(self._rows) + sum(
                sys.getsizeof(row) + sum(
                    sys.getsizeof(v) for v in row if v is not None)
                for row in self._rows)
        return {"rows": self.row_count,
                "bytes": nbytes,
                "mode": "columnar" if self._store is not None else "rows"}


@dataclass
class Catalog:
    """The engine's table namespace."""

    tables: dict[str, CdwTable] = field(default_factory=dict)

    def create(self, table: CdwTable, if_not_exists: bool = False) -> bool:
        """Register a table; returns False if it already existed."""
        key = table.name.upper()
        if key in self.tables:
            if if_not_exists:
                return False
            raise CatalogError(f"table {table.name!r} already exists")
        self.tables[key] = table
        return True

    def drop(self, name: str, if_exists: bool = False) -> bool:
        """Remove a table; returns False for if_exists no-ops."""
        key = name.upper()
        if key not in self.tables:
            if if_exists:
                return False
            raise CatalogError(f"no such table {name!r}")
        del self.tables[key]
        return True

    def get(self, name: str) -> CdwTable:
        """Look up a table; raises CatalogError if absent."""
        try:
            return self.tables[name.upper()]
        except KeyError:
            raise CatalogError(f"no such table {name!r}") from None

    def exists(self, name: str) -> bool:
        """Whether a table of this name exists."""
        return name.upper() in self.tables

    def names(self) -> list[str]:
        """Sorted names of every table."""
        return sorted(t.name for t in self.tables.values())
