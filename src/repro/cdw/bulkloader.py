"""The cloud bulk loader utility (the AzCopy / ``aws s3 cp`` stand-in).

Section 6: "CDWs offer utilities to upload local data files to remote
storage accounts.  Some tuning may be needed ... data compression can
improve upload speed if the communication link ... is slow.  It may also
be more efficient to upload a directory of files rather than individual
files."  This utility exposes exactly those knobs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.cdw import stagefile
from repro.cdw.cloudstore import CloudStore
from repro.errors import StorageError
from repro.obs import NULL_OBS, Observability, get_logger

__all__ = ["CloudBulkLoader", "UploadReport"]

log = get_logger("bulkloader")


@dataclass
class UploadReport:
    """What one invocation of the loader did."""

    files: int = 0
    raw_bytes: int = 0
    uploaded_bytes: int = 0
    compressed: bool = False

    @property
    def compression_ratio(self) -> float:
        if self.uploaded_bytes == 0:
            return 1.0
        return self.raw_bytes / self.uploaded_bytes


class CloudBulkLoader:
    """Uploads finalized local staging files into the cloud store."""

    def __init__(self, store: CloudStore, compression: str | None = None,
                 obs: Observability = NULL_OBS):
        if compression not in (None, "gzip"):
            raise StorageError(f"unsupported compression {compression!r}")
        self.store = store
        self.compression = compression
        self.obs = obs

    def _prepare(self, data: bytes) -> bytes:
        if self.compression == "gzip":
            return stagefile.compress(data)
        return data

    def _blob_name(self, prefix: str, filename: str) -> str:
        name = f"{prefix.rstrip('/')}/{filename}" if prefix else filename
        if self.compression == "gzip":
            name += ".gz"
        return name

    def upload_file(self, local_path: str, container: str,
                    prefix: str = "") -> UploadReport:
        """Upload one local file, applying compression if configured."""
        with open(local_path, "rb") as handle:
            data = handle.read()
        return self.upload_bytes(data, container, prefix,
                                 os.path.basename(local_path))

    def upload_bytes(self, data: bytes, container: str, prefix: str,
                     filename: str) -> UploadReport:
        """Upload in-memory data (used when staging files never hit disk)."""
        payload = self._prepare(data)
        blob = self._blob_name(prefix, filename)
        with self.obs.upload_seconds.time():
            self.store.put_blob(container, blob, payload)
        self.obs.bytes_uploaded.inc(len(payload))
        log.debug("uploaded %s/%s (%d -> %d bytes)",
                  container, blob, len(data), len(payload))
        return UploadReport(
            files=1, raw_bytes=len(data), uploaded_bytes=len(payload),
            compressed=self.compression is not None)

    def upload_directory(self, local_dir: str, container: str,
                         prefix: str = "") -> UploadReport:
        """Upload every regular file in a directory (one loader call)."""
        report = UploadReport(compressed=self.compression is not None)
        for entry in sorted(os.listdir(local_dir)):
            path = os.path.join(local_dir, entry)
            if not os.path.isfile(path):
                continue
            single = self.upload_file(path, container, prefix)
            report.files += single.files
            report.raw_bytes += single.raw_bytes
            report.uploaded_bytes += single.uploaded_bytes
        return report

    # -- read side (used by COPY INTO) ---------------------------------------

    def fetch_decoded(self, container: str, blob: str) -> bytes:
        """Fetch a blob, transparently decompressing ``.gz`` payloads."""
        data = self.store.get_blob(container, blob)
        if blob.endswith(".gz"):
            return stagefile.decompress(data)
        return data
