"""The cloud bulk loader utility (the AzCopy / ``aws s3 cp`` stand-in).

Section 6: "CDWs offer utilities to upload local data files to remote
storage accounts.  Some tuning may be needed ... data compression can
improve upload speed if the communication link ... is slow.  It may also
be more efficient to upload a directory of files rather than individual
files."  This utility exposes exactly those knobs.

The loader is also the stack's first cloud-facing hop, so it hosts the
``store.upload`` / ``store.download`` fault-injection points and wraps
every blob PUT/GET in the node's retry policy and per-target circuit
breaker: transient store failures are absorbed here, invisible to the
pipeline above.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.cdw import stagefile
from repro.cdw.cloudstore import CloudStore
from repro.errors import StorageError
from repro.faults import NULL_INJECTOR, FaultInjector
from repro.obs import NULL_OBS, NULL_SPAN, Observability, get_logger
from repro.resilience import CircuitBreakerRegistry, RetryPolicy

__all__ = ["CloudBulkLoader", "UploadReport"]

log = get_logger("bulkloader")


@dataclass
class UploadReport:
    """What one invocation of the loader did."""

    files: int = 0
    raw_bytes: int = 0
    uploaded_bytes: int = 0
    compressed: bool = False

    @property
    def compression_ratio(self) -> float:
        if self.uploaded_bytes == 0:
            return 1.0
        return self.raw_bytes / self.uploaded_bytes


class CloudBulkLoader:
    """Uploads finalized local staging files into the cloud store."""

    def __init__(self, store: CloudStore, compression: str | None = None,
                 obs: Observability = NULL_OBS,
                 faults: FaultInjector = NULL_INJECTOR,
                 retry: RetryPolicy | None = None,
                 breakers: CircuitBreakerRegistry | None = None,
                 upload_workers: int = 1):
        if compression not in (None, "gzip"):
            raise StorageError(f"unsupported compression {compression!r}")
        if upload_workers < 1:
            raise StorageError("upload_workers must be >= 1")
        self.store = store
        self.compression = compression
        self.obs = obs
        self.faults = faults
        self.retry = retry
        self.breakers = breakers
        #: default directory-upload concurrency (HyperQConfig wires
        #: ``upload_workers`` here).
        self.upload_workers = upload_workers

    def _guarded(self, target: str, fn, span=NULL_SPAN):
        """Run one store call under breaker + retry (when configured)."""
        op = fn
        if self.breakers is not None:
            breaker = self.breakers.get(target)
            op = lambda: breaker.call(fn)  # noqa: E731
        if self.retry is not None:
            return self.retry.call(op, target=target, obs=self.obs,
                                   parent=span)
        return op()

    def _prepare(self, data: bytes) -> bytes:
        if self.compression == "gzip":
            return stagefile.compress(data)
        return data

    def blob_name(self, prefix: str, filename: str) -> str:
        """Blob name a file of this name uploads to (compression-aware)."""
        name = f"{prefix.rstrip('/')}/{filename}" if prefix else filename
        if self.compression == "gzip":
            name += ".gz"
        return name

    _blob_name = blob_name

    def upload_file(self, local_path: str, container: str,
                    prefix: str = "", span=NULL_SPAN) -> UploadReport:
        """Upload one local file, applying compression if configured."""
        with open(local_path, "rb") as handle:
            data = handle.read()
        return self.upload_bytes(data, container, prefix,
                                 os.path.basename(local_path), span=span)

    def upload_bytes(self, data: bytes, container: str, prefix: str,
                     filename: str, span=NULL_SPAN) -> UploadReport:
        """Upload in-memory data (used when staging files never hit disk).

        ``span`` parents the retry spans emitted when transient store
        faults are absorbed on this call.
        """
        payload = self._prepare(data)
        blob = self._blob_name(prefix, filename)

        def put() -> None:
            self.faults.fire("store.upload", container=container,
                             blob=blob, bytes=len(payload))
            self.store.put_blob(container, blob, payload)

        with self.obs.upload_seconds.time():
            self._guarded("store.upload", put, span=span)
        self.obs.bytes_uploaded.inc(len(payload))
        log.debug("uploaded %s/%s (%d -> %d bytes)",
                  container, blob, len(data), len(payload))
        return UploadReport(
            files=1, raw_bytes=len(data), uploaded_bytes=len(payload),
            compressed=self.compression is not None)

    def upload_directory(self, local_dir: str, container: str,
                         prefix: str = "",
                         workers: int | None = None) -> UploadReport:
        """Upload every regular file in a directory (one loader call).

        Files are enumerated in sorted name order — ``os.listdir`` order
        is filesystem-dependent, and blob manifests / COPY input sets
        must be identical across platforms and runs.  Uploads run on a
        bounded worker pool (``workers``, defaulting to the loader's
        ``upload_workers``), but the report is folded in the same sorted
        order as the old sequential walk, and blob names are independent
        of completion order, so both surfaces stay byte-identical.
        """
        paths = [
            path for entry in sorted(os.listdir(local_dir))
            if os.path.isfile(path := os.path.join(local_dir, entry))
        ]
        pool_size = min(workers if workers is not None
                        else self.upload_workers, max(len(paths), 1))
        if pool_size <= 1:
            singles = [self.upload_file(path, container, prefix)
                       for path in paths]
        else:
            with ThreadPoolExecutor(
                    max_workers=pool_size,
                    thread_name_prefix="bulkloader-upload") as pool:
                singles = list(pool.map(
                    lambda path: self.upload_file(path, container,
                                                  prefix),
                    paths))
        report = UploadReport(compressed=self.compression is not None)
        for single in singles:
            report.files += single.files
            report.raw_bytes += single.raw_bytes
            report.uploaded_bytes += single.uploaded_bytes
        return report

    # -- read side (used by COPY INTO) ---------------------------------------

    def fetch_decoded(self, container: str, blob: str,
                      span=NULL_SPAN) -> bytes:
        """Fetch a blob, transparently decompressing ``.gz`` payloads."""

        def get() -> bytes:
            self.faults.fire("store.download", container=container,
                             blob=blob)
            return self.store.get_blob(container, blob)

        data = self._guarded("store.download", get, span=span)
        if blob.endswith(".gz"):
            return stagefile.decompress(data)
        return data
