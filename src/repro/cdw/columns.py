"""Typed column vectors backing :class:`~repro.cdw.table.CdwTable`.

Row-of-tuples storage pays ~50 bytes of object header per value plus a
tuple per row; on the Fig 7 staging/target tables that overhead is the
dominant memory cost and every scan re-touches it.  This module packs
each column into flat stdlib buffers instead:

- integer bases  -> ``array('q')`` (8 bytes/value)
- DOUBLE         -> ``array('d')``
- BOOLEAN        -> ``bytearray`` (1 byte/value)
- character      -> one UTF-8 blob ``bytearray`` + ``array('q')`` offsets
- everything else (DECIMAL/DATE/TIMESTAMP) -> a plain object list

NULLs live in a per-column validity ``bytearray`` (1 = present).  A
value that does not fit its typed buffer (tests append un-coerced rows)
degrades that one column to object storage instead of failing — the
column store must accept anything a Python list would.

The store is an *internal* representation: :class:`CdwTable` presents
the same tuple-level API as before through a view shim, and the engine
opts into columnar reads via ``column_list``.
"""

from __future__ import annotations

import sys
from array import array

__all__ = ["ColumnStore", "column_for_type"]

_INT_BASES = ("SMALLINT", "INT", "BIGINT")
_CHAR_BASES = ("NVARCHAR", "VARCHAR", "CHAR")

#: array('q') bounds; Python ints outside degrade the column to objects.
_Q_MIN, _Q_MAX = -2 ** 63, 2 ** 63 - 1


class _BaseColumn:
    """Shared shape of one column vector."""

    __slots__ = ("valid",)

    def append_many(self, values) -> None:
        for v in values:
            self.append(v)

    def null_count(self) -> int:
        return len(self.valid) - sum(self.valid)


class _IntColumn(_BaseColumn):
    __slots__ = ("data",)

    def __init__(self):
        self.data = array("q")
        self.valid = bytearray()

    def __len__(self):
        return len(self.data)

    def append(self, value) -> None:
        if type(value) is int and _Q_MIN <= value <= _Q_MAX:
            self.data.append(value)
            self.valid.append(1)
        elif value is None:
            self.data.append(0)
            self.valid.append(0)
        else:
            raise TypeError(value)

    def __getitem__(self, i):
        return self.data[i] if self.valid[i] else None

    def to_list(self, lo: int, hi: int) -> list:
        data, valid = self.data, self.valid
        if len(valid) == sum(valid):          # no NULLs: bulk convert
            return data[lo:hi].tolist()
        return [data[i] if valid[i] else None for i in range(lo, hi)]

    def truncate(self, length: int) -> None:
        del self.data[length:]
        del self.valid[length:]

    def take(self, indices) -> "_IntColumn":
        out = _IntColumn()
        data, valid = self.data, self.valid
        out.data = array("q", (data[i] for i in indices))
        out.valid = bytearray(valid[i] for i in indices)
        return out

    def nbytes(self) -> int:
        return self.data.itemsize * len(self.data) + len(self.valid)


class _FloatColumn(_BaseColumn):
    __slots__ = ("data",)

    def __init__(self):
        self.data = array("d")
        self.valid = bytearray()

    def __len__(self):
        return len(self.data)

    def append(self, value) -> None:
        if type(value) is float:
            self.data.append(value)
            self.valid.append(1)
        elif value is None:
            self.data.append(0.0)
            self.valid.append(0)
        else:
            raise TypeError(value)

    def __getitem__(self, i):
        return self.data[i] if self.valid[i] else None

    def to_list(self, lo: int, hi: int) -> list:
        data, valid = self.data, self.valid
        if len(valid) == sum(valid):
            return data[lo:hi].tolist()
        return [data[i] if valid[i] else None for i in range(lo, hi)]

    def truncate(self, length: int) -> None:
        del self.data[length:]
        del self.valid[length:]

    def take(self, indices) -> "_FloatColumn":
        out = _FloatColumn()
        out.data = array("d", (self.data[i] for i in indices))
        out.valid = bytearray(self.valid[i] for i in indices)
        return out

    def nbytes(self) -> int:
        return self.data.itemsize * len(self.data) + len(self.valid)


class _BoolColumn(_BaseColumn):
    __slots__ = ("data",)

    def __init__(self):
        self.data = bytearray()
        self.valid = bytearray()

    def __len__(self):
        return len(self.data)

    def append(self, value) -> None:
        if value is True or value is False:
            self.data.append(1 if value else 0)
            self.valid.append(1)
        elif value is None:
            self.data.append(0)
            self.valid.append(0)
        else:
            raise TypeError(value)

    def __getitem__(self, i):
        return bool(self.data[i]) if self.valid[i] else None

    def to_list(self, lo: int, hi: int) -> list:
        data, valid = self.data, self.valid
        return [bool(data[i]) if valid[i] else None
                for i in range(lo, hi)]

    def truncate(self, length: int) -> None:
        del self.data[length:]
        del self.valid[length:]

    def take(self, indices) -> "_BoolColumn":
        out = _BoolColumn()
        out.data = bytearray(self.data[i] for i in indices)
        out.valid = bytearray(self.valid[i] for i in indices)
        return out

    def nbytes(self) -> int:
        return len(self.data) + len(self.valid)


class _TextColumn(_BaseColumn):
    """Strings as one UTF-8 blob plus end offsets.

    This is where the memory multiple comes from: a Python ``str``
    costs ~49 bytes of header per value; the blob costs its UTF-8
    bytes plus an 8-byte offset.
    """

    __slots__ = ("blob", "offsets")

    def __init__(self):
        self.blob = bytearray()
        self.offsets = array("q", [0])   # offsets[i+1] ends value i
        self.valid = bytearray()

    def __len__(self):
        return len(self.valid)

    def append(self, value) -> None:
        if type(value) is str:
            self.blob += value.encode("utf-8")
            self.offsets.append(len(self.blob))
            self.valid.append(1)
        elif value is None:
            self.offsets.append(len(self.blob))
            self.valid.append(0)
        else:
            raise TypeError(value)

    def __getitem__(self, i):
        if i < 0:
            i += len(self.valid)
        if not self.valid[i]:
            return None
        return self.blob[self.offsets[i]:self.offsets[i + 1]].decode("utf-8")

    def to_list(self, lo: int, hi: int) -> list:
        offsets, valid = self.offsets, self.valid
        out = []
        append = out.append
        start = offsets[lo]
        # One immutable copy: bytes slices decode without further copies
        # of the mutable blob.
        buf = bytes(self.blob[start:offsets[hi]])
        for i in range(lo, hi):
            if valid[i]:
                append(buf[offsets[i] - start:offsets[i + 1] - start]
                       .decode("utf-8"))
            else:
                append(None)
        return out

    def truncate(self, length: int) -> None:
        del self.blob[self.offsets[length]:]
        del self.offsets[length + 1:]
        del self.valid[length:]

    def take(self, indices) -> "_TextColumn":
        out = _TextColumn()
        blob, offsets, valid = self.blob, self.offsets, self.valid
        for i in indices:
            if valid[i]:
                out.blob += blob[offsets[i]:offsets[i + 1]]
                out.valid.append(1)
            else:
                out.valid.append(0)
            out.offsets.append(len(out.blob))
        return out

    def nbytes(self) -> int:
        return (len(self.blob)
                + self.offsets.itemsize * len(self.offsets)
                + len(self.valid))


class _ObjectColumn(_BaseColumn):
    """Fallback: a plain Python list (DECIMAL/DATE/TIMESTAMP, and any
    column a typed buffer rejected)."""

    __slots__ = ("data",)

    def __init__(self):
        self.data: list = []
        self.valid = None   # nulls live inline

    def __len__(self):
        return len(self.data)

    def append(self, value) -> None:
        self.data.append(value)

    def append_many(self, values) -> None:
        self.data.extend(values)

    def __getitem__(self, i):
        return self.data[i]

    def to_list(self, lo: int, hi: int) -> list:
        return self.data[lo:hi]

    def truncate(self, length: int) -> None:
        del self.data[length:]

    def take(self, indices) -> "_ObjectColumn":
        out = _ObjectColumn()
        data = self.data
        out.data = [data[i] for i in indices]
        return out

    def null_count(self) -> int:
        return sum(1 for v in self.data if v is None)

    def nbytes(self) -> int:
        # Estimate: list slots plus per-object size (shared objects are
        # counted once per reference; good enough for a gauge).
        return sys.getsizeof(self.data) + sum(
            sys.getsizeof(v) for v in self.data if v is not None)

    @classmethod
    def from_column(cls, column) -> "_ObjectColumn":
        out = cls()
        out.data = column.to_list(0, len(column))
        return out


def column_for_type(base: str):
    """A fresh column vector suited to a :class:`CdwType` base name."""
    if base in _INT_BASES:
        return _IntColumn()
    if base == "DOUBLE":
        return _FloatColumn()
    if base == "BOOLEAN":
        return _BoolColumn()
    if base in _CHAR_BASES:
        return _TextColumn()
    return _ObjectColumn()


class ColumnStore:
    """All columns of one table, kept the same length."""

    __slots__ = ("specs", "cols", "_length")

    def __init__(self, specs):
        self.specs = specs
        self.cols = [column_for_type(s.ctype.base) for s in specs]
        self._length = 0

    def __len__(self):
        """Number of rows in the store."""
        return self._length

    # -- writes --------------------------------------------------------------

    def _degraded(self, i: int) -> _ObjectColumn:
        col = _ObjectColumn.from_column(self.cols[i])
        self.cols[i] = col
        return col

    def append_row(self, row) -> None:
        """Append one tuple, value by value."""
        for i, value in enumerate(row):
            try:
                self.cols[i].append(value)
            except (TypeError, OverflowError):
                self._degraded(i).append(value)
        self._length += 1

    def extend_rows(self, rows) -> None:
        """Append many tuples."""
        arity = len(self.cols)
        for row in rows:
            cols = self.cols
            for i in range(arity):
                try:
                    cols[i].append(row[i])
                except (TypeError, OverflowError):
                    self._degraded(i).append(row[i])
            self._length += 1

    def extend_columns(self, column_values: list[list]) -> None:
        """Columnwise append; every list must share one length."""
        if not column_values:
            return
        n = len(column_values[0])
        for i, vals in enumerate(column_values):
            try:
                self.cols[i].append_many(vals)
            except (TypeError, OverflowError):
                # Partial append possible: rebuild the column cleanly.
                done = self._length
                col = self.cols[i]
                col.truncate(done)
                self._degraded(i).append_many(vals)
        self._length += n

    # -- reads ---------------------------------------------------------------

    def row(self, i: int) -> tuple:
        """Materialize row ``i`` as a tuple (negative indexes allowed)."""
        if i < 0:
            i += self._length
        if not 0 <= i < self._length:
            raise IndexError("row index out of range")
        return tuple(col[i] for col in self.cols)

    def tuples(self, lo: int, hi: int) -> list[tuple]:
        """Materialize rows ``[lo, hi)`` as a list of tuples."""
        if hi <= lo:
            return []
        return list(zip(*(col.to_list(lo, hi) for col in self.cols)))

    def column_list(self, idx: int, lo: int = 0,
                    hi: "int | None" = None) -> list:
        """One column's Python values over row range ``[lo, hi)``."""
        return self.cols[idx].to_list(
            lo, self._length if hi is None else hi)

    # -- mutation ------------------------------------------------------------

    def add_column(self, spec) -> None:
        """Append one column (NULL-backfilled for every existing row).

        Callers keep ``specs`` in sync themselves when the spec list is
        shared with a table object; when it is not shared the spec is
        appended here.
        """
        col = column_for_type(spec.ctype.base)
        col.append_many([None] * self._length)
        self.cols.append(col)
        if not (self.specs and self.specs[-1] is spec):
            self.specs.append(spec)

    def truncate(self, length: int) -> None:
        """Drop every row past ``length``."""
        if length >= self._length:
            return
        length = max(length, 0)
        for col in self.cols:
            col.truncate(length)
        self._length = length

    def take(self, indices) -> "ColumnStore":
        """A new store holding the given rows, in the given order."""
        out = ColumnStore.__new__(ColumnStore)
        out.specs = self.specs
        out.cols = [col.take(indices) for col in self.cols]
        out._length = len(indices)
        return out

    def nbytes(self) -> int:
        """Total buffer footprint of every column, in bytes."""
        return sum(col.nbytes() for col in self.cols)

    @classmethod
    def from_rows(cls, specs, rows) -> "ColumnStore":
        """Build a store from an iterable of row tuples."""
        store = cls(specs)
        store.extend_rows(rows)
        return store
