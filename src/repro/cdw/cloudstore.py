"""Simulated cloud object store (the Azure Blob / S3 stand-in).

Blobs live in containers; uploads can be slowed by an optional link
bandwidth to model the "communication link between the Hyper-Q server and
the CDW" whose speed makes compression worthwhile (Section 6).
"""

from __future__ import annotations

import threading
import time

from repro.errors import StorageError

__all__ = ["CloudStore"]


class CloudStore:
    """A thread-safe in-memory container/blob store.

    ``bandwidth_bytes_per_s=None`` uploads instantly; a finite bandwidth
    sleeps proportionally to the payload size (capped by ``max_delay_s`` so
    pathological configurations cannot hang a test run).
    """

    def __init__(self, bandwidth_bytes_per_s: float | None = None,
                 max_delay_s: float = 2.0):
        self._containers: dict[str, dict[str, bytes]] = {}
        self._lock = threading.Lock()
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.max_delay_s = max_delay_s
        #: statistics: total bytes ever uploaded (post-compression).
        self.bytes_uploaded = 0
        self.upload_count = 0

    # -- containers ----------------------------------------------------------

    def create_container(self, name: str) -> None:
        """Create a container (idempotent)."""
        with self._lock:
            self._containers.setdefault(name, {})

    def drop_container(self, name: str) -> None:
        """Remove a container and all its blobs."""
        with self._lock:
            self._containers.pop(name, None)

    def containers(self) -> list[str]:
        """Sorted names of all containers."""
        with self._lock:
            return sorted(self._containers)

    # -- blobs ------------------------------------------------------------------

    def _simulate_link(self, size: int) -> None:
        if self.bandwidth_bytes_per_s:
            delay = min(size / self.bandwidth_bytes_per_s, self.max_delay_s)
            if delay > 0:
                time.sleep(delay)

    def put_blob(self, container: str, name: str, data: bytes) -> None:
        """Upload a blob (applies the simulated link delay)."""
        self._simulate_link(len(data))
        with self._lock:
            blobs = self._containers.get(container)
            if blobs is None:
                raise StorageError(f"no such container {container!r}")
            blobs[name] = bytes(data)
            self.bytes_uploaded += len(data)
            self.upload_count += 1

    def get_blob(self, container: str, name: str) -> bytes:
        """Fetch a blob's bytes; raises StorageError if absent."""
        with self._lock:
            blobs = self._containers.get(container)
            if blobs is None:
                raise StorageError(f"no such container {container!r}")
            data = blobs.get(name)
            if data is None:
                raise StorageError(
                    f"no such blob {name!r} in container {container!r}")
            return data

    def delete_blob(self, container: str, name: str) -> None:
        """Delete one blob (no error if absent)."""
        with self._lock:
            blobs = self._containers.get(container)
            if blobs is None:
                raise StorageError(f"no such container {container!r}")
            blobs.pop(name, None)

    def list_blobs(self, container: str, prefix: str = "") -> list[str]:
        """Sorted blob names under a prefix."""
        with self._lock:
            blobs = self._containers.get(container)
            if blobs is None:
                raise StorageError(f"no such container {container!r}")
            return sorted(b for b in blobs if b.startswith(prefix))

    def delete_prefix(self, container: str, prefix: str) -> int:
        """Remove every blob under ``prefix``; returns how many."""
        with self._lock:
            blobs = self._containers.get(container)
            if blobs is None:
                raise StorageError(f"no such container {container!r}")
            doomed = [b for b in blobs if b.startswith(prefix)]
            for name in doomed:
                del blobs[name]
            return len(doomed)

    # -- URLs -----------------------------------------------------------------

    @staticmethod
    def parse_url(url: str) -> tuple[str, str]:
        """Split ``store://container/prefix`` into (container, prefix)."""
        if not url.startswith("store://"):
            raise StorageError(f"not a store URL: {url!r}")
        rest = url[len("store://"):]
        container, _, prefix = rest.partition("/")
        if not container:
            raise StorageError(f"store URL missing container: {url!r}")
        return container, prefix

    @staticmethod
    def make_url(container: str, prefix: str) -> str:
        return f"store://{container}/{prefix}"
