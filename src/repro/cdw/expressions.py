"""Scalar expression evaluation over AST expressions.

Shared by the CDW engine and the reference legacy server: the two systems
agree on expression *semantics* (SQL three-valued logic, NULL propagation,
cast rules) and differ only in statement-level error handling, which lives
in their respective executors.

The evaluator understands both dialects' constructs: legacy ``CAST .. AS
DATE FORMAT 'fmt'`` is evaluated directly (the legacy server executes
un-rewritten SQL) and CDW ``TO_DATE(x, 'fmt')`` uses the same machinery —
by construction the cross-compiled query computes the same value.
"""

from __future__ import annotations

import re
from decimal import Decimal
from typing import Callable

from repro import values
from repro.cdw.types import cdw_type_from_node
from repro.errors import ExpressionError, SqlTranslationError
from repro.sqlxc import nodes as n

__all__ = ["RowContext", "evaluate", "is_true"]

#: signature of the hook the engine provides for subquery evaluation.
SubqueryRunner = Callable[[n.Select, "RowContext"], list[tuple]]


#: column-layout -> {UPPER name: index}, memoized across rows.  Scans
#: re-bind the same table layout once per row, so uppercasing the
#: column list (and linear ``list.index`` lookups) per row dominated
#: wide scans; a shared index map makes bind+resolve O(1) dict ops.
_LAYOUT_CACHE: dict[tuple, dict[str, int]] = {}


def prepare_layout(columns: "list[str] | tuple[str, ...]") -> dict[str, int]:
    """The memoized ``{UPPER column: index}`` map for a column layout.

    Duplicate names keep their first index, matching the old
    ``list.index`` semantics.
    """
    key = tuple(columns)
    layout = _LAYOUT_CACHE.get(key)
    if layout is None:
        layout = {}
        for i, c in enumerate(key):
            layout.setdefault(c.upper(), i)
        _LAYOUT_CACHE[key] = layout
    return layout


class RowContext:
    """Column bindings for one evaluation: binding name -> (columns, row).

    ``bindings`` preserves insertion order; unqualified column lookup
    searches all bindings and raises on ambiguity.
    """

    def __init__(self,
                 bindings: dict[str, tuple[list[str], tuple]] | None = None,
                 parent: "RowContext | None" = None):
        self._bindings: dict[str, tuple[dict[str, int], tuple]] = {}
        self.parent = parent
        for binding, (columns, row) in (bindings or {}).items():
            self.bind(binding, columns, row)

    def bind(self, binding: str, columns: list[str], row: tuple) -> None:
        """Add (or replace) a binding: columns and one row."""
        self._bindings[binding.upper()] = (prepare_layout(columns), row)

    def bind_prepared(self, binding_upper: str, layout: dict[str, int],
                      row: tuple) -> None:
        """Hot-path bind: caller pre-uppercased the name and prepared
        the layout via :func:`prepare_layout` once per source."""
        self._bindings[binding_upper] = (layout, row)

    def resolve(self, name: str, table: str | None = None):
        """Resolve a column reference to its value."""
        upper = name.upper()
        if table is not None:
            entry = self._bindings.get(table.upper())
            if entry is None:
                if self.parent is not None:
                    return self.parent.resolve(name, table)
                raise ExpressionError(
                    f"unknown table or alias {table!r}")
            layout, row = entry
            idx = layout.get(upper)
            if idx is None:
                raise ExpressionError(
                    f"{table}.{name} does not exist", field=name)
            return row[idx]
        matches = []
        for layout, row in self._bindings.values():
            idx = layout.get(upper)
            if idx is not None:
                matches.append(row[idx])
        if len(matches) > 1:
            raise ExpressionError(f"ambiguous column {name!r}", field=name)
        if matches:
            return matches[0]
        if self.parent is not None:
            return self.parent.resolve(name)
        raise ExpressionError(f"unknown column {name!r}", field=name)


def is_true(value) -> bool:
    """SQL WHERE semantics: only TRUE passes (NULL/unknown does not)."""
    return value is True


def evaluate(expr: n.Expr, ctx: RowContext,
             subquery_runner: SubqueryRunner | None = None):
    """Evaluate a scalar expression in a row context."""
    return _Evaluator(ctx, subquery_runner).eval(expr)


def _like_to_regex(pattern: str) -> re.Pattern:
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _in_literal_table(expr: n.InExpr):
    """Set-lookup fast path for homogeneous all-literal IN lists.

    Memoized on the node (one AST is evaluated once per row): without
    it a long IN list — e.g. the dq precheck's batched routing DELETE —
    degrades to a linear compare walk per row.  Returns ``(members,
    saw_null, element_type)`` or ``None`` when the generic path must
    run; strings are stored rstripped to keep CHAR-padding equality.
    """
    cached = expr.__dict__.get("_literal_table", False)
    if cached is not False:
        return cached
    table = None
    values_ = [item.value for item in expr.items
               if type(item) is n.Literal]
    if expr.items and len(values_) == len(expr.items):
        non_null = [v for v in values_ if v is not None]
        kinds = {type(v) for v in non_null}
        if kinds <= {int}:
            table = (frozenset(non_null),
                     len(non_null) < len(values_), int)
        elif kinds == {str}:
            table = (frozenset(v.rstrip() for v in non_null),
                     len(non_null) < len(values_), str)
    expr.__dict__["_literal_table"] = table
    return table


def _numeric(value, what: str):
    if isinstance(value, (int, float, Decimal)) \
            and not isinstance(value, bool):
        return value
    raise ExpressionError(f"{what} needs a numeric operand, got "
                          f"{type(value).__name__}")


def _binary_tail(op: str, left, right):
    """Arithmetic / concatenation semantics of a binary operator, given
    both operand values.  Shared verbatim by the interpreter and the
    vector compiler so the two paths cannot diverge."""
    if op == "||":
        if left is None or right is None:
            return None
        return _Evaluator._to_text(left) + _Evaluator._to_text(right)
    if left is None or right is None:
        return None
    left = _numeric(left, op)
    right = _numeric(right, op)
    if isinstance(left, Decimal) or isinstance(right, Decimal):
        left, right = Decimal(str(left)), Decimal(str(right))
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExpressionError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            return int(left / right)  # SQL integer division
        return left / right
    if op == "%":
        if right == 0:
            raise ExpressionError("division by zero")
        return left % right
    raise ExpressionError(f"unknown operator {op!r}")


class _Evaluator:
    #: node type -> unbound handler, filled lazily.  Saves the per-node
    #: f-string + getattr on the scan hot path.
    _dispatch: dict[type, "object"] = {}

    def __init__(self, ctx: RowContext,
                 subquery_runner: SubqueryRunner | None):
        self.ctx = ctx
        self.subquery_runner = subquery_runner

    def eval(self, expr: n.Expr):
        t = type(expr)
        method = _Evaluator._dispatch.get(t)
        if method is None:
            method = getattr(_Evaluator, f"_eval_{t.__name__}", None)
            if method is None:
                raise ExpressionError(
                    f"cannot evaluate {t.__name__} node")
            _Evaluator._dispatch[t] = method
        return method(self, expr)

    # -- leaves ------------------------------------------------------------

    def _eval_Literal(self, expr: n.Literal):
        return expr.value

    def _eval_ColumnRef(self, expr: n.ColumnRef):
        # Memoize the uppercased names on the node and try the direct
        # dict hit; RowContext.resolve keeps the slow/diagnostic path
        # (parent scopes, ambiguity, unknown-column errors).
        d = expr.__dict__
        key = d.get("_uc")
        if key is None:
            key = d["_uc"] = (
                expr.name.upper(),
                expr.table.upper() if expr.table else None)
        upper, tbl = key
        bindings = self.ctx._bindings
        if tbl is not None:
            entry = bindings.get(tbl)
            if entry is not None:
                idx = entry[0].get(upper)
                if idx is not None:
                    return entry[1][idx]
        elif len(bindings) == 1:
            for layout, row in bindings.values():
                idx = layout.get(upper)
                if idx is not None:
                    return row[idx]
        return self.ctx.resolve(expr.name, expr.table)

    def _eval_HostParam(self, expr: n.HostParam):
        raise ExpressionError(
            f"host parameter :{expr.name} reached the evaluator unbound")

    def _eval_BoundParam(self, expr: n.BoundParam):
        return expr.value

    @staticmethod
    def _provenance(expr: n.Expr) -> str | None:
        """The input field an expression's value came from, if traceable."""
        for node in n.walk(expr):
            if isinstance(node, (n.BoundParam, n.ColumnRef)):
                return node.name
        return None

    # -- operators -----------------------------------------------------------

    def _eval_UnaryOp(self, expr: n.UnaryOp):
        value = self.eval(expr.operand)
        if expr.op == "NOT":
            if value is None:
                return None
            return not value
        if value is None:
            return None
        if expr.op == "-":
            return -_numeric(value, "unary minus")
        return _numeric(value, "unary plus")

    def _eval_BinaryOp(self, expr: n.BinaryOp):
        op = expr.op
        if op in ("AND", "OR"):
            return self._logical(op, expr.left, expr.right)
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return self._compare(op, left, right)
        return _binary_tail(op, left, right)

    def _logical(self, op: str, left_expr: n.Expr, right_expr: n.Expr):
        left = self.eval(left_expr)
        if op == "AND":
            if left is False:
                return False
            right = self.eval(right_expr)
            if left is None or right is None:
                return False if right is False else None
            return bool(left) and bool(right)
        # OR
        if left is True:
            return True
        right = self.eval(right_expr)
        if left is None or right is None:
            return True if right is True else None
        return bool(left) or bool(right)

    @staticmethod
    def _to_text(value) -> str:
        if isinstance(value, str):
            return value
        if isinstance(value, values.Timestamp):
            return value.isoformat(sep=" ")
        if isinstance(value, values.Date):
            return value.isoformat()
        return str(value)

    def _compare(self, op: str, left, right):
        if left is None or right is None:
            return None
        left, right = self._align(left, right)
        try:
            if op == "=":
                return left == right
            if op == "<>":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            return left >= right
        except TypeError as exc:
            raise ExpressionError(
                f"cannot compare {type(left).__name__} with "
                f"{type(right).__name__}") from exc

    @staticmethod
    def _align(left, right):
        """Align operand types for comparison (CHAR padding, numerics)."""
        if isinstance(left, str) and isinstance(right, str):
            # CHAR semantics: trailing blanks do not affect comparison.
            return left.rstrip(), right.rstrip()
        if isinstance(left, Decimal) and isinstance(right, float):
            return float(left), right
        if isinstance(left, float) and isinstance(right, Decimal):
            return left, float(right)
        if isinstance(left, values.Timestamp) != isinstance(
                right, values.Timestamp) and isinstance(
                left, values.Date) and isinstance(right, values.Date):
            # date vs timestamp: promote the date to midnight.
            if not isinstance(left, values.Timestamp):
                left = values.Timestamp(left.year, left.month, left.day)
            if not isinstance(right, values.Timestamp):
                right = values.Timestamp(right.year, right.month, right.day)
        return left, right

    # -- predicates -------------------------------------------------------------

    def _eval_IsNull(self, expr: n.IsNull):
        value = self.eval(expr.operand)
        result = value is None
        return not result if expr.negated else result

    def _eval_Between(self, expr: n.Between):
        value = self.eval(expr.operand)
        low = self.eval(expr.low)
        high = self.eval(expr.high)
        ge = self._compare(">=", value, low)
        le = self._compare("<=", value, high)
        if ge is None or le is None:
            result = None
        else:
            result = ge and le
        if expr.negated and result is not None:
            return not result
        return result

    def _eval_Like(self, expr: n.Like):
        value = self.eval(expr.operand)
        pattern = self.eval(expr.pattern)
        if value is None or pattern is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern, str):
            raise ExpressionError("LIKE needs string operands")
        result = bool(_like_to_regex(pattern).match(value))
        return not result if expr.negated else result

    def _eval_InExpr(self, expr: n.InExpr):
        value = self.eval(expr.operand)
        if expr.subquery is not None:
            rows = self._run_subquery(expr.subquery)
            candidates = [row[0] for row in rows]
        else:
            fast = _in_literal_table(expr)
            if fast is not None and value is not None \
                    and type(value) is fast[2]:
                members, saw_null, ctype = fast
                probe = value.rstrip() if ctype is str else value
                if probe in members:
                    result = True
                elif saw_null:
                    result = None
                else:
                    result = False
                if expr.negated and result is not None:
                    return not result
                return result
            candidates = [self.eval(item) for item in expr.items]
        if value is None:
            return None
        found = False
        saw_null = False
        for candidate in candidates:
            if candidate is None:
                saw_null = True
                continue
            if self._compare("=", value, candidate) is True:
                found = True
                break
        if found:
            result = True
        elif saw_null:
            result = None
        else:
            result = False
        if expr.negated and result is not None:
            return not result
        return result

    def _eval_Exists(self, expr: n.Exists):
        rows = self._run_subquery(expr.subquery)
        result = bool(rows)
        return not result if expr.negated else result

    def _eval_SubqueryExpr(self, expr: n.SubqueryExpr):
        rows = self._run_subquery(expr.subquery)
        if not rows:
            return None
        if len(rows) > 1:
            raise ExpressionError("scalar subquery returned several rows")
        return rows[0][0]

    def _run_subquery(self, select: n.Select) -> list[tuple]:
        if self.subquery_runner is None:
            raise ExpressionError(
                "subqueries are not available in this context")
        return self.subquery_runner(select, self.ctx)

    # -- conversions ---------------------------------------------------------------

    def _eval_Cast(self, expr: n.Cast):
        value = self.eval(expr.operand)
        ctype = cdw_type_from_node(expr.type)
        field = self._provenance(expr.operand)
        return _cast_value(value, ctype, expr.format, expr.type.base, field)

    def _eval_CaseExpr(self, expr: n.CaseExpr):
        for when in expr.whens:
            if is_true(self.eval(when.condition)):
                return self.eval(when.result)
        if expr.else_result is not None:
            return self.eval(expr.else_result)
        return None

    # -- functions --------------------------------------------------------------------

    def _eval_FuncCall(self, expr: n.FuncCall):
        name = expr.name.upper()
        handler = _FUNCTIONS.get(name)
        if handler is None:
            raise ExpressionError(f"unknown function {name}")
        args = [self.eval(a) for a in expr.args]
        try:
            return handler(args)
        except ExpressionError as exc:
            if exc.field is None and expr.args:
                exc.field = self._provenance(expr.args[0])
            raise

    def _eval_Star(self, expr: n.Star):
        raise ExpressionError("'*' is only valid in a select list")


def _cast_value(value, ctype, fmt, type_base: str, field):
    """CAST semantics given an already-evaluated operand value.  Shared
    by the interpreter and the vector compiler."""
    if value is None:
        return None
    try:
        if fmt is not None:
            if ctype.base == "DATE":
                if isinstance(value, values.Date):
                    return value
                return values.parse_date(str(value), fmt, field=field)
            if ctype.base == "TIMESTAMP":
                if isinstance(value, values.Timestamp):
                    return value
                return values.parse_timestamp(str(value), field=field)
            raise SqlTranslationError(
                f"FORMAT cast to {type_base} is not supported")
        return ctype.coerce(value, field=field)
    except ExpressionError as exc:
        if exc.field is None:
            exc.field = field
        raise


# -- scalar function library ---------------------------------------------------

def _need_str(value, fn: str) -> str:
    if isinstance(value, str):
        return value
    raise ExpressionError(f"{fn} needs a string argument, got "
                          f"{type(value).__name__}")


def _null_passthrough(fn):
    def wrapper(args):
        if args and args[0] is None:
            return None
        return fn(args)
    return wrapper


def _fn_substr(args):
    if args[0] is None:
        return None
    text = _need_str(args[0], "SUBSTR")
    start = int(args[1])
    begin = max(start - 1, 0)
    if len(args) >= 3:
        if args[2] is None:
            return None
        length = int(args[2])
        if length < 0:
            raise ExpressionError("SUBSTR length must be non-negative")
        return text[begin:begin + length]
    return text[begin:]


def _fn_coalesce(args):
    for value in args:
        if value is not None:
            return value
    return None


def _fn_nullif(args):
    a, b = args
    if a is None:
        return None
    if b is not None and a == b:
        return None
    return a


def _fn_to_date(args):
    if args[0] is None:
        return None
    fmt = args[1] if len(args) > 1 and args[1] is not None \
        else values.DEFAULT_DATE_FORMAT
    if isinstance(args[0], values.Date) \
            and not isinstance(args[0], values.Timestamp):
        return args[0]
    return values.parse_date(str(args[0]), fmt)


def _fn_to_timestamp(args):
    if args[0] is None:
        return None
    if isinstance(args[0], values.Timestamp):
        return args[0]
    return values.parse_timestamp(str(args[0]))


def _fn_mod(args):
    if args[0] is None or args[1] is None:
        return None
    if args[1] == 0:
        raise ExpressionError("MOD by zero")
    return args[0] % args[1]


def _fn_extract(args):
    part, value = args[0], args[1]
    if value is None:
        return None
    if not isinstance(value, values.Date):
        raise ExpressionError(
            f"EXTRACT needs a date/timestamp, got "
            f"{type(value).__name__}")
    part = str(part).upper()
    if part == "YEAR":
        return value.year
    if part == "MONTH":
        return value.month
    if part == "DAY":
        return value.day
    if part in ("HOUR", "MINUTE", "SECOND"):
        if not isinstance(value, values.Timestamp):
            return 0
        return {"HOUR": value.hour, "MINUTE": value.minute,
                "SECOND": value.second}[part]
    if part == "DOW":
        return value.isoweekday() % 7  # Sunday = 0
    if part == "DOY":
        return value.timetuple().tm_yday
    raise ExpressionError(f"unknown EXTRACT part {part!r}")


def _fn_round(args):
    if args[0] is None:
        return None
    digits = int(args[1]) if len(args) > 1 else 0
    value = _numeric(args[0], "ROUND")
    if isinstance(value, Decimal):
        quantum = Decimal(1).scaleb(-digits)
        return value.quantize(quantum)
    return round(float(value), digits)


_FUNCTIONS = {
    "TRIM": _null_passthrough(lambda a: _need_str(a[0], "TRIM").strip()),
    "LTRIM": _null_passthrough(lambda a: _need_str(a[0], "LTRIM").lstrip()),
    "RTRIM": _null_passthrough(lambda a: _need_str(a[0], "RTRIM").rstrip()),
    "UPPER": _null_passthrough(lambda a: _need_str(a[0], "UPPER").upper()),
    "LOWER": _null_passthrough(lambda a: _need_str(a[0], "LOWER").lower()),
    "LENGTH": _null_passthrough(lambda a: len(_need_str(a[0], "LENGTH"))),
    "CHAR_LENGTH": _null_passthrough(
        lambda a: len(_need_str(a[0], "CHAR_LENGTH"))),
    "SUBSTR": _fn_substr,
    "SUBSTRING": _fn_substr,
    "STRPOS": _null_passthrough(
        lambda a: None if a[1] is None
        else _need_str(a[0], "STRPOS").find(_need_str(a[1], "STRPOS")) + 1),
    "COALESCE": _fn_coalesce,
    "NULLIF": _fn_nullif,
    "ABS": _null_passthrough(lambda a: abs(_numeric(a[0], "ABS"))),
    "MOD": _fn_mod,
    "ROUND": _fn_round,
    "FLOOR": _null_passthrough(
        lambda a: int(__import__("math").floor(_numeric(a[0], "FLOOR")))),
    "CEIL": _null_passthrough(
        lambda a: int(__import__("math").ceil(_numeric(a[0], "CEIL")))),
    "CEILING": _null_passthrough(
        lambda a: int(__import__("math").ceil(_numeric(a[0], "CEILING")))),
    "TO_DATE": _fn_to_date,
    "TO_TIMESTAMP": _fn_to_timestamp,
    "EXTRACT": _fn_extract,
    # Legacy-dialect spellings (the reference server evaluates them raw).
    "ZEROIFNULL": lambda a: 0 if a[0] is None else a[0],
    "NULLIFZERO": lambda a: None if a[0] == 0 else a[0],
    "INDEX": _null_passthrough(
        lambda a: None if a[1] is None
        else _need_str(a[0], "INDEX").find(_need_str(a[1], "INDEX")) + 1),
    "CONCAT": lambda a: None if any(v is None for v in a)
    else "".join(_Evaluator._to_text(v) for v in a),
    # re.search semantics (unanchored); NULL in either argument is NULL,
    # matching the SQL standard's REGEXP_LIKE three-valued behaviour.
    "REGEXP_LIKE": lambda a: None if a[0] is None or a[1] is None
    else re.search(_need_str(a[1], "REGEXP_LIKE"),
                   _Evaluator._to_text(a[0])) is not None,
}


# -- closure compilation -------------------------------------------------------
#
# Tree-walking costs a dispatch lookup plus a method frame per node per
# row; on the scan hot paths (WHERE filters, aggregate arguments — e.g.
# the dq precheck's SUM(CASE …) passes) that constant dominates.
# ``compile_expr`` folds an expression once into nested closures taking
# the evaluator (whose ``ctx`` the caller rebinds per row).  Only the
# hot node kinds are compiled — their closures mirror the
# ``_eval_{Node}`` methods above line for line; anything else (casts,
# subqueries, LIKE, …) falls back to the interpreter, so the compiled
# form can never diverge on node kinds it does not understand.

def compile_expr(expr: n.Expr):
    """The expression as a ``fn(evaluator) -> value`` closure, memoized
    on the node.  Tree *structure* is treated as read-only; node values
    (``Literal.value``, ``BoundParam.value``) may be rebound between
    calls, so closures read them live."""
    d = expr.__dict__
    fn = d.get("_compiled")
    if fn is None:
        fn = d["_compiled"] = _compile(expr)
    return fn


def _compile(expr: n.Expr):
    t = type(expr)
    if t is n.Literal:
        # Must read ``expr.value`` at call time, not capture it: the
        # prepared-DML cache rebinds the ``__SEQ`` range literals of a
        # shared statement template between executions (PreparedDml.bind).
        return lambda ev: expr.value
    if t is n.ColumnRef:
        return _compile_column(expr)
    if t is n.BoundParam:
        return lambda ev: expr.value      # reads the live binding
    if t is n.IsNull:
        operand = _compile(expr.operand)
        if expr.negated:
            return lambda ev: operand(ev) is not None
        return lambda ev: operand(ev) is None
    if t is n.UnaryOp and expr.op == "NOT":
        operand = _compile(expr.operand)

        def _not(ev):
            value = operand(ev)
            return None if value is None else not value
        return _not
    if t is n.BinaryOp:
        return _compile_binary(expr)
    if t is n.Between:
        return _compile_between(expr)
    if t is n.CaseExpr:
        return _compile_case(expr)
    if t is n.InExpr and expr.subquery is None:
        return _compile_in(expr)
    if t is n.FuncCall and not expr.distinct:
        handler = _FUNCTIONS.get(expr.name.upper())
        if handler is not None:
            return _compile_func(expr, handler)
    # Anything else: interpret.  (Also the safety net for node kinds
    # added later — they stay correct, just not compiled.)
    return lambda ev: ev.eval(expr)


def _compile_column(expr: n.ColumnRef):
    upper = expr.name.upper()
    tbl = expr.table.upper() if expr.table else None
    name, table = expr.name, expr.table
    if tbl is None:
        def _unqualified(ev):
            bindings = ev.ctx._bindings
            if len(bindings) == 1:
                for layout, row in bindings.values():
                    idx = layout.get(upper)
                    if idx is not None:
                        return row[idx]
            return ev.ctx.resolve(name, table)
        return _unqualified

    def _qualified(ev):
        entry = ev.ctx._bindings.get(tbl)
        if entry is not None:
            idx = entry[0].get(upper)
            if idx is not None:
                return entry[1][idx]
        return ev.ctx.resolve(name, table)
    return _qualified


def _compile_binary(expr: n.BinaryOp):
    op = expr.op
    left = _compile(expr.left)
    right = _compile(expr.right)
    if op == "AND":
        def _and(ev):
            lv = left(ev)
            if lv is False:
                return False
            rv = right(ev)
            if lv is None or rv is None:
                return False if rv is False else None
            return bool(lv) and bool(rv)
        return _and
    if op == "OR":
        def _or(ev):
            lv = left(ev)
            if lv is True:
                return True
            rv = right(ev)
            if lv is None or rv is None:
                return True if rv is True else None
            return bool(lv) or bool(rv)
        return _or
    if op in ("=", "<>", "<", "<=", ">", ">="):
        compare = _Evaluator._compare
        return lambda ev: compare(ev, op, left(ev), right(ev))
    # arithmetic / concatenation keep the interpreter's error paths
    return lambda ev: ev.eval(expr)


def _compile_between(expr: n.Between):
    operand = _compile(expr.operand)
    low = _compile(expr.low)
    high = _compile(expr.high)
    negated = expr.negated
    compare = _Evaluator._compare

    def _between(ev):
        value = operand(ev)
        ge = compare(ev, ">=", value, low(ev))
        le = compare(ev, "<=", value, high(ev))
        if ge is None or le is None:
            result = None
        else:
            result = ge and le
        if negated and result is not None:
            return not result
        return result
    return _between


def _compile_case(expr: n.CaseExpr):
    whens = tuple((_compile(w.condition), _compile(w.result))
                  for w in expr.whens)
    else_fn = None if expr.else_result is None \
        else _compile(expr.else_result)

    def _case(ev):
        for condition, result in whens:
            if condition(ev) is True:
                return result(ev)
        return None if else_fn is None else else_fn(ev)
    return _case


def _compile_in(expr: n.InExpr):
    fast = _in_literal_table(expr)
    if fast is None:
        return lambda ev: ev.eval(expr)
    operand = _compile(expr.operand)
    members, saw_null, ctype = fast
    negated = expr.negated

    def _in(ev):
        value = operand(ev)
        if value is None or type(value) is not ctype:
            return ev.eval(expr)      # NULL / mixed-type generic path
        probe = value.rstrip() if ctype is str else value
        if probe in members:
            result = True
        elif saw_null:
            result = None
        else:
            result = False
        if negated and result is not None:
            return not result
        return result
    return _in


def _compile_func(expr: n.FuncCall, handler):
    arg_fns = tuple(_compile(a) for a in expr.args)

    def _call(ev):
        args = [fn(ev) for fn in arg_fns]
        try:
            return handler(args)
        except ExpressionError as exc:
            if exc.field is None and expr.args:
                exc.field = _Evaluator._provenance(expr.args[0])
            raise
    return _call


# -- vectorized compilation ----------------------------------------------------
#
# The closure compiler above still runs once per row.  For columnar
# tables the engine instead compiles an expression once per (layout,
# binding) into a *vector* closure: ``fn(batch) -> (is_const, payload)``
# where payload is either a single value (constant over the batch) or a
# list with one entry per batch row.  Evaluation is eager — both AND
# operands, every CASE arm — which is safe because the engine falls back
# to the row path on any ExpressionError, reproducing the interpreter's
# short-circuit and error behaviour exactly.  ``compile_vector`` returns
# None for any node kind it does not understand; the engine then keeps
# the row path for the whole statement, so vectorized execution can
# never change semantics, only speed.

#: evaluator instance backing the vector closures' _compare calls
#: (carries no state the closures use).
_VEC_EV = _Evaluator(None, None)

_CMP_OPS = ("=", "<>", "<", "<=", ">", ">=")

_PY_CMP = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class ColumnBatch:
    """Lazy column slices of one table over a row range ``[lo, hi)``.

    Vector closures pull whole columns out of the table's column store
    on first touch; untouched columns are never materialized.
    """

    __slots__ = ("table", "lo", "hi", "length", "_cols")

    def __init__(self, table, lo: int, hi: int):
        self.table = table
        self.lo = lo
        self.hi = hi
        self.length = hi - lo
        self._cols: dict[int, list] = {}

    def col(self, idx: int) -> list:
        """Column ``idx``'s values over the batch range, materialized
        once per batch."""
        c = self._cols.get(idx)
        if c is None:
            c = self._cols[idx] = self.table.column_values_at(
                idx, self.lo, self.hi)
        return c


class GatherBatch:
    """A selection of a parent batch's rows, presented as a batch.

    Used after the WHERE mask: projection and aggregate arguments must
    evaluate over exactly the surviving rows (the rows the row path
    would touch), so errors stay symmetric between the two paths.
    """

    __slots__ = ("parent", "sel", "length", "_cols")

    def __init__(self, parent, sel: list):
        self.parent = parent
        self.sel = sel
        self.length = len(sel)
        self._cols: dict[int, list] = {}

    def col(self, idx: int) -> list:
        """Selected values of column ``idx``, gathered once per batch."""
        c = self._cols.get(idx)
        if c is None:
            pc = self.parent.col(idx)
            c = self._cols[idx] = [pc[i] for i in self.sel]
        return c


def vec_values(result, nrows: int) -> list:
    """Expand a vector-closure result into a per-row value list."""
    const, payload = result
    return [payload] * nrows if const else payload


def _value_getter(result):
    """Per-row accessor ``fn(i)`` over a vector-closure result."""
    const, payload = result
    if const:
        return lambda i: payload
    return payload.__getitem__


def compile_vector(expr: n.Expr, layout: dict[str, int],
                   binding_upper: str):
    """Compile ``expr`` into a vector closure for one table layout.

    Returns ``fn(batch) -> (is_const, payload)`` or None when the
    expression contains a node the vector compiler does not support
    (subqueries, outer references, unknown columns, ...), in which case
    the caller must use the row path.  Memoized per (layout, binding)
    on the node; like ``compile_expr``, closures read ``Literal.value``
    and ``BoundParam.value`` live so prepared-DML rebinding works.
    """
    cache = expr.__dict__.get("_vcompiled")
    if cache is None:
        cache = expr.__dict__["_vcompiled"] = {}
    key = (id(layout), binding_upper)
    try:
        return cache[key]
    except KeyError:
        fn = _vcompile(expr, layout, binding_upper)
        cache[key] = fn
        return fn


def _vcompile(expr: n.Expr, layout: dict[str, int], bu: str):
    t = type(expr)
    if t is n.Literal:
        return lambda b: (True, expr.value)      # reads the live binding
    if t is n.BoundParam:
        return lambda b: (True, expr.value)
    if t is n.ColumnRef:
        if expr.table is not None and expr.table.upper() != bu:
            return None                          # outer/other binding
        idx = layout.get(expr.name.upper())
        if idx is None:
            return None                          # unknown: row path errors
        return lambda b: (False, b.col(idx))
    if t is n.IsNull:
        return _vcompile_isnull(expr, layout, bu)
    if t is n.UnaryOp:
        return _vcompile_unary(expr, layout, bu)
    if t is n.BinaryOp:
        return _vcompile_binary(expr, layout, bu)
    if t is n.Between:
        return _vcompile_between(expr, layout, bu)
    if t is n.CaseExpr:
        return _vcompile_case(expr, layout, bu)
    if t is n.InExpr and expr.subquery is None:
        return _vcompile_in(expr, layout, bu)
    if t is n.Like:
        return _vcompile_like(expr, layout, bu)
    if t is n.Cast:
        return _vcompile_cast(expr, layout, bu)
    if t is n.FuncCall and not expr.distinct:
        handler = _FUNCTIONS.get(expr.name.upper())
        if handler is not None:
            return _vcompile_func(expr, handler, layout, bu)
    return None


def _vcompile_isnull(expr: n.IsNull, layout, bu):
    operand = compile_vector(expr.operand, layout, bu)
    if operand is None:
        return None
    negated = expr.negated

    def _isnull(b):
        const, payload = operand(b)
        if const:
            result = payload is None
            return (True, not result if negated else result)
        if negated:
            return (False, [v is not None for v in payload])
        return (False, [v is None for v in payload])
    return _isnull


def _vcompile_unary(expr: n.UnaryOp, layout, bu):
    operand = compile_vector(expr.operand, layout, bu)
    if operand is None:
        return None
    op = expr.op

    def _scalar(v):
        if v is None:
            return None
        if op == "NOT":
            return not v
        if op == "-":
            return -_numeric(v, "unary minus")
        return +_numeric(v, "unary plus")

    def _unary(b):
        const, payload = operand(b)
        if const:
            return (True, _scalar(payload))
        return (False, [_scalar(v) for v in payload])
    return _unary


def _v_and(lv, rv):
    """Three-valued AND given both operand values (mirrors _logical)."""
    if lv is False:
        return False
    if lv is None or rv is None:
        return False if rv is False else None
    return bool(lv) and bool(rv)


def _v_or(lv, rv):
    """Three-valued OR given both operand values (mirrors _logical)."""
    if lv is True:
        return True
    if lv is None or rv is None:
        return True if rv is True else None
    return bool(lv) or bool(rv)


def _vcompile_binary(expr: n.BinaryOp, layout, bu):
    op = expr.op
    left = compile_vector(expr.left, layout, bu)
    right = compile_vector(expr.right, layout, bu)
    if left is None or right is None:
        return None
    if op in ("AND", "OR"):
        pair = _v_and if op == "AND" else _v_or

        def _logic(b):
            lres, rres = left(b), right(b)
            if lres[0] and rres[0]:
                return (True, pair(lres[1], rres[1]))
            nrows = b.length
            lv = vec_values(lres, nrows)
            rv = vec_values(rres, nrows)
            return (False, [pair(a, c) for a, c in zip(lv, rv)])
        return _logic
    if op in _CMP_OPS:
        return _vcompile_compare(op, left, right)

    def _arith(b):
        lres, rres = left(b), right(b)
        if lres[0] and rres[0]:
            return (True, _binary_tail(op, lres[1], rres[1]))
        nrows = b.length
        lv = vec_values(lres, nrows)
        rv = vec_values(rres, nrows)
        return (False, [_binary_tail(op, a, c) for a, c in zip(lv, rv)])
    return _arith


def _vcompile_compare(op: str, left, right):
    compare = _VEC_EV._compare
    pyop = _PY_CMP[op]

    def _cmp(b):
        lres, rres = left(b), right(b)
        lc, lv = lres
        rc, rv = rres
        if lc and rc:
            return (True, compare(op, lv, rv))
        if lc:                                   # const <op> vector
            if lv is None:
                return (True, None)
            if type(lv) is int:
                return (False, [
                    None if v is None else
                    (pyop(lv, v) if type(v) is int else compare(op, lv, v))
                    for v in rv])
            return (False, [None if v is None else compare(op, lv, v)
                            for v in rv])
        if rc:                                   # vector <op> const
            if rv is None:
                return (True, None)
            if type(rv) is int:
                return (False, [
                    None if v is None else
                    (pyop(v, rv) if type(v) is int else compare(op, v, rv))
                    for v in lv])
            if type(rv) is str:
                cr = rv.rstrip()
                return (False, [
                    None if v is None else
                    (pyop(v.rstrip(), cr) if type(v) is str
                     else compare(op, v, rv))
                    for v in lv])
            return (False, [None if v is None else compare(op, v, rv)
                            for v in lv])
        return (False, [compare(op, a, c) for a, c in zip(lv, rv)])
    return _cmp


def _vcompile_between(expr: n.Between, layout, bu):
    operand = compile_vector(expr.operand, layout, bu)
    low = compile_vector(expr.low, layout, bu)
    high = compile_vector(expr.high, layout, bu)
    if operand is None or low is None or high is None:
        return None
    negated = expr.negated
    compare = _VEC_EV._compare

    def _pair(value, lo, hi):
        ge = compare(">=", value, lo)
        le = compare("<=", value, hi)
        if ge is None or le is None:
            result = None
        else:
            result = ge and le
        if negated and result is not None:
            return not result
        return result

    def _between(b):
        vres, lres, hres = operand(b), low(b), high(b)
        if vres[0] and lres[0] and hres[0]:
            return (True, _pair(vres[1], lres[1], hres[1]))
        nrows = b.length
        if not vres[0] and lres[0] and hres[0] \
                and type(lres[1]) is int and type(hres[1]) is int:
            lo, hi = lres[1], hres[1]
            if negated:
                return (False, [
                    None if v is None else
                    (not lo <= v <= hi if type(v) is int
                     else _pair(v, lo, hi))
                    for v in vres[1]])
            return (False, [
                None if v is None else
                (lo <= v <= hi if type(v) is int else _pair(v, lo, hi))
                for v in vres[1]])
        value_at = _value_getter(vres)
        lo_at = _value_getter(lres)
        hi_at = _value_getter(hres)
        return (False, [_pair(value_at(i), lo_at(i), hi_at(i))
                        for i in range(nrows)])
    return _between


def _vcompile_case(expr: n.CaseExpr, layout, bu):
    whens = []
    for when in expr.whens:
        condition = compile_vector(when.condition, layout, bu)
        result = compile_vector(when.result, layout, bu)
        if condition is None or result is None:
            return None
        whens.append((condition, result))
    else_fn = None
    if expr.else_result is not None:
        else_fn = compile_vector(expr.else_result, layout, bu)
        if else_fn is None:
            return None

    def _case(b):
        nrows = b.length
        conds = [vec_values(c(b), nrows) for c, _ in whens]
        results = [_value_getter(r(b)) for _, r in whens]
        else_at = None if else_fn is None else _value_getter(else_fn(b))
        out = []
        append = out.append
        n_whens = len(conds)
        for i in range(nrows):
            for j in range(n_whens):
                if conds[j][i] is True:
                    append(results[j](i))
                    break
            else:
                append(None if else_at is None else else_at(i))
        return (False, out)
    return _case


def _vcompile_in(expr: n.InExpr, layout, bu):
    operand = compile_vector(expr.operand, layout, bu)
    if operand is None:
        return None
    item_fns = []
    for item in expr.items:
        fn = compile_vector(item, layout, bu)
        if fn is None:
            return None
        item_fns.append(fn)
    negated = expr.negated
    fast = _in_literal_table(expr)
    compare = _VEC_EV._compare

    def _generic(value, candidates):
        # Mirrors the interpreter's per-row IN scan exactly.
        if value is None:
            return None
        found = False
        saw_null = False
        for candidate in candidates:
            if candidate is None:
                saw_null = True
                continue
            if compare("=", value, candidate) is True:
                found = True
                break
        if found:
            result = True
        elif saw_null:
            result = None
        else:
            result = False
        if negated and result is not None:
            return not result
        return result

    def _in(b):
        vres = operand(b)
        nrows = b.length
        if fast is not None:
            members, saw_null, ctype = fast
            vv = [vres[1]] if vres[0] else vres[1]
            out = []
            append = out.append
            candidates = None
            for value in vv:
                if value is not None and type(value) is ctype:
                    probe = value.rstrip() if ctype is str else value
                    if probe in members:
                        result = True
                    elif saw_null:
                        result = None
                    else:
                        result = False
                    if negated and result is not None:
                        result = not result
                    append(result)
                else:
                    if candidates is None:
                        candidates = [g(0) for g in
                                      (_value_getter(f(b))
                                       for f in item_fns)]
                    append(_generic(value, candidates))
            if vres[0]:
                return (True, out[0])
            return (False, out)
        item_results = [f(b) for f in item_fns]
        if vres[0] and all(const for const, _ in item_results):
            return (True, _generic(
                vres[1], [payload for _, payload in item_results]))
        item_getters = [_value_getter(r) for r in item_results]
        value_at = _value_getter(vres)
        return (False, [_generic(value_at(i),
                                 [g(i) for g in item_getters])
                        for i in range(nrows)])
    return _in


def _vcompile_like(expr: n.Like, layout, bu):
    operand = compile_vector(expr.operand, layout, bu)
    pattern = compile_vector(expr.pattern, layout, bu)
    if operand is None or pattern is None:
        return None
    negated = expr.negated
    regex_cache: dict[str, "re.Pattern"] = {}

    def _pair(value, pat):
        if value is None or pat is None:
            return None
        if not isinstance(value, str) or not isinstance(pat, str):
            raise ExpressionError("LIKE needs string operands")
        regex = regex_cache.get(pat)
        if regex is None:
            regex = regex_cache[pat] = _like_to_regex(pat)
        result = bool(regex.match(value))
        return not result if negated else result

    def _like(b):
        vres, pres = operand(b), pattern(b)
        if vres[0] and pres[0]:
            return (True, _pair(vres[1], pres[1]))
        nrows = b.length
        value_at = _value_getter(vres)
        pat_at = _value_getter(pres)
        return (False, [_pair(value_at(i), pat_at(i))
                        for i in range(nrows)])
    return _like


def _vcompile_cast(expr: n.Cast, layout, bu):
    operand = compile_vector(expr.operand, layout, bu)
    if operand is None:
        return None
    ctype = cdw_type_from_node(expr.type)
    fmt = expr.format
    type_base = expr.type.base
    field = _Evaluator._provenance(expr.operand)

    def _cast(b):
        const, payload = operand(b)
        if const:
            return (True, _cast_value(payload, ctype, fmt,
                                      type_base, field))
        return (False, [_cast_value(v, ctype, fmt, type_base, field)
                        for v in payload])
    return _cast


def _vcompile_func(expr: n.FuncCall, handler, layout, bu):
    arg_fns = []
    for arg in expr.args:
        fn = compile_vector(arg, layout, bu)
        if fn is None:
            return None
        arg_fns.append(fn)

    def _call(b):
        results = [fn(b) for fn in arg_fns]
        try:
            if all(const for const, _ in results):
                return (True, handler([payload for _, payload in results]))
            nrows = b.length
            if len(results) == 1:
                vec = vec_values(results[0], nrows)
                return (False, [handler([v]) for v in vec])
            vecs = [vec_values(r, nrows) for r in results]
            return (False, [handler(list(args)) for args in zip(*vecs)])
        except ExpressionError as exc:
            if exc.field is None and expr.args:
                exc.field = _Evaluator._provenance(expr.args[0])
            raise
    return _call
