"""Scalar expression evaluation over AST expressions.

Shared by the CDW engine and the reference legacy server: the two systems
agree on expression *semantics* (SQL three-valued logic, NULL propagation,
cast rules) and differ only in statement-level error handling, which lives
in their respective executors.

The evaluator understands both dialects' constructs: legacy ``CAST .. AS
DATE FORMAT 'fmt'`` is evaluated directly (the legacy server executes
un-rewritten SQL) and CDW ``TO_DATE(x, 'fmt')`` uses the same machinery —
by construction the cross-compiled query computes the same value.
"""

from __future__ import annotations

import re
from decimal import Decimal
from typing import Callable

from repro import values
from repro.cdw.types import cdw_type_from_node
from repro.errors import ExpressionError, SqlTranslationError
from repro.sqlxc import nodes as n

__all__ = ["RowContext", "evaluate", "is_true"]

#: signature of the hook the engine provides for subquery evaluation.
SubqueryRunner = Callable[[n.Select, "RowContext"], list[tuple]]


class RowContext:
    """Column bindings for one evaluation: binding name -> (columns, row).

    ``bindings`` preserves insertion order; unqualified column lookup
    searches all bindings and raises on ambiguity.
    """

    def __init__(self,
                 bindings: dict[str, tuple[list[str], tuple]] | None = None,
                 parent: "RowContext | None" = None):
        self._bindings: dict[str, tuple[list[str], tuple]] = {}
        self.parent = parent
        for binding, (columns, row) in (bindings or {}).items():
            self.bind(binding, columns, row)

    def bind(self, binding: str, columns: list[str], row: tuple) -> None:
        """Add (or replace) a binding: columns and one row."""
        self._bindings[binding.upper()] = (
            [c.upper() for c in columns], row)

    def resolve(self, name: str, table: str | None = None):
        """Resolve a column reference to its value."""
        upper = name.upper()
        if table is not None:
            entry = self._bindings.get(table.upper())
            if entry is None:
                if self.parent is not None:
                    return self.parent.resolve(name, table)
                raise ExpressionError(
                    f"unknown table or alias {table!r}")
            columns, row = entry
            if upper not in columns:
                raise ExpressionError(
                    f"{table}.{name} does not exist", field=name)
            return row[columns.index(upper)]
        matches = []
        for columns, row in self._bindings.values():
            if upper in columns:
                matches.append(row[columns.index(upper)])
        if len(matches) > 1:
            raise ExpressionError(f"ambiguous column {name!r}", field=name)
        if matches:
            return matches[0]
        if self.parent is not None:
            return self.parent.resolve(name)
        raise ExpressionError(f"unknown column {name!r}", field=name)


def is_true(value) -> bool:
    """SQL WHERE semantics: only TRUE passes (NULL/unknown does not)."""
    return value is True


def evaluate(expr: n.Expr, ctx: RowContext,
             subquery_runner: SubqueryRunner | None = None):
    """Evaluate a scalar expression in a row context."""
    return _Evaluator(ctx, subquery_runner).eval(expr)


def _like_to_regex(pattern: str) -> re.Pattern:
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _numeric(value, what: str):
    if isinstance(value, (int, float, Decimal)) \
            and not isinstance(value, bool):
        return value
    raise ExpressionError(f"{what} needs a numeric operand, got "
                          f"{type(value).__name__}")


class _Evaluator:
    def __init__(self, ctx: RowContext,
                 subquery_runner: SubqueryRunner | None):
        self.ctx = ctx
        self.subquery_runner = subquery_runner

    def eval(self, expr: n.Expr):
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise ExpressionError(
                f"cannot evaluate {type(expr).__name__} node")
        return method(expr)

    # -- leaves ------------------------------------------------------------

    def _eval_Literal(self, expr: n.Literal):
        return expr.value

    def _eval_ColumnRef(self, expr: n.ColumnRef):
        return self.ctx.resolve(expr.name, expr.table)

    def _eval_HostParam(self, expr: n.HostParam):
        raise ExpressionError(
            f"host parameter :{expr.name} reached the evaluator unbound")

    def _eval_BoundParam(self, expr: n.BoundParam):
        return expr.value

    @staticmethod
    def _provenance(expr: n.Expr) -> str | None:
        """The input field an expression's value came from, if traceable."""
        for node in n.walk(expr):
            if isinstance(node, (n.BoundParam, n.ColumnRef)):
                return node.name
        return None

    # -- operators -----------------------------------------------------------

    def _eval_UnaryOp(self, expr: n.UnaryOp):
        value = self.eval(expr.operand)
        if expr.op == "NOT":
            if value is None:
                return None
            return not value
        if value is None:
            return None
        if expr.op == "-":
            return -_numeric(value, "unary minus")
        return _numeric(value, "unary plus")

    def _eval_BinaryOp(self, expr: n.BinaryOp):
        op = expr.op
        if op in ("AND", "OR"):
            return self._logical(op, expr.left, expr.right)
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if op == "||":
            if left is None or right is None:
                return None
            return self._to_text(left) + self._to_text(right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return self._compare(op, left, right)
        if left is None or right is None:
            return None
        left = _numeric(left, op)
        right = _numeric(right, op)
        if isinstance(left, Decimal) or isinstance(right, Decimal):
            left, right = Decimal(str(left)), Decimal(str(right))
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExpressionError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                return int(left / right)  # SQL integer division
            return left / right
        if op == "%":
            if right == 0:
                raise ExpressionError("division by zero")
            return left % right
        raise ExpressionError(f"unknown operator {op!r}")

    def _logical(self, op: str, left_expr: n.Expr, right_expr: n.Expr):
        left = self.eval(left_expr)
        if op == "AND":
            if left is False:
                return False
            right = self.eval(right_expr)
            if left is None or right is None:
                return False if right is False else None
            return bool(left) and bool(right)
        # OR
        if left is True:
            return True
        right = self.eval(right_expr)
        if left is None or right is None:
            return True if right is True else None
        return bool(left) or bool(right)

    @staticmethod
    def _to_text(value) -> str:
        if isinstance(value, str):
            return value
        if isinstance(value, values.Timestamp):
            return value.isoformat(sep=" ")
        if isinstance(value, values.Date):
            return value.isoformat()
        return str(value)

    def _compare(self, op: str, left, right):
        if left is None or right is None:
            return None
        left, right = self._align(left, right)
        try:
            if op == "=":
                return left == right
            if op == "<>":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            return left >= right
        except TypeError as exc:
            raise ExpressionError(
                f"cannot compare {type(left).__name__} with "
                f"{type(right).__name__}") from exc

    @staticmethod
    def _align(left, right):
        """Align operand types for comparison (CHAR padding, numerics)."""
        if isinstance(left, str) and isinstance(right, str):
            # CHAR semantics: trailing blanks do not affect comparison.
            return left.rstrip(), right.rstrip()
        if isinstance(left, Decimal) and isinstance(right, float):
            return float(left), right
        if isinstance(left, float) and isinstance(right, Decimal):
            return left, float(right)
        if isinstance(left, values.Timestamp) != isinstance(
                right, values.Timestamp) and isinstance(
                left, values.Date) and isinstance(right, values.Date):
            # date vs timestamp: promote the date to midnight.
            if not isinstance(left, values.Timestamp):
                left = values.Timestamp(left.year, left.month, left.day)
            if not isinstance(right, values.Timestamp):
                right = values.Timestamp(right.year, right.month, right.day)
        return left, right

    # -- predicates -------------------------------------------------------------

    def _eval_IsNull(self, expr: n.IsNull):
        value = self.eval(expr.operand)
        result = value is None
        return not result if expr.negated else result

    def _eval_Between(self, expr: n.Between):
        value = self.eval(expr.operand)
        low = self.eval(expr.low)
        high = self.eval(expr.high)
        ge = self._compare(">=", value, low)
        le = self._compare("<=", value, high)
        if ge is None or le is None:
            result = None
        else:
            result = ge and le
        if expr.negated and result is not None:
            return not result
        return result

    def _eval_Like(self, expr: n.Like):
        value = self.eval(expr.operand)
        pattern = self.eval(expr.pattern)
        if value is None or pattern is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern, str):
            raise ExpressionError("LIKE needs string operands")
        result = bool(_like_to_regex(pattern).match(value))
        return not result if expr.negated else result

    def _eval_InExpr(self, expr: n.InExpr):
        value = self.eval(expr.operand)
        if expr.subquery is not None:
            rows = self._run_subquery(expr.subquery)
            candidates = [row[0] for row in rows]
        else:
            candidates = [self.eval(item) for item in expr.items]
        if value is None:
            return None
        found = False
        saw_null = False
        for candidate in candidates:
            if candidate is None:
                saw_null = True
                continue
            if self._compare("=", value, candidate) is True:
                found = True
                break
        if found:
            result = True
        elif saw_null:
            result = None
        else:
            result = False
        if expr.negated and result is not None:
            return not result
        return result

    def _eval_Exists(self, expr: n.Exists):
        rows = self._run_subquery(expr.subquery)
        result = bool(rows)
        return not result if expr.negated else result

    def _eval_SubqueryExpr(self, expr: n.SubqueryExpr):
        rows = self._run_subquery(expr.subquery)
        if not rows:
            return None
        if len(rows) > 1:
            raise ExpressionError("scalar subquery returned several rows")
        return rows[0][0]

    def _run_subquery(self, select: n.Select) -> list[tuple]:
        if self.subquery_runner is None:
            raise ExpressionError(
                "subqueries are not available in this context")
        return self.subquery_runner(select, self.ctx)

    # -- conversions ---------------------------------------------------------------

    def _eval_Cast(self, expr: n.Cast):
        value = self.eval(expr.operand)
        if value is None:
            return None
        ctype = cdw_type_from_node(expr.type)
        field = self._provenance(expr.operand)
        try:
            if expr.format is not None:
                if ctype.base == "DATE":
                    if isinstance(value, values.Date):
                        return value
                    return values.parse_date(
                        str(value), expr.format, field=field)
                if ctype.base == "TIMESTAMP":
                    if isinstance(value, values.Timestamp):
                        return value
                    return values.parse_timestamp(str(value), field=field)
                raise SqlTranslationError(
                    f"FORMAT cast to {expr.type.base} is not supported")
            return ctype.coerce(value, field=field)
        except ExpressionError as exc:
            if exc.field is None:
                exc.field = field
            raise

    def _eval_CaseExpr(self, expr: n.CaseExpr):
        for when in expr.whens:
            if is_true(self.eval(when.condition)):
                return self.eval(when.result)
        if expr.else_result is not None:
            return self.eval(expr.else_result)
        return None

    # -- functions --------------------------------------------------------------------

    def _eval_FuncCall(self, expr: n.FuncCall):
        name = expr.name.upper()
        handler = _FUNCTIONS.get(name)
        if handler is None:
            raise ExpressionError(f"unknown function {name}")
        args = [self.eval(a) for a in expr.args]
        try:
            return handler(args)
        except ExpressionError as exc:
            if exc.field is None and expr.args:
                exc.field = self._provenance(expr.args[0])
            raise

    def _eval_Star(self, expr: n.Star):
        raise ExpressionError("'*' is only valid in a select list")


# -- scalar function library ---------------------------------------------------

def _need_str(value, fn: str) -> str:
    if isinstance(value, str):
        return value
    raise ExpressionError(f"{fn} needs a string argument, got "
                          f"{type(value).__name__}")


def _null_passthrough(fn):
    def wrapper(args):
        if args and args[0] is None:
            return None
        return fn(args)
    return wrapper


def _fn_substr(args):
    if args[0] is None:
        return None
    text = _need_str(args[0], "SUBSTR")
    start = int(args[1])
    begin = max(start - 1, 0)
    if len(args) >= 3:
        if args[2] is None:
            return None
        length = int(args[2])
        if length < 0:
            raise ExpressionError("SUBSTR length must be non-negative")
        return text[begin:begin + length]
    return text[begin:]


def _fn_coalesce(args):
    for value in args:
        if value is not None:
            return value
    return None


def _fn_nullif(args):
    a, b = args
    if a is None:
        return None
    if b is not None and a == b:
        return None
    return a


def _fn_to_date(args):
    if args[0] is None:
        return None
    fmt = args[1] if len(args) > 1 and args[1] is not None \
        else values.DEFAULT_DATE_FORMAT
    if isinstance(args[0], values.Date) \
            and not isinstance(args[0], values.Timestamp):
        return args[0]
    return values.parse_date(str(args[0]), fmt)


def _fn_to_timestamp(args):
    if args[0] is None:
        return None
    if isinstance(args[0], values.Timestamp):
        return args[0]
    return values.parse_timestamp(str(args[0]))


def _fn_mod(args):
    if args[0] is None or args[1] is None:
        return None
    if args[1] == 0:
        raise ExpressionError("MOD by zero")
    return args[0] % args[1]


def _fn_extract(args):
    part, value = args[0], args[1]
    if value is None:
        return None
    if not isinstance(value, values.Date):
        raise ExpressionError(
            f"EXTRACT needs a date/timestamp, got "
            f"{type(value).__name__}")
    part = str(part).upper()
    if part == "YEAR":
        return value.year
    if part == "MONTH":
        return value.month
    if part == "DAY":
        return value.day
    if part in ("HOUR", "MINUTE", "SECOND"):
        if not isinstance(value, values.Timestamp):
            return 0
        return {"HOUR": value.hour, "MINUTE": value.minute,
                "SECOND": value.second}[part]
    if part == "DOW":
        return value.isoweekday() % 7  # Sunday = 0
    if part == "DOY":
        return value.timetuple().tm_yday
    raise ExpressionError(f"unknown EXTRACT part {part!r}")


def _fn_round(args):
    if args[0] is None:
        return None
    digits = int(args[1]) if len(args) > 1 else 0
    value = _numeric(args[0], "ROUND")
    if isinstance(value, Decimal):
        quantum = Decimal(1).scaleb(-digits)
        return value.quantize(quantum)
    return round(float(value), digits)


_FUNCTIONS = {
    "TRIM": _null_passthrough(lambda a: _need_str(a[0], "TRIM").strip()),
    "LTRIM": _null_passthrough(lambda a: _need_str(a[0], "LTRIM").lstrip()),
    "RTRIM": _null_passthrough(lambda a: _need_str(a[0], "RTRIM").rstrip()),
    "UPPER": _null_passthrough(lambda a: _need_str(a[0], "UPPER").upper()),
    "LOWER": _null_passthrough(lambda a: _need_str(a[0], "LOWER").lower()),
    "LENGTH": _null_passthrough(lambda a: len(_need_str(a[0], "LENGTH"))),
    "CHAR_LENGTH": _null_passthrough(
        lambda a: len(_need_str(a[0], "CHAR_LENGTH"))),
    "SUBSTR": _fn_substr,
    "SUBSTRING": _fn_substr,
    "STRPOS": _null_passthrough(
        lambda a: None if a[1] is None
        else _need_str(a[0], "STRPOS").find(_need_str(a[1], "STRPOS")) + 1),
    "COALESCE": _fn_coalesce,
    "NULLIF": _fn_nullif,
    "ABS": _null_passthrough(lambda a: abs(_numeric(a[0], "ABS"))),
    "MOD": _fn_mod,
    "ROUND": _fn_round,
    "FLOOR": _null_passthrough(
        lambda a: int(__import__("math").floor(_numeric(a[0], "FLOOR")))),
    "CEIL": _null_passthrough(
        lambda a: int(__import__("math").ceil(_numeric(a[0], "CEIL")))),
    "CEILING": _null_passthrough(
        lambda a: int(__import__("math").ceil(_numeric(a[0], "CEILING")))),
    "TO_DATE": _fn_to_date,
    "TO_TIMESTAMP": _fn_to_timestamp,
    "EXTRACT": _fn_extract,
    # Legacy-dialect spellings (the reference server evaluates them raw).
    "ZEROIFNULL": lambda a: 0 if a[0] is None else a[0],
    "NULLIFZERO": lambda a: None if a[0] == 0 else a[0],
    "INDEX": _null_passthrough(
        lambda a: None if a[1] is None
        else _need_str(a[0], "INDEX").find(_need_str(a[1], "INDEX")) + 1),
    "CONCAT": lambda a: None if any(v is None for v in a)
    else "".join(_Evaluator._to_text(v) for v in a),
}
