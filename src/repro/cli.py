"""Command-line interface.

Four subcommands, mirroring how the real product is operated:

- ``run-script`` — execute a legacy ETL job script against a freshly
  built virtualized stack (Hyper-Q in front of a CDW) or against the
  reference legacy server, and print job results;
- ``transpile``  — cross compile one legacy SQL statement to the CDW
  dialect;
- ``analyze``    — qInsight-style translatability report over a corpus
  of job scripts;
- ``simulate``   — run the discrete-event acquisition model with chosen
  machine parameters;
- ``stats``      — run a job (synthetic or scripted) on an instrumented
  node and print its metrics registry (Prometheus text or JSON);
- ``trace``      — same, with span tracing enabled; exports the span
  tree as JSONL, queries a persisted trace store (``--query`` with
  ``--trace-id``/``--job``), or attributes each job's wall time to
  pipeline stages (``--critical-path``);
- ``slo``        — run an instrumented job under a declarative SLO
  profile and print every objective's burn rates;
- ``dq``         — run an instrumented job under a declarative
  data-quality rule profile and print the precheck verdicts
  (violation counts per rule, rows routed to the error table);
- ``stream``     — drive a continuous micro-batch ingestion feed
  (scheduled schema drift, durable watermark, exactly-once replay;
  see docs/STREAMING.md);
- ``flight``     — inspect a dead job's flight-recorder bundle
  (post-mortem events + spans + metrics).

Usage: ``python -m repro <subcommand> --help``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Virtualized legacy ETL pipelines (EDBT'23 repro)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run-script", help="execute a legacy ETL job script")
    run.add_argument("script", help="path to the job script")
    run.add_argument("--backend", choices=("hyperq", "legacy"),
                     default="hyperq",
                     help="virtualized CDW (default) or reference "
                          "legacy server")
    run.add_argument("--connect", default=None, metavar="HOST:PORT",
                     help="run against an already-serving node over "
                          "TCP instead of building a local stack")
    run.add_argument("--base-dir", default=None,
                     help="directory input files are read from "
                          "(default: the script's directory)")
    run.add_argument("--sessions-credits", type=int, default=16,
                     dest="credits", help="Hyper-Q credit pool size")
    run.add_argument("--show-tables", action="store_true",
                     help="dump every table after the run")
    run.add_argument("--trace-out", default=None, metavar="PATH",
                     help="enable span tracing and write the spans "
                          "as JSONL to PATH after the run")
    run.add_argument("--stats", action="store_true",
                     help="print the node's stats() snapshot as JSON "
                          "after the run")
    _add_chaos_args(run)
    _add_wlm_args(run)
    _add_dq_args(run)
    _add_perf_args(run)
    _add_logging_args(run)

    serve = sub.add_parser(
        "serve", help="serve a Hyper-Q node on a TCP port")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8855)
    serve.add_argument("--credits", type=int, default=16)
    serve.add_argument("--duration", type=float, default=None,
                       help="stop after this many seconds "
                            "(default: run until interrupted)")
    serve.add_argument("--trace", action="store_true",
                       help="enable span tracing on the served node")
    serve.add_argument("--async-frontend", action="store_true",
                       help="multiplex sessions on the asyncio reactor "
                            "front end instead of a thread per socket")
    serve.add_argument("--shards", type=int, default=0,
                       help="shard workers behind the async front end "
                            "(0 = auto from core count)")
    serve.add_argument("--max-connections", type=int, default=0,
                       help="refuse connections beyond this many "
                            "concurrent sessions (0 = unlimited)")
    _add_wlm_args(serve)
    _add_dq_args(serve)
    _add_logging_args(serve)

    transpile = sub.add_parser(
        "transpile", help="cross compile one legacy SQL statement")
    transpile.add_argument("sql", help="legacy SQL text (quote it)")
    transpile.add_argument("--bind", default=None, metavar="F1,F2",
                           help="bind host :params as staging columns "
                                "of these layout fields")

    analyze = sub.add_parser(
        "analyze", help="qInsight translatability report")
    analyze.add_argument("paths", nargs="+",
                         help="script files or directories of scripts")

    figures = sub.add_parser(
        "figures", help="regenerate the paper's figures as text tables")
    figures.add_argument("--out", default="figures-out",
                         help="output directory")
    figures.add_argument("--scale", type=float, default=1.0,
                         help="row-count multiplier for the "
                              "real-execution figures")
    figures.add_argument("--only", nargs="*", default=None,
                         help="subset of figure ids (fig7 fig8 fig9 "
                              "fig10 fig11 sessions fig7_paper_scale)")

    stats = sub.add_parser(
        "stats", help="run an instrumented job and print node metrics")
    _add_observed_job_args(stats)
    stats.add_argument("--format", choices=("prom", "json"),
                       default="prom",
                       help="Prometheus text exposition (default) or "
                            "the full stats() JSON snapshot")
    _add_logging_args(stats)

    trace = sub.add_parser(
        "trace", help="run a traced job and export its spans as JSONL")
    _add_observed_job_args(trace)
    trace.add_argument("--out", default="-", metavar="PATH",
                       help="JSONL destination (default: stdout)")
    trace.add_argument("--buffer-events", type=int, default=65536,
                       help="trace ring-buffer capacity")
    trace.add_argument("--sample-rate", type=float, default=1.0,
                       help="fraction of locally-rooted traces kept")
    trace.add_argument("--store-dir", default=None, metavar="DIR",
                       help="spill spans to a bounded JSONL trace "
                            "store in DIR (also the store --query "
                            "reads)")
    trace.add_argument("--query", action="store_true",
                       help="query an existing --store-dir instead of "
                            "running a job")
    trace.add_argument("--trace-id", default=None, metavar="HEX",
                       help="only spans of this trace")
    trace.add_argument("--job", default=None, metavar="JOB_ID",
                       help="only spans of this job's trace(s)")
    trace.add_argument("--critical-path", action="store_true",
                       help="print per-job stage attribution instead "
                            "of raw spans")
    _add_logging_args(trace)

    slo = sub.add_parser(
        "slo", help="evaluate SLO burn rates over an instrumented run")
    _add_observed_job_args(slo)
    slo.add_argument("--slo-profile", required=True, metavar="PATH",
                     help="SLO profile JSON (see docs/OBSERVABILITY.md "
                          "and examples/slo_profile.json)")
    slo.add_argument("--format", choices=("table", "json"),
                     default="table",
                     help="human-readable table (default) or JSON")
    _add_logging_args(slo)

    dq = sub.add_parser(
        "dq", help="run a data-quality precheck and print verdicts")
    _add_observed_job_args(dq)
    dq.add_argument("--dirty-fraction", type=float, default=0.0,
                    metavar="F",
                    help="fraction of synthetic rows seeded with "
                         "known violations (uses the dirty-data "
                         "workload preset; implies its rule profile "
                         "when --dq-profile is omitted)")
    dq.add_argument("--format", choices=("table", "json"),
                    default="table",
                    help="human-readable table (default) or JSON")
    _add_logging_args(dq)

    flight = sub.add_parser(
        "flight", help="inspect a job's flight-recorder bundle")
    flight.add_argument("job_id", nargs="?", default=None,
                        help="job whose bundle to print (omit to list "
                             "every bundle in --bundle-dir)")
    flight.add_argument("--bundle-dir", required=True, metavar="DIR",
                        help="directory failure bundles were dumped "
                             "into (HyperQConfig.flight_dump_dir)")
    flight.add_argument("--format", choices=("table", "json"),
                        default="table",
                        help="event timeline (default) or the raw "
                             "bundle JSON")

    stream = sub.add_parser(
        "stream", help="drive a continuous micro-batch ingestion feed")
    stream.add_argument("--batches", type=int, default=None,
                        help="micro-batches to run (default 12, or the "
                             "stream profile's value)")
    stream.add_argument("--rows", type=int, default=None,
                        help="rows per micro-batch (default 40)")
    stream.add_argument("--feed", default=None,
                        help="feed name (default orders_feed)")
    stream.add_argument("--drift-profile", default=None,
                        choices=("evolve", "route-to-error", "halt",
                                 "none"),
                        help="schema-drift policy; 'none' generates a "
                             "drift-free feed (default evolve)")
    stream.add_argument("--stream-profile", default=None, metavar="PATH",
                        help="stream profile JSON supplying feed "
                             "defaults + the gateway watermark dir "
                             "(see docs/STREAMING.md and "
                             "examples/stream_profile.json)")
    stream.add_argument("--cadence", type=float, default=None,
                        help="seconds to sleep between batches "
                             "(default 0)")
    stream.add_argument("--watermark-dir", default=None, metavar="DIR",
                        help="durable per-feed watermark directory "
                             "(default: node-managed temp dir)")
    stream.add_argument("--sessions", type=int, default=2,
                        help="parallel load sessions per batch")
    stream.add_argument("--credits", type=int, default=16,
                        help="Hyper-Q credit pool size")
    stream.add_argument("--format", choices=("table", "json"),
                        default="table",
                        help="human-readable summary (default) or JSON")
    _add_chaos_args(stream)
    _add_wlm_args(stream)
    _add_dq_args(stream)
    _add_perf_args(stream)
    _add_logging_args(stream)

    simulate = sub.add_parser(
        "simulate", help="discrete-event acquisition model")
    simulate.add_argument("--rows", type=int, default=1_000_000)
    simulate.add_argument("--row-bytes", type=int, default=500)
    simulate.add_argument("--cores", type=int, default=8)
    simulate.add_argument("--credits", type=int, default=32)
    simulate.add_argument("--sessions", type=int, default=8)
    simulate.add_argument("--memory-gb", type=float, default=64.0)
    simulate.add_argument("--compression", action="store_true")
    simulate.add_argument("--synchronous-ack", action="store_true")
    return parser


def _add_chaos_args(sub_parser) -> None:
    sub_parser.add_argument(
        "--chaos-profile", default=None, metavar="PATH",
        help="arm the fault injector with this chaos-profile JSON "
             "(see docs/RESILIENCE.md for the schema)")
    sub_parser.add_argument(
        "--chaos-seed", type=int, default=None,
        help="override the chaos profile's rng seed")


def _load_chaos_profile(args):
    """The parsed --chaos-profile JSON, or None when not given."""
    path = getattr(args, "chaos_profile", None)
    if path is None:
        return None
    import json
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _add_wlm_args(sub_parser) -> None:
    sub_parser.add_argument(
        "--wlm-profile", default=None, metavar="PATH",
        help="enable workload management with this wlm-profile JSON "
             "(resource pools + fair-share policy; see docs/WLM.md)")


def _load_wlm_profile(args):
    """The parsed --wlm-profile JSON, or None when not given."""
    path = getattr(args, "wlm_profile", None)
    if path is None:
        return None
    import json
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _add_dq_args(sub_parser) -> None:
    sub_parser.add_argument(
        "--dq-profile", default=None, metavar="PATH",
        help="enable declarative data-quality prechecks with this "
             "dq-profile JSON (rulesets + rules; see docs/DQ.md)")


def _load_dq_profile(args):
    """The parsed --dq-profile JSON, or None when not given."""
    path = getattr(args, "dq_profile", None)
    if path is None:
        return None
    import json
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _load_stream_profile(args):
    """The parsed --stream-profile JSON, or None when not given."""
    path = getattr(args, "stream_profile", None)
    if path is None:
        return None
    import json
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _add_perf_args(sub_parser) -> None:
    """Pipelining/pruning knobs shared by the job-running commands."""
    sub_parser.add_argument(
        "--eager-apply", action="store_true",
        help="pipeline DML application into acquisition: COPY and "
             "apply durable __SEQ prefixes while later chunks still "
             "convert/upload (see docs/PERFORMANCE.md)")
    sub_parser.add_argument(
        "--no-zone-map-pruning", action="store_true",
        help="disable __SEQ zone-map pruning of staging-table scans")
    sub_parser.add_argument(
        "--no-columnar", action="store_true",
        help="store CDW tables as row tuples and evaluate per-row "
             "instead of columnar storage + vectorized execution")
    sub_parser.add_argument(
        "--upload-workers", type=int, default=None, metavar="N",
        help="parallel staging-file upload workers (default: 4)")


def _perf_config_kwargs(args) -> dict:
    """HyperQConfig overrides from the _add_perf_args options."""
    kwargs = {
        "eager_apply": bool(getattr(args, "eager_apply", False)),
        "zone_map_pruning":
            not getattr(args, "no_zone_map_pruning", False),
        "columnar": not getattr(args, "no_columnar", False),
    }
    workers = getattr(args, "upload_workers", None)
    if workers is not None:
        kwargs["upload_workers"] = workers
    return kwargs


def _add_logging_args(sub_parser) -> None:
    sub_parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="enable structured logging (DEBUG/INFO/WARNING/...)")
    sub_parser.add_argument(
        "--log-json", action="store_true",
        help="emit logs as JSON lines instead of text")


def _add_observed_job_args(sub_parser) -> None:
    """Workload options shared by ``stats`` and ``trace``."""
    sub_parser.add_argument(
        "--script", default=None, metavar="PATH",
        help="legacy ETL job script to run (default: a synthetic "
             "import workload)")
    sub_parser.add_argument("--base-dir", default=None,
                            help="input-file directory for --script")
    sub_parser.add_argument("--rows", type=int, default=5000,
                            help="synthetic workload size")
    sub_parser.add_argument("--sessions", type=int, default=2,
                            help="parallel load sessions")
    sub_parser.add_argument("--credits", type=int, default=16,
                            help="Hyper-Q credit pool size")
    _add_chaos_args(sub_parser)
    _add_wlm_args(sub_parser)
    _add_dq_args(sub_parser)
    _add_perf_args(sub_parser)


def _configure_cli_logging(args) -> None:
    if getattr(args, "log_level", None) is not None:
        from repro.obs import configure_logging
        configure_logging(args.log_level, json_output=args.log_json)


def _run_observed_job(args, *, trace: bool,
                      trace_buffer_events: int = 65536,
                      workload=None, setup_sql=(),
                      **config_kwargs):
    """Run one load job on an instrumented stack; returns the node.

    The caller owns the returned node's stack via ``node._cli_stack``
    and must close it after reading metrics/spans.  ``workload``
    replaces the default synthetic workload; ``setup_sql`` statements
    run directly on the engine before the job (parent dimensions etc.).
    """
    from repro.bench.harness import build_stack, run_workload_through_hyperq
    from repro.core.config import HyperQConfig
    from repro.workloads.generator import make_workload

    config_kwargs.setdefault("dq_profile", _load_dq_profile(args))
    config = HyperQConfig(credits=args.credits, trace_enabled=trace,
                          trace_buffer_events=trace_buffer_events,
                          chaos_profile=_load_chaos_profile(args),
                          chaos_seed=getattr(args, "chaos_seed", None),
                          wlm_profile=_load_wlm_profile(args),
                          **_perf_config_kwargs(args),
                          **config_kwargs)
    stack = build_stack(config=config)
    try:
        for sql in setup_sql:
            stack.engine.execute(sql)
        if args.script:
            from repro.legacy.script import ScriptInterpreter, parse_script
            with open(args.script, "r", encoding="utf-8") as handle:
                script = parse_script(handle.read())
            base_dir = args.base_dir or os.path.dirname(
                os.path.abspath(args.script))
            ScriptInterpreter(stack.node.connect,
                              base_dir=base_dir).run(script)
        else:
            if workload is None:
                workload = make_workload(args.rows)
            run_workload_through_hyperq(stack, workload,
                                        sessions=args.sessions)
    except BaseException:
        stack.close()
        raise
    node = stack.node
    node._cli_stack = stack
    return node


def _cmd_stats(args) -> int:
    import json

    _configure_cli_logging(args)
    node = _run_observed_job(args, trace=False)
    try:
        if args.format == "prom":
            print(node.render_prometheus(), end="")
        else:
            print(json.dumps(node.stats(), indent=2, default=str))
    finally:
        node._cli_stack.close()
    return 0


def _filter_trace_records(records: list, trace_id: int | None,
                          job_id: str | None) -> list:
    """Whole-trace filter: spans of the named trace and/or of every
    trace the job participated in (matched by ``job_id`` span attrs)."""
    if trace_id is None and job_id is None:
        return list(records)
    wanted = set()
    if trace_id is not None:
        wanted.add(trace_id)
    if job_id is not None:
        wanted.update(
            r.get("trace_id") for r in records
            if r.get("attrs", {}).get("job_id") == job_id)
    return [r for r in records if r.get("trace_id") in wanted]


def _emit_trace_records(records: list, out: str,
                        critical_path: bool) -> None:
    """Print records as a critical-path table or JSONL to ``out``."""
    import json

    if critical_path:
        from repro.obs.critical_path import analyze
        jobs = analyze(records)
        if not jobs:
            print("no completed job spans in the selection")
            return
        for row in jobs:
            stages = " ".join(
                f"{name}={seconds:.3f}s"
                for name, seconds in row["stages"].items())
            print(f"job {row['job_id']} trace {row['trace_id']}: "
                  f"total={row['total_s']:.3f}s {stages} "
                  f"other={row['other_s']:.3f}s "
                  f"critical={row['critical_stage']}")
        return
    lines = "".join(json.dumps(r, sort_keys=True) + "\n"
                    for r in records)
    if out == "-":
        sys.stdout.write(lines)
    else:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(lines)
        print(f"wrote {len(records)} spans to {out}")


def _cmd_trace(args) -> int:
    _configure_cli_logging(args)
    trace_id = int(args.trace_id, 16) if args.trace_id else None
    if args.query:
        # Query an existing spilled store — no job run at all.
        from repro.obs.tracestore import TraceStore
        if not args.store_dir:
            print("error: --query needs --store-dir", file=sys.stderr)
            return 1
        store = TraceStore(args.store_dir)
        records = store.query(trace_id=trace_id, job_id=args.job)
        store.close()
        _emit_trace_records(records, args.out, args.critical_path)
        return 0
    node = _run_observed_job(
        args, trace=True, trace_buffer_events=args.buffer_events,
        trace_sample_rate=args.sample_rate,
        trace_store_dir=args.store_dir)
    try:
        tracer = node.obs.tracer
        records = _filter_trace_records(
            tracer.records(), trace_id, args.job)
        _emit_trace_records(records, args.out, args.critical_path)
        if tracer.dropped:
            print(f"warning: ring buffer dropped spans "
                  f"{tracer.dropped} time(s); raise --buffer-events",
                  file=sys.stderr)
    finally:
        node._cli_stack.close()
    return 0


def _cmd_slo(args) -> int:
    import json

    _configure_cli_logging(args)
    with open(args.slo_profile, "r", encoding="utf-8") as handle:
        profile = json.load(handle)
    node = _run_observed_job(args, trace=False, slo_profile=profile)
    try:
        snapshot = node.obs.slo.snapshot()
    finally:
        node._cli_stack.close()
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, default=str))
        return 0
    for name, result in sorted(snapshot["slos"].items()):
        burns = " ".join(
            f"burn[{window}s]={rate:.2f}"
            for window, rate in sorted(result["burn_rates"].items(),
                                       key=lambda kv: float(kv[0])))
        state = "BREACHING" if result["breaching"] else "ok"
        extra = ""
        if result["objective"] == "latency_p95":
            extra = (f" p95={result['p95_s']:.3f}s"
                     f"/{result['threshold_s']:g}s")
        print(f"{name} ({result['objective']}, pool={result['pool']}): "
              f"{state} good={result['good']} bad={result['bad']} "
              f"{burns}{extra}")
    return 0


def _cmd_dq(args) -> int:
    import json

    _configure_cli_logging(args)
    workload = None
    setup_sql = ()
    config_kwargs = {}
    if args.dirty_fraction > 0:
        from repro.workloads.generator import dirty_workload
        dirty = dirty_workload(args.rows,
                               violation_rate=args.dirty_fraction)
        workload = dirty.workload
        setup_sql = dirty.setup_sql
        if getattr(args, "dq_profile", None) is None:
            config_kwargs["dq_profile"] = dirty.dq_rules
    elif getattr(args, "dq_profile", None) is None:
        print("error: need --dq-profile (or --dirty-fraction to use "
              "the dirty preset's built-in rules)", file=sys.stderr)
        return 1
    node = _run_observed_job(args, trace=False, workload=workload,
                             setup_sql=setup_sql, **config_kwargs)
    try:
        snapshot = node.stats()["dq"]
    finally:
        node._cli_stack.close()
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, default=str))
        return 0
    from repro.qinsight import render_dq_report
    print(render_dq_report(snapshot), end="")
    return 0


def _cmd_stream(args) -> int:
    import json

    from repro.bench.harness import build_stack
    from repro.core.config import HyperQConfig
    from repro.stream import StreamRunner, StreamSession
    from repro.workloads.streamgen import stream_workload

    _configure_cli_logging(args)
    profile = _load_stream_profile(args) or {}
    batches = args.batches if args.batches is not None \
        else int(profile.get("batches", 12))
    rows = args.rows if args.rows is not None \
        else int(profile.get("rows_per_batch", 40))
    feed = args.feed or profile.get("feed", "orders_feed")
    policy = args.drift_profile or profile.get("policy", "evolve")
    cadence = args.cadence if args.cadence is not None \
        else float(profile.get("cadence_s", 0.0))
    drift_cfg = profile.get("drift") or {}
    drift_on = policy != "none" and drift_cfg.get("enabled", True)
    workload = stream_workload(
        batches=batches, rows_per_batch=rows, drift=drift_on,
        add_at=drift_cfg.get("add_at"),
        rename_at=drift_cfg.get("rename_at"),
        seed=int(profile.get("seed", 7)), feed=feed,
        table=profile.get("table", "PROD.STREAM"))
    config = HyperQConfig(
        credits=args.credits,
        stream_profile=profile or None,
        chaos_profile=_load_chaos_profile(args),
        chaos_seed=getattr(args, "chaos_seed", None),
        wlm_profile=_load_wlm_profile(args),
        dq_profile=_load_dq_profile(args),
        **_perf_config_kwargs(args))
    stack = build_stack(config=config)
    try:
        stack.engine.execute(workload.ddl)
        session = StreamSession(
            stack.node.connect, feed=feed,
            target_table=workload.target_table,
            et_table=workload.et_table, uv_table=workload.uv_table,
            policy="evolve" if policy == "none" else policy,
            watermark_dir=args.watermark_dir
            or profile.get("watermark_dir"),
            sessions=args.sessions)
        with session:
            report = StreamRunner(session, workload,
                                  cadence_s=cadence).run()
    finally:
        stack.close()
    summary = report.as_dict()
    if args.format == "json":
        print(json.dumps(summary, indent=2, default=str))
        return 0
    print(f"feed {summary['feed']}: {summary['committed']} committed, "
          f"{summary['skipped']} skipped, {summary['routed']} routed "
          f"of {summary['batches']} batches")
    print(f"rows inserted       : {summary['rows_inserted']}")
    print(f"error-table rows    : {summary['et_errors']}")
    print(f"throughput          : {summary['rows_per_second']} rows/s")
    print(f"batch latency p50   : {summary['latency_p50_s'] * 1000:.2f} ms")
    print(f"batch latency p95   : {summary['latency_p95_s'] * 1000:.2f} ms")
    print(f"drift events        : {summary['drift_events']}")
    for seq, event in report.drift:
        detail = " ".join(f"{k}={v}" for k, v in sorted(event.items())
                          if k != "kind")
        print(f"  batch {seq}: {event.get('kind', '?')} {detail}")
    return 0


def _cmd_flight(args) -> int:
    import json

    from repro.obs.flight import FlightRecorder

    if args.job_id is None:
        names = sorted(
            entry[:-len(".json")]
            for entry in os.listdir(args.bundle_dir)
            if entry.endswith(".json"))
        if not names:
            print("no flight bundles found", file=sys.stderr)
            return 1
        for name in names:
            print(name)
        return 0
    path = os.path.join(args.bundle_dir, f"{args.job_id}.json")
    bundle = FlightRecorder.load_bundle(path)
    if args.format == "json":
        print(json.dumps(bundle, indent=2, default=str))
        return 0
    print(f"job {bundle['job_id']}: {bundle.get('reason', '?')} "
          f"({len(bundle.get('events', []))} events, "
          f"{len(bundle.get('spans', []))} spans)")
    for event in bundle.get("events", []):
        fields = " ".join(
            f"{k}={v}" for k, v in sorted(event.items())
            if k not in ("ts", "event"))
        print(f"  {event['ts']:.6f} {event['event']} {fields}".rstrip())
    for event in bundle.get("node_events", []):
        fields = " ".join(
            f"{k}={v}" for k, v in sorted(event.items())
            if k not in ("ts", "event"))
        print(f"  [node] {event['ts']:.6f} {event['event']} "
              f"{fields}".rstrip())
    return 0


def _cmd_run_script(args) -> int:
    from repro.bench.harness import build_stack
    from repro.core.config import HyperQConfig
    from repro.legacy.script import ScriptInterpreter, parse_script
    from repro.legacy.server import LegacyServer

    _configure_cli_logging(args)
    with open(args.script, "r", encoding="utf-8") as handle:
        source = handle.read()
    base_dir = args.base_dir or os.path.dirname(
        os.path.abspath(args.script))
    script = parse_script(source)

    node = None
    if args.connect:
        from repro.net_tcp import connect_tcp
        host, _, port = args.connect.rpartition(":")
        connect = lambda: connect_tcp(host or "127.0.0.1", int(port))  # noqa: E731
        engine = None
        closer = lambda: None  # noqa: E731
    elif args.backend == "legacy":
        backend = LegacyServer().start()
        connect = backend.connect
        engine = backend.engine
        closer = backend.stop
    else:
        stack = build_stack(config=HyperQConfig(
            credits=args.credits,
            trace_enabled=args.trace_out is not None,
            chaos_profile=_load_chaos_profile(args),
            chaos_seed=args.chaos_seed,
            wlm_profile=_load_wlm_profile(args),
            dq_profile=_load_dq_profile(args),
            **_perf_config_kwargs(args)))
        connect = stack.node.connect
        engine = stack.engine
        closer = stack.close
        node = stack.node
    try:
        interpreter = ScriptInterpreter(connect, base_dir=base_dir)
        result = interpreter.run(script)
        for i, job in enumerate(result.imports):
            print(f"import #{i + 1}: {job.rows_inserted} inserted, "
                  f"{job.rows_updated} updated, {job.rows_deleted} "
                  f"deleted, {job.et_errors} ET errors, "
                  f"{job.uv_errors} UV errors")
        for i, job in enumerate(result.exports):
            print(f"export #{i + 1}: {job.rows_exported} rows, "
                  f"{len(job.data)} bytes")
        for name, data in interpreter.files.items():
            path = os.path.join(base_dir, name)
            if not os.path.exists(path):
                with open(path, "wb") as handle:
                    handle.write(data)
                print(f"wrote {path} ({len(data)} bytes)")
        if args.show_tables and engine is not None:
            for table in engine.catalog.names():
                rows = engine.query(f'SELECT * FROM "{table}"') \
                    if not table.isidentifier() else \
                    engine.query(f"SELECT * FROM {table}")
                print(f"\n{table} ({len(rows)} rows):")
                for row in rows[:20]:
                    print("  " + " | ".join(
                        "NULL" if v is None else str(v) for v in row))
        if node is not None and args.trace_out:
            count = node.obs.tracer.export_jsonl(args.trace_out)
            print(f"wrote {count} spans to {args.trace_out}")
        if node is not None and args.stats:
            import json
            print(json.dumps(node.stats(), indent=2, default=str))
    finally:
        closer()
    return 0


def _cmd_serve(args) -> int:
    import time

    from repro.cdw.cloudstore import CloudStore
    from repro.cdw.engine import CdwEngine
    from repro.core.config import HyperQConfig
    from repro.core.gateway import HyperQNode
    from repro.net_tcp import TcpListener

    _configure_cli_logging(args)
    store = CloudStore()
    engine = CdwEngine(store=store)
    listener = TcpListener(host=args.host, port=args.port)
    node = HyperQNode(engine, store,
                      HyperQConfig(credits=args.credits,
                                   trace_enabled=args.trace,
                                   async_frontend=args.async_frontend,
                                   gateway_shards=args.shards,
                                   max_connections=args.max_connections,
                                   wlm_profile=_load_wlm_profile(args),
                                   dq_profile=_load_dq_profile(args)),
                      listener=listener)
    node.start()
    frontend = node.stats()["gateway"].get("frontend", "threaded")
    print(f"Hyper-Q serving on {listener.host}:{listener.port} "
          f"(credits={args.credits}, frontend={frontend})", flush=True)
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:  # pragma: no cover - interactive path
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover
        pass
    finally:
        node.stop()
        stats = node.stats()
        print(f"served {stats['completed_jobs']} jobs, "
              f"{stats['rows_loaded']} rows")
    return 0


def _cmd_transpile(args) -> int:
    from repro.sqlxc import (
        bind_params_to_columns, parse_statement, render, to_cdw,
    )
    statement = parse_statement(args.sql, dialect="legacy")
    if args.bind:
        fields = [f.strip() for f in args.bind.split(",") if f.strip()]
        statement = bind_params_to_columns(statement, fields, "s")
    print(render(to_cdw(statement), "cdw"))
    return 0


def _collect_scripts(paths: list[str]) -> dict[str, str]:
    scripts: dict[str, str] = {}
    for path in paths:
        if os.path.isdir(path):
            for entry in sorted(os.listdir(path)):
                full = os.path.join(path, entry)
                if os.path.isfile(full) and entry.endswith(
                        (".etl", ".job", ".script", ".txt")):
                    with open(full, "r", encoding="utf-8") as handle:
                        scripts[entry] = handle.read()
        else:
            with open(path, "r", encoding="utf-8") as handle:
                scripts[os.path.basename(path)] = handle.read()
    return scripts


def _cmd_analyze(args) -> int:
    from repro.qinsight import WorkloadAnalyzer
    scripts = _collect_scripts(args.paths)
    if not scripts:
        print("no scripts found", file=sys.stderr)
        return 1
    report = WorkloadAnalyzer().analyze_corpus(scripts)
    print(report.render())
    return 0 if report.ok_fraction == 1.0 else 2


def _cmd_figures(args) -> int:
    from repro.bench.figures import FIGURES, regenerate_all
    only = args.only
    if only:
        unknown = [f for f in only if f not in FIGURES]
        if unknown:
            print(f"unknown figures: {', '.join(unknown)} "
                  f"(known: {', '.join(FIGURES)})", file=sys.stderr)
            return 1
    written = regenerate_all(args.out, scale=args.scale, only=only)
    for figure, path in written.items():
        print(f"{figure}: {path}")
        with open(path, "r", encoding="utf-8") as handle:
            print(handle.read())
    return 0


def _cmd_simulate(args) -> int:
    from repro.sim import SimParams, simulate_acquisition
    params = SimParams(
        rows=args.rows, row_bytes=args.row_bytes, cores=args.cores,
        credits=args.credits, sessions=args.sessions,
        memory_limit_bytes=int(args.memory_gb * (1 << 30)),
        compression=args.compression,
        synchronous_ack=args.synchronous_ack)
    report = simulate_acquisition(params)
    if report.crashed:
        print(f"CRASHED (out of memory) at t={report.crash_time:.1f}s, "
              f"peak memory {report.peak_memory_bytes / 2**30:.2f} GiB")
        return 3
    print(f"total time          : {report.total_time:.2f} s")
    print(f"acquisition time    : {report.acquisition_time:.2f} s")
    print(f"setup/teardown      : {report.setup_teardown_time:.2f} s")
    print(f"throughput          : "
          f"{report.throughput_bytes_per_s / 2**20:.1f} MiB/s")
    print(f"peak runnable tasks : {report.peak_runnable_tasks}")
    print(f"peak memory         : "
          f"{report.peak_memory_bytes / 2**20:.1f} MiB")
    print(f"blocked acquires    : {report.credit_blocked_acquires}")
    print(f"files uploaded      : {report.files_uploaded}")
    return 0


_COMMANDS = {
    "run-script": _cmd_run_script,
    "serve": _cmd_serve,
    "transpile": _cmd_transpile,
    "analyze": _cmd_analyze,
    "figures": _cmd_figures,
    "simulate": _cmd_simulate,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
    "slo": _cmd_slo,
    "dq": _cmd_dq,
    "stream": _cmd_stream,
    "flight": _cmd_flight,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        # bad option values surfaced by config/logging validation
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
