"""Workload management for Hyper-Q nodes (``repro.wlm``).

Multi-tenant nodes share one credit pool and one apply executor; this
package keeps concurrent tenants from trampling each other on those
shared resources.  It is three small layers:

- :mod:`repro.wlm.profile` — the ``wlm_profile`` JSON: named resource
  pools with weights, concurrency slots, bounded admission queues, and
  glob ``match`` clauses that classify sessions by tenant/user/target;
- :mod:`repro.wlm.arbiter` — the weighted fair-share credit arbiter
  wrapped around :class:`~repro.core.credits.CreditManager`
  (work-conserving: idle pools' shares flow to busy ones);
- :mod:`repro.wlm.manager` — the :class:`WorkloadManager` the gateway
  consults on every BEGIN_LOAD / BEGIN_EXPORT: admit into a slot, queue
  briefly, or shed with a retryable ``WLM_THROTTLED`` error carrying a
  retry-after hint.  In-flight jobs are never aborted.

See ``docs/WLM.md`` for the operator-facing guide and
``examples/wlm_profile.json`` for a starting profile.
"""

from repro.wlm.arbiter import FairShareCreditArbiter, PoolCredits
from repro.wlm.manager import AdmissionTicket, WorkloadManager
from repro.wlm.profile import (DEFAULT_POOL, MATCH_KEYS, POLICIES,
                               PoolSpec, WlmProfile)

__all__ = [
    "AdmissionTicket",
    "DEFAULT_POOL",
    "FairShareCreditArbiter",
    "MATCH_KEYS",
    "POLICIES",
    "PoolCredits",
    "PoolSpec",
    "WlmProfile",
    "WorkloadManager",
]
