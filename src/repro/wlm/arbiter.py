"""The weighted fair-share credit arbiter.

Section 5 hangs every concurrent job on a node off one shared
:class:`~repro.core.credits.CreditManager`; without arbitration the
pool drains first-come-first-served, so one tenant running wide loads
(many data sessions, each holding a credit per in-flight chunk) starves
everyone else.  The :class:`FairShareCreditArbiter` sits in front of
the manager and apportions *in-flight credits* across resource pools by
weight:

- each pool's instantaneous fair share is
  ``pool_size * weight / sum(weights of active pools)`` where a pool is
  *active* while it holds credits or has sessions waiting — idle pools
  contribute nothing, so their capacity flows to busy pools
  (**work-conserving**);
- a pool below its share is granted a credit as soon as one is free;
- a pool at/above its share may still take more, but only while no
  *other* pool is deprived (has waiters and sits below its own share) —
  that single rule is what turns FIFO starvation into weighted fairness
  without ever idling credits.

The arbiter only decides *who* gets the next token; the wrapped
``CreditManager`` still mints, tracks, and conserves the tokens
themselves, so ``check_conservation()`` keeps working unchanged.  With
``policy="fifo"`` the arbiter degrades to a pass-through that merely
keeps per-pool accounting — the measured baseline of the fairness
benchmark (``benchmarks/test_wlm_fairness.py``).
"""

from __future__ import annotations

import threading
import time

from repro.core.credits import Credit, CreditManager
from repro.errors import BackPressureTimeout
from repro.obs import NULL_OBS, Observability

__all__ = ["FairShareCreditArbiter", "PoolCredits"]


class FairShareCreditArbiter:
    """Apportions one CreditManager's tokens across pools by weight."""

    def __init__(self, manager: CreditManager,
                 weights: dict[str, float],
                 policy: str = "fair",
                 obs: Observability = NULL_OBS):
        if not weights:
            raise ValueError("arbiter needs at least one pool")
        if any(w <= 0 for w in weights.values()):
            raise ValueError("pool weights must be > 0")
        self.manager = manager
        self.policy = policy
        self.weights = dict(weights)
        self.obs = obs
        self._cond = threading.Condition()
        self._in_flight = {name: 0 for name in weights}
        self._waiters = {name: 0 for name in weights}
        # -- per-pool statistics (under _cond) --
        self.grants = {name: 0 for name in weights}
        #: grants made while some *other* pool also had waiters — the
        #: contention window where the scheduling policy is visible.
        self.contended_grants = {name: 0 for name in weights}
        self.wait_s = {name: 0.0 for name in weights}

    # -- scheduling decision (under _cond) ---------------------------------

    def _share(self, pool: str) -> float:
        """``pool``'s instantaneous fair share of the credit pool.

        Computed over *active* pools only (work conservation) and
        floored at one credit so every active pool can always make
        progress.
        """
        active_weight = sum(
            w for name, w in self.weights.items()
            if self._in_flight[name] > 0 or self._waiters[name] > 0
            or name == pool)
        share = self.manager.pool_size * self.weights[pool] / active_weight
        return max(share, 1.0)

    def _may_grant(self, pool: str) -> bool:
        """May ``pool`` take the next credit right now?"""
        if sum(self._in_flight.values()) >= self.manager.pool_size:
            return False
        if self.policy == "fifo":
            return True
        if self._in_flight[pool] < self._share(pool):
            return True
        # Work-conserving overshoot: exceed the share only while no
        # other pool is deprived (waiting below its own share).
        for other, waiting in self._waiters.items():
            if other == pool or waiting == 0:
                continue
            if self._in_flight[other] < self._share(other):
                return False
        return True

    # -- token operations ---------------------------------------------------

    def acquire(self, pool: str) -> Credit:
        """Take a credit on behalf of ``pool``; blocks while over-share.

        Raises :class:`~repro.errors.BackPressureTimeout` after the
        wrapped manager's ``timeout_s``, exactly like a direct
        ``CreditManager.acquire``.
        """
        timeout_s = self.manager.timeout_s
        deadline = (time.monotonic() + timeout_s
                    if timeout_s is not None else None)
        started = time.monotonic()
        with self._cond:
            self._waiters[pool] += 1
            try:
                while not self._may_grant(pool):
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise BackPressureTimeout(
                                f"pool {pool!r}: no credit within "
                                f"{timeout_s}s "
                                f"(pool_size={self.manager.pool_size}, "
                                f"share={self._share(pool):.1f})")
                    self._cond.wait(timeout=remaining)
                self._in_flight[pool] += 1
                self.grants[pool] += 1
                contended = any(
                    w > 0 for name, w in self._waiters.items()
                    if name != pool)
                if contended:
                    self.contended_grants[pool] += 1
                waited = time.monotonic() - started
                self.wait_s[pool] += waited
            finally:
                self._waiters[pool] -= 1
                # A grant (or an abandoned wait) changes the picture
                # for *other* pools — e.g. this pool may no longer be
                # deprived — so let every waiter re-evaluate.
                self._cond.notify_all()
        # Guaranteed not to block: grants never exceed pool_size, the
        # in-flight count is raised before the token is taken, and
        # releases return the token before lowering the count.  Should
        # the manager raise anyway (a leaked credit outside the arbiter
        # breaks the invariant and its timeout becomes reachable), the
        # grant must be rolled back or the pool's perceived capacity
        # shrinks permanently.
        try:
            credit = self.manager.acquire()
        except BaseException:
            with self._cond:
                self._in_flight[pool] -= 1
                self._cond.notify_all()
            raise
        self.obs.wlm_credit_grants.labels(
            pool=pool, contended="yes" if contended else "no").inc()
        self.obs.wlm_credit_wait_seconds.labels(pool=pool).observe(waited)
        return credit

    def release(self, credit: Credit, pool: str) -> None:
        """Return ``pool``'s credit and wake the next deserving waiter."""
        self.manager.release(credit)
        with self._cond:
            self._in_flight[pool] -= 1
            self._cond.notify_all()

    # -- introspection -------------------------------------------------------

    def in_flight(self, pool: str) -> int:
        """Credits ``pool`` currently holds."""
        with self._cond:
            return self._in_flight[pool]

    def waiters(self, pool: str) -> int:
        """Sessions of ``pool`` currently blocked waiting for a credit."""
        with self._cond:
            return self._waiters[pool]

    def view(self, pool: str) -> "PoolCredits":
        """A pool-bound facade duck-typing ``CreditManager`` acquire/release."""
        if pool not in self.weights:
            raise ValueError(f"unknown pool {pool!r}")
        return PoolCredits(self, pool)

    def snapshot(self) -> dict:
        """Per-pool scheduling statistics for ``stats()["wlm"]``."""
        with self._cond:
            return {
                name: {
                    "weight": self.weights[name],
                    "in_flight": self._in_flight[name],
                    "waiters": self._waiters[name],
                    "grants": self.grants[name],
                    "contended_grants": self.contended_grants[name],
                    "wait_s": round(self.wait_s[name], 6),
                }
                for name in sorted(self.weights)
            }


class PoolCredits:
    """A pool-bound view of the arbiter with the CreditManager surface.

    The acquisition pipeline only ever calls ``acquire()`` and
    ``release(credit)``, so binding the pool here means
    :class:`~repro.core.pipeline.AcquisitionPipeline` needs no
    workload-management awareness at all — a job admitted into pool P
    simply receives a ``PoolCredits`` instead of the raw manager.
    """

    __slots__ = ("arbiter", "pool")

    def __init__(self, arbiter: FairShareCreditArbiter, pool: str):
        self.arbiter = arbiter
        self.pool = pool

    def acquire(self) -> Credit:
        """Take a credit, arbitrated under this view's pool."""
        return self.arbiter.acquire(self.pool)

    def release(self, credit: Credit) -> None:
        """Return a credit under this view's pool."""
        return self.arbiter.release(credit, self.pool)
