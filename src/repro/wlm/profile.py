"""Workload-management profiles: resource pools and session classification.

A *wlm profile* is a JSON document (loaded exactly like the resilience
layer's ``chaos_profile``) that partitions the sessions hitting one
Hyper-Q node into named **resource pools**::

    {
      "policy": "fair",
      "default_pool": "default",
      "pools": [
        {"name": "interactive", "weight": 3, "max_concurrency": 4,
         "queue_limit": 8, "queue_timeout_s": 10,
         "match": {"tenant": "bi-*"}},
        {"name": "batch", "weight": 1, "max_concurrency": 2,
         "queue_limit": 4, "queue_timeout_s": 30,
         "match": {"user": "etl*", "target": "PROD.*"}}
      ]
    }

Each pool carries

- a ``weight`` — its share of the node's credit pool under the
  weighted fair-share arbiter (:mod:`repro.wlm.arbiter`);
- ``max_concurrency`` — how many admitted jobs may run at once;
- a bounded admission queue (``queue_limit`` waiters, each waiting at
  most ``queue_timeout_s``) — overflow and timeouts are *shed* with a
  retryable ``WLM_THROTTLED`` error instead of blocking forever;
- a ``match`` clause of glob patterns over session attributes
  (``tenant``, ``user``, ``target``).  Pools are tried in declaration
  order; the first match wins, and unmatched sessions land in the
  default pool.

Profiles are validated eagerly at node construction so configuration
mistakes surface where the operator can see them, not mid-load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from repro.errors import WlmThrottled

__all__ = ["MATCH_KEYS", "POLICIES", "PoolSpec", "WlmProfile"]

#: session attributes a pool's ``match`` clause may test.
MATCH_KEYS = ("tenant", "user", "target")

#: credit-arbiter policies: weighted fair share, or the FIFO baseline
#: (pools classified and admitted, but credits granted first-come).
POLICIES = ("fair", "fifo")

#: the pool unmatched sessions fall into (auto-created when the profile
#: does not declare it).
DEFAULT_POOL = "default"


@dataclass(frozen=True)
class PoolSpec:
    """One resource pool: weight, concurrency slots, admission queue."""

    name: str
    #: fair-share weight of the node's credit pool (relative).
    weight: float = 1.0
    #: concurrent admitted jobs (load or export) in this pool.
    max_concurrency: int = 8
    #: admissions allowed to queue when every slot is occupied;
    #: arrivals beyond this are shed immediately (``queue_full``).
    queue_limit: int = 16
    #: how long one queued admission waits for a slot before being shed
    #: (``queue_timeout``); None waits forever (not recommended).
    queue_timeout_s: float | None = 10.0
    #: base retry-after hint returned with a throttle; scaled by the
    #: instantaneous queue depth so backed-up pools push clients out
    #: further.
    retry_after_s: float = 0.25
    #: glob patterns over session attributes (see :data:`MATCH_KEYS`);
    #: every present key must match for the pool to claim the session.
    match: dict = field(default_factory=dict)

    def __post_init__(self):
        """Validate the pool right where the profile author sees it."""
        if not self.name or not isinstance(self.name, str):
            raise ValueError("pool needs a non-empty string name")
        if self.weight <= 0:
            raise ValueError(
                f"pool {self.name!r}: weight must be > 0")
        if self.max_concurrency < 1:
            raise ValueError(
                f"pool {self.name!r}: max_concurrency must be >= 1")
        if self.queue_limit < 0:
            raise ValueError(
                f"pool {self.name!r}: queue_limit cannot be negative")
        if self.queue_timeout_s is not None and self.queue_timeout_s < 0:
            raise ValueError(
                f"pool {self.name!r}: queue_timeout_s cannot be "
                "negative")
        if self.retry_after_s < 0:
            raise ValueError(
                f"pool {self.name!r}: retry_after_s cannot be negative")
        if not isinstance(self.match, dict):
            raise ValueError(f"pool {self.name!r}: match must be a dict")
        unknown = set(self.match) - set(MATCH_KEYS)
        if unknown:
            raise ValueError(
                f"pool {self.name!r}: unknown match keys "
                f"{', '.join(sorted(unknown))} "
                f"(known: {', '.join(MATCH_KEYS)})")

    @classmethod
    def from_dict(cls, payload: dict) -> "PoolSpec":
        """Build a pool spec from one wlm-profile JSON object."""
        known = {"name", "weight", "max_concurrency", "queue_limit",
                 "queue_timeout_s", "retry_after_s", "match"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown wlm-pool keys: {', '.join(sorted(unknown))}")
        if "name" not in payload:
            raise ValueError("wlm pool missing 'name'")
        return cls(**payload)

    def matches(self, attrs: dict) -> bool:
        """Does this pool claim a session with these attributes?

        An empty ``match`` clause claims everything (useful as an
        explicit catch-all pool); otherwise every configured pattern
        must glob-match the corresponding attribute (missing attributes
        compare as the empty string).
        """
        for key, pattern in self.match.items():
            if not fnmatchcase(str(attrs.get(key) or ""), str(pattern)):
                return False
        return True

    def throttle_hint_s(self, queued: int) -> float:
        """Retry-after hint for a shed admission, scaled by queue depth."""
        return round(min(self.retry_after_s * (queued + 1),
                         WlmThrottled.MAX_RETRY_AFTER_S), 3)


class WlmProfile:
    """A validated workload-management profile for one Hyper-Q node."""

    def __init__(self, pools: list[PoolSpec],
                 default_pool: str = DEFAULT_POOL,
                 policy: str = "fair"):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown wlm policy {policy!r} "
                f"(known: {', '.join(POLICIES)})")
        names = [p.name for p in pools]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate pool names in wlm profile: "
                             f"{sorted(set(n for n in names if names.count(n) > 1))}")
        self.policy = policy
        self.default_pool = default_pool
        self.pools: dict[str, PoolSpec] = {p.name: p for p in pools}
        #: classification order — declaration order, default last.
        self._ordered = list(pools)
        if default_pool not in self.pools:
            fallback = PoolSpec(name=default_pool)
            self.pools[default_pool] = fallback
            self._ordered.append(fallback)

    @classmethod
    def from_profile(cls, profile: dict | list | None) -> "WlmProfile | None":
        """Build a profile from a wlm-profile JSON value.

        Accepts either a bare list of pool objects or a dict of the
        form ``{"policy": ..., "default_pool": ..., "pools": [...]}``;
        ``None`` means workload management is disabled entirely.
        """
        if profile is None:
            return None
        if isinstance(profile, list):
            pool_dicts, default, policy = profile, DEFAULT_POOL, "fair"
        elif isinstance(profile, dict):
            unknown = set(profile) - {"policy", "default_pool", "pools"}
            if unknown:
                raise ValueError(
                    "unknown wlm-profile keys: "
                    f"{', '.join(sorted(unknown))}")
            pool_dicts = profile.get("pools", [])
            default = profile.get("default_pool", DEFAULT_POOL)
            policy = profile.get("policy", "fair")
        else:
            raise ValueError(
                f"wlm profile must be a list or dict, "
                f"not {type(profile).__name__}")
        pools = [PoolSpec.from_dict(d) for d in pool_dicts]
        return cls(pools, default_pool=default, policy=policy)

    def classify(self, **attrs) -> str:
        """Name of the first pool claiming a session with ``attrs``.

        Pools are tried in declaration order and the first match wins.
        A pool with an empty ``match`` clause claims every session (a
        deliberate catch-all); an auto-created default pool is ordered
        last so it only catches what no declared pool claimed.
        """
        for spec in self._ordered:
            if spec.matches(attrs):
                return spec.name
        return self.default_pool

    def __len__(self) -> int:
        """Number of pools, the auto-created default included."""
        return len(self.pools)
