"""The per-node workload manager: classification, admission, shedding.

One :class:`WorkloadManager` sits between the gateway's connection
handlers and the node's shared credit/apply resources (cf. Hive LLAP's
workload management: resource plans, pools, query admission).  Its job
is to make overload a *first-class, recoverable* condition instead of a
handler thread blocking indefinitely in ``CreditManager.acquire()``:

1. **Classify** — every BEGIN_LOAD / BEGIN_EXPORT is mapped to a
   resource pool by its session attributes (tenant, user, target table)
   via the :class:`~repro.wlm.profile.WlmProfile`.
2. **Admit** — each pool holds ``max_concurrency`` slots and a bounded
   queue.  A free slot admits immediately; a full queue sheds the
   arrival *now* (``queue_full``); a queued arrival that outlives the
   pool's ``queue_timeout_s`` is shed late (``queue_timeout``).  Both
   raise :class:`~repro.errors.WlmThrottled`, which travels to the
   legacy client as a retryable ``WLM_THROTTLED`` protocol error with a
   retry-after hint.  In-flight jobs are never aborted.
3. **Arbitrate** — admitted jobs draw credits through the
   :class:`~repro.wlm.arbiter.FairShareCreditArbiter`, so one pool's
   wide load cannot starve another's chunks out of the pipeline.

A node built without a ``wlm_profile`` gets a *disabled* manager:
``admit`` returns ``None``, ``credit_source`` hands back the raw
manager, and the node behaves byte-for-byte as before.
"""

from __future__ import annotations

import threading
import time

from repro.core.credits import CreditManager
from repro.errors import WlmThrottled
from repro.obs import NULL_OBS, Observability, get_logger
from repro.wlm.arbiter import FairShareCreditArbiter
from repro.wlm.profile import PoolSpec, WlmProfile

__all__ = ["AdmissionTicket", "WorkloadManager"]

log = get_logger("wlm")


class AdmissionTicket:
    """Proof of one admitted job; releasing it frees the pool slot."""

    __slots__ = ("pool", "job_id", "kind", "admitted_at", "_released")

    def __init__(self, pool: str, job_id: str, kind: str):
        self.pool = pool
        self.job_id = job_id
        self.kind = kind
        self.admitted_at = time.monotonic()
        self._released = False


class _PoolState:
    """Mutable per-pool admission state (guarded by the manager lock)."""

    __slots__ = ("spec", "occupied", "queued", "admitted", "throttled",
                 "timeouts", "admission_wait_s", "max_wait_s")

    def __init__(self, spec: PoolSpec):
        self.spec = spec
        self.occupied = 0
        self.queued = 0
        self.admitted = 0
        self.throttled = 0
        self.timeouts = 0
        self.admission_wait_s = 0.0
        self.max_wait_s = 0.0


class WorkloadManager:
    """Admission control + fair-share credit arbitration for one node."""

    def __init__(self, profile: WlmProfile | None,
                 credits: CreditManager,
                 obs: Observability = NULL_OBS):
        self.profile = profile
        self.credits = credits
        self.obs = obs
        self._cond = threading.Condition()
        self._pools: dict[str, _PoolState] = {}
        self.arbiter: FairShareCreditArbiter | None = None
        if profile is not None:
            self._pools = {name: _PoolState(spec)
                           for name, spec in profile.pools.items()}
            self.arbiter = FairShareCreditArbiter(
                credits,
                {name: spec.weight
                 for name, spec in profile.pools.items()},
                policy=profile.policy, obs=obs)
            for name in self._pools:
                obs.wlm_queue_depth.labels(pool=name).set(0)
                obs.wlm_slots_occupied.labels(pool=name).set(0)

    @classmethod
    def from_config(cls, config, credits: CreditManager,
                    obs: Observability = NULL_OBS) -> "WorkloadManager":
        """Build the node's manager from ``HyperQConfig.wlm_profile``."""
        return cls(WlmProfile.from_profile(config.wlm_profile),
                   credits, obs=obs)

    @property
    def enabled(self) -> bool:
        """Whether a profile is armed (disabled managers pass through)."""
        return self.profile is not None

    # -- classification ------------------------------------------------------

    def classify(self, **attrs) -> str:
        """Resource pool for a session with these attributes."""
        if self.profile is None:
            return ""
        return self.profile.classify(**attrs)

    def credit_source(self, pool: str):
        """What the admitted job's pipeline should draw credits from.

        The pool-bound arbiter view when enabled, the raw shared
        ``CreditManager`` otherwise — both expose the same
        ``acquire()`` / ``release(credit)`` surface.
        """
        if self.arbiter is None or not pool:
            return self.credits
        return self.arbiter.view(pool)

    # -- admission -----------------------------------------------------------

    def admit(self, pool: str, job_id: str,
              kind: str = "load", parent_span=None) -> AdmissionTicket | None:
        """Admit one job into ``pool`` or shed it with ``WlmThrottled``.

        Returns ``None`` when workload management is disabled.  Blocks
        at most the pool's ``queue_timeout_s`` (and only when a queue
        position is free); emits the ``wlm.admit`` span and the
        admitted/throttled/timeout counters either way.
        """
        if self.profile is None:
            return None
        state = self._pools[pool]
        spec = state.spec
        span = self.obs.tracer.span(
            "wlm.admit", parent=parent_span, pool=pool, job_id=job_id,
            kind=kind)
        started = time.monotonic()
        try:
            ticket = self._admit_locked(pool, state, spec, job_id, kind)
        except WlmThrottled as exc:
            span.set_attribute("reason", exc.reason)
            span.set_attribute("retry_after_s", exc.retry_after_s)
            span.end("error")
            flight = getattr(self.obs, "flight", None)
            if flight is not None:
                flight.record(job_id, "wlm_throttled", pool=pool,
                              reason=exc.reason,
                              retry_after_s=round(exc.retry_after_s, 4))
            slo = getattr(self.obs, "slo", None)
            if slo is not None:
                slo.record_admission(pool, admitted=False)
            raise
        waited = time.monotonic() - started
        span.set_attribute("wait_s", round(waited, 6))
        span.end()
        flight = getattr(self.obs, "flight", None)
        if flight is not None:
            flight.record(job_id, "wlm_admitted", pool=pool, kind=kind,
                          wait_s=round(waited, 4))
        slo = getattr(self.obs, "slo", None)
        if slo is not None:
            slo.record_admission(pool, admitted=True)
        self.obs.wlm_admitted.labels(pool=pool).inc()
        self.obs.wlm_admission_wait_seconds.labels(pool=pool).observe(
            waited)
        with self._cond:
            state.admitted += 1
            state.admission_wait_s += waited
            state.max_wait_s = max(state.max_wait_s, waited)
        log.debug("admitted %s job %s into pool %s (waited %.3fs)",
                  kind, job_id, pool, waited)
        return ticket

    def _admit_locked(self, pool: str, state: _PoolState, spec: PoolSpec,
                      job_id: str, kind: str) -> AdmissionTicket:
        """The admission state machine proper (throttles raise)."""
        with self._cond:
            if state.occupied < spec.max_concurrency:
                return self._take_slot(pool, state, job_id, kind)
            if state.queued >= spec.queue_limit:
                self._shed(pool, state, "queue_full",
                           f"pool {pool!r} admission queue full "
                           f"({state.queued}/{spec.queue_limit} queued, "
                           f"{state.occupied} running)")
            deadline = (time.monotonic() + spec.queue_timeout_s
                        if spec.queue_timeout_s is not None else None)
            state.queued += 1
            self.obs.wlm_queue_depth.labels(pool=pool).set(state.queued)
            try:
                while state.occupied >= spec.max_concurrency:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            state.timeouts += 1
                            self.obs.wlm_timeouts.labels(pool=pool).inc()
                            self._shed(
                                pool, state, "queue_timeout",
                                f"pool {pool!r}: no slot within "
                                f"{spec.queue_timeout_s}s "
                                f"({state.occupied} running)")
                    self._cond.wait(timeout=remaining)
                return self._take_slot(pool, state, job_id, kind)
            finally:
                state.queued -= 1
                self.obs.wlm_queue_depth.labels(pool=pool).set(
                    state.queued)

    def _take_slot(self, pool: str, state: _PoolState,
                   job_id: str, kind: str) -> AdmissionTicket:
        """Occupy one slot (caller holds the lock)."""
        state.occupied += 1
        self.obs.wlm_slots_occupied.labels(pool=pool).set(state.occupied)
        return AdmissionTicket(pool, job_id, kind)

    def _shed(self, pool: str, state: _PoolState, reason: str,
              message: str) -> None:
        """Raise the throttle for one shed admission (lock held)."""
        state.throttled += 1
        hint = state.spec.throttle_hint_s(state.queued)
        self.obs.wlm_throttled.labels(pool=pool, reason=reason).inc()
        log.warning("shed %s admission: %s (retry in %.3fs)",
                    pool, message, hint,
                    extra={"pool": pool, "reason": reason})
        raise WlmThrottled(message, pool=pool, reason=reason,
                           retry_after_s=hint)

    def release(self, ticket: AdmissionTicket | None) -> None:
        """Free an admitted job's slot (idempotent, ``None``-tolerant)."""
        if ticket is None or ticket._released:
            return
        ticket._released = True
        pool = ticket.pool
        with self._cond:
            state = self._pools[pool]
            state.occupied -= 1
            self.obs.wlm_slots_occupied.labels(pool=pool).set(
                state.occupied)
            self._cond.notify_all()
        self.obs.wlm_job_seconds.labels(pool=pool).observe(
            time.monotonic() - ticket.admitted_at)

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> dict:
        """The ``stats()["wlm"]`` payload: per-pool admission + credits."""
        if self.profile is None:
            return {"enabled": False, "pools": {}}
        credit_stats = (self.arbiter.snapshot()
                        if self.arbiter is not None else {})
        with self._cond:
            pools = {}
            for name, state in sorted(self._pools.items()):
                spec = state.spec
                pools[name] = {
                    "weight": spec.weight,
                    "max_concurrency": spec.max_concurrency,
                    "occupied_slots": state.occupied,
                    "queue_depth": state.queued,
                    "queue_limit": spec.queue_limit,
                    "queue_timeout_s": spec.queue_timeout_s,
                    "admitted": state.admitted,
                    "throttled": state.throttled,
                    "queue_timeouts": state.timeouts,
                    "admission_wait_s": round(state.admission_wait_s, 6),
                    "max_admission_wait_s": round(state.max_wait_s, 6),
                    "credits": credit_stats.get(name, {}),
                }
        return {
            "enabled": True,
            "policy": self.profile.policy,
            "default_pool": self.profile.default_pool,
            "pools": pools,
        }
