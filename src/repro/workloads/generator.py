"""Seeded generation of ETL input files with controllable shape.

A :class:`Workload` bundles everything one load job needs: the input file
bytes (VARTEXT), the record layout, the target-table DDL, and the job DML
(in the legacy dialect, with host variables).  Generation is fully
deterministic given the seed.

Error injection (Figure 11):

- ``error_rate`` — fraction of rows whose JOIN_DATE is garbage, failing
  the ``CAST .. AS DATE FORMAT`` during the application phase;
- ``dup_rate`` — fraction of rows that duplicate an earlier REC_ID,
  violating the target's uniqueness constraint;
- ``field_count_error_rate`` — fraction of rows with a missing field,
  rejected during acquisition.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field

from repro.legacy.datafmt import FormatSpec
from repro.legacy.types import FieldDef, Layout, parse_type

__all__ = ["Workload", "TenantWorkload", "DirtyWorkload", "make_workload",
           "wide_workload", "multi_tenant_workloads", "dirty_workload"]

_ALPHABET = string.ascii_uppercase + string.ascii_lowercase

#: bytes of per-row framing overhead outside the PAYLOAD field
#: (REC_ID ~8 + NAME ~12 + JOIN_DATE 10 + three delimiters + newline).
_BASE_ROW_OVERHEAD = 36


@dataclass
class Workload:
    """One generated load job."""

    name: str
    data: bytes
    layout: Layout
    target_table: str
    et_table: str
    uv_table: str
    ddl: str
    apply_sql: str
    format_spec: FormatSpec = field(
        default_factory=lambda: FormatSpec("vartext", "|"))
    rows: int = 0
    expected_good_rows: int = 0
    expected_date_errors: int = 0
    expected_dup_errors: int = 0
    expected_field_count_errors: int = 0

    @property
    def bytes_total(self) -> int:
        return len(self.data)

    @property
    def avg_row_bytes(self) -> float:
        return len(self.data) / max(self.rows, 1)


_POOL_SIZE = 8192


def _make_pool(rng: random.Random) -> str:
    """A reusable slab of random characters; payloads are slices of it.

    Slicing a pre-generated pool is ~100x faster than per-character
    generation and keeps payloads incompressible enough for the
    compression ablation to stay honest.
    """
    return "".join(rng.choices(_ALPHABET, k=_POOL_SIZE))


def _payload(rng: random.Random, pool: str, width: int) -> str:
    if width <= 0:
        return ""
    if width >= len(pool):
        repeats = width // len(pool) + 1
        return (pool * repeats)[:width]
    offset = rng.randrange(len(pool) - width)
    return pool[offset:offset + width]


def make_workload(rows: int, row_bytes: int = 500, seed: int = 7,
                  error_rate: float = 0.0, dup_rate: float = 0.0,
                  field_count_error_rate: float = 0.0,
                  table: str = "PROD.FACT",
                  name: str = "load") -> Workload:
    """Generate the standard 4-column load used by Figures 7, 8 and 11.

    ``row_bytes`` controls the *average* encoded row width by sizing the
    PAYLOAD filler column.
    """
    if rows < 1:
        raise ValueError("rows must be positive")
    payload_width = max(row_bytes - _BASE_ROW_OVERHEAD, 4)
    rng = random.Random(seed)
    pool = _make_pool(rng)
    lines: list[str] = []
    date_errors = dup_errors = field_errors = 0
    for i in range(rows):
        rec_id = f"R{i:07d}"
        roll = rng.random()
        if dup_rate > 0 and roll < dup_rate and i > 0:
            rec_id = f"R{rng.randrange(i):07d}"
            dup_errors += 1
        name_value = f"name-{rng.randrange(10_000):05d}"
        year = 2000 + rng.randrange(25)
        month = 1 + rng.randrange(12)
        day = 1 + rng.randrange(28)
        date_value = f"{year:04d}-{month:02d}-{day:02d}"
        if error_rate > 0 and rng.random() < error_rate:
            date_value = "not-a-date"
            date_errors += 1
        payload = _payload(rng, pool, payload_width)
        if field_count_error_rate > 0 \
                and rng.random() < field_count_error_rate:
            lines.append(f"{rec_id}|{name_value}|{date_value}")
            field_errors += 1
            continue
        lines.append(f"{rec_id}|{name_value}|{date_value}|{payload}")
    data = ("\n".join(lines) + "\n").encode("utf-8")

    layout = Layout(f"{name}_layout", [
        FieldDef("REC_ID", parse_type("varchar(12)")),
        FieldDef("REC_NAME", parse_type("varchar(40)")),
        FieldDef("JOIN_DATE", parse_type("varchar(10)")),
        FieldDef("PAYLOAD", parse_type(f"varchar({payload_width + 8})")),
    ])
    ddl = (
        f"CREATE TABLE {table} ("
        "REC_ID VARCHAR(12) NOT NULL, "
        "REC_NAME VARCHAR(40), "
        "JOIN_DATE DATE, "
        f"PAYLOAD VARCHAR({payload_width + 8}), "
        "UNIQUE (REC_ID))"
    )
    apply_sql = (
        f"insert into {table} values ("
        "trim(:REC_ID), trim(:REC_NAME), "
        "cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'), :PAYLOAD)"
    )
    # A duplicated row that also has a broken date fails on conversion
    # first; the generator avoids that overlap by construction only
    # statistically, so expected numbers are advisory for large runs and
    # exact when rates do not overlap.
    good = rows - date_errors - dup_errors - field_errors
    return Workload(
        name=name, data=data, layout=layout, target_table=table,
        et_table=f"{table}_ET", uv_table=f"{table}_UV",
        ddl=ddl, apply_sql=apply_sql, rows=rows,
        expected_good_rows=good,
        expected_date_errors=date_errors,
        expected_dup_errors=dup_errors,
        expected_field_count_errors=field_errors,
    )


#: parent-dimension values clean rows draw their REGION from.
_DIRTY_REGIONS = ("AA", "BB", "CC", "DD")

#: violation kinds the dirty preset can seed, in profile order.
_DIRTY_KINDS = ("not_null", "range", "regex", "unique", "referential")


@dataclass
class DirtyWorkload:
    """A load job seeded with known data-quality violations.

    Wraps the generated :class:`Workload` with the ground truth the dq
    differential tests and benchmarks need: which 1-based row numbers
    violate which rule (``manifest``), the matching rule-profile
    fragment (``dq_rules``, ready for ``HyperQConfig.dq_profile``), and
    the DDL/DML that seeds the referential parent dimension
    (``setup_sql``, CDW dialect — run it on the engine before the job).
    """

    workload: Workload
    #: rule_id -> sorted tuple of violating 1-based row numbers.
    manifest: dict[str, tuple[int, ...]] = field(default_factory=dict)
    #: rule dicts for the profile loader, in routing-priority order.
    dq_rules: list = field(default_factory=list)
    #: statements creating/filling the REGION parent dimension.
    setup_sql: tuple[str, ...] = ()

    @property
    def violating_rownums(self) -> tuple[int, ...]:
        """Distinct violating row numbers across every rule, sorted."""
        dirty: set[int] = set()
        for rownums in self.manifest.values():
            dirty.update(rownums)
        return tuple(sorted(dirty))


def dirty_workload(rows: int, row_bytes: int = 160, seed: int = 23,
                   violation_rate: float = 0.01,
                   mix: dict | None = None,
                   table: str = "PROD.DIRTY",
                   name: str = "dirty") -> DirtyWorkload:
    """Generate a load whose rows break dq rules at a known rate.

    Each row makes a single rng roll; with probability
    ``violation_rate`` it is corrupted in exactly one way, drawn from
    ``mix`` (kind -> relative weight over ``not_null``/``range``/
    ``regex``/``unique``/``referential``; default: equal weights).
    Exactly one violation per row keeps the returned ``manifest`` an
    exact per-rule ground truth:

    - ``not_null``  — REC_NAME emitted empty (VARTEXT decodes to NULL);
    - ``range``     — JOIN_DATE set to ``9999-99-99``;
    - ``regex``     — AMOUNT made non-numeric (fails ``^[0-9]+$``);
    - ``unique``    — REC_ID copies an earlier row's REC_ID;
    - ``referential`` — REGION set to a code absent from the parent
      dimension (``PROD.REGION_DIM``).

    With prechecks off, the first three also fail during DML
    application (NOT NULL target column, DATE cast, INT cast) and
    duplicates trip the uniqueness constraint — the Figure 11 recursive
    split path — while referential orphans apply cleanly (the CDW does
    not enforce FKs), so benchmarks comparing final table contents
    should pass a ``mix`` without ``referential``.
    """
    if rows < 1:
        raise ValueError("rows must be positive")
    if not 0.0 <= violation_rate <= 1.0:
        raise ValueError("violation_rate must be within [0, 1]")
    weights_by_kind = dict.fromkeys(_DIRTY_KINDS, 1.0)
    if mix is not None:
        unknown = set(mix) - set(_DIRTY_KINDS)
        if unknown:
            raise ValueError(
                f"unknown violation kinds in mix: {sorted(unknown)}")
        weights_by_kind = {k: float(mix.get(k, 0.0)) for k in _DIRTY_KINDS}
        if sum(weights_by_kind.values()) <= 0:
            raise ValueError("mix needs at least one positive weight")
    kinds = list(_DIRTY_KINDS)
    weights = [weights_by_kind[k] for k in kinds]

    payload_width = max(row_bytes - 60, 4)
    rng = random.Random(seed)
    pool = _make_pool(rng)
    lines: list[str] = []
    manifest: dict[str, list[int]] = {
        "name_required": [], "date_range": [], "amount_digits": [],
        "rec_unique": [], "region_fk": [],
    }
    rule_of_kind = {
        "not_null": "name_required", "range": "date_range",
        "regex": "amount_digits", "unique": "rec_unique",
        "referential": "region_fk",
    }
    first_seen: dict[str, int] = {}
    for i in range(rows):
        rownum = i + 1
        kind = None
        if violation_rate > 0 and rng.random() < violation_rate:
            kind = rng.choices(kinds, weights=weights)[0]
            if kind == "unique" and i == 0:
                kind = None  # nothing earlier to duplicate
        rec_id = f"R{i:07d}"
        name_value = f"name-{rng.randrange(10_000):05d}"
        year = 2000 + rng.randrange(25)
        month = 1 + rng.randrange(12)
        day = 1 + rng.randrange(28)
        date_value = f"{year:04d}-{month:02d}-{day:02d}"
        amount_value = str(rng.randrange(1, 100_000))
        region_value = _DIRTY_REGIONS[rng.randrange(len(_DIRTY_REGIONS))]
        if kind == "not_null":
            name_value = ""
        elif kind == "range":
            date_value = "9999-99-99"
        elif kind == "regex":
            amount_value = f"{rng.randrange(10, 99)}x{rng.randrange(10, 99)}"
        elif kind == "unique":
            rec_id = f"R{rng.randrange(i):07d}"
        elif kind == "referential":
            region_value = "ZZ"
        if kind is not None and kind != "unique":
            manifest[rule_of_kind[kind]].append(rownum)
        # Uniqueness ground truth is the rule's *raw* (solo) verdict:
        # every non-first occurrence of a key violates, regardless of
        # which row the generator intended as the duplicate.  The
        # precheck's routing cascade may route fewer (a duplicate of a
        # row routed by another rule survives) — equivalence tests
        # compare end states, not this manifest.
        if rec_id in first_seen:
            manifest["rec_unique"].append(rownum)
        else:
            first_seen[rec_id] = rownum
        payload = _payload(rng, pool, payload_width)
        lines.append(f"{rec_id}|{name_value}|{date_value}|"
                     f"{amount_value}|{region_value}|{payload}")
    data = ("\n".join(lines) + "\n").encode("utf-8")

    layout = Layout(f"{name}_layout", [
        FieldDef("REC_ID", parse_type("varchar(12)")),
        FieldDef("REC_NAME", parse_type("varchar(40)")),
        FieldDef("JOIN_DATE", parse_type("varchar(10)")),
        FieldDef("AMOUNT", parse_type("varchar(12)")),
        FieldDef("REGION", parse_type("varchar(4)")),
        FieldDef("PAYLOAD", parse_type(f"varchar({payload_width + 8})")),
    ])
    ddl = (
        f"CREATE TABLE {table} ("
        "REC_ID VARCHAR(12) NOT NULL, "
        "REC_NAME VARCHAR(40) NOT NULL, "
        "JOIN_DATE DATE, "
        "AMOUNT INT, "
        "REGION VARCHAR(4), "
        f"PAYLOAD VARCHAR({payload_width + 8}), "
        "UNIQUE (REC_ID))"
    )
    apply_sql = (
        f"insert into {table} values ("
        "trim(:REC_ID), trim(:REC_NAME), "
        "cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'), "
        "cast(:AMOUNT as INT), trim(:REGION), :PAYLOAD)"
    )
    parent_table = "PROD.REGION_DIM"
    setup_sql = (
        f"CREATE TABLE {parent_table} (REGION_CODE NVARCHAR(4))",
    ) + tuple(
        f"INSERT INTO {parent_table} VALUES ('{code}')"
        for code in _DIRTY_REGIONS
    )
    dq_rules = [
        {"rule_id": "name_required", "kind": "not_null",
         "column": "REC_NAME"},
        {"rule_id": "date_range", "kind": "range", "column": "JOIN_DATE",
         "min": "1900-01-01", "max": "2099-12-31"},
        {"rule_id": "amount_digits", "kind": "regex", "column": "AMOUNT",
         "pattern": "^[0-9]+$"},
        {"rule_id": "rec_unique", "kind": "unique",
         "columns": ["REC_ID"]},
        {"rule_id": "region_fk", "kind": "referential", "column": "REGION",
         "parent_table": parent_table, "parent_column": "REGION_CODE"},
    ]
    dirty_count = len({r for v in manifest.values() for r in v})
    workload = Workload(
        name=name, data=data, layout=layout, target_table=table,
        et_table=f"{table}_ET", uv_table=f"{table}_UV",
        ddl=ddl, apply_sql=apply_sql, rows=rows,
        expected_good_rows=rows - dirty_count,
    )
    return DirtyWorkload(
        workload=workload,
        manifest={k: tuple(v) for k, v in manifest.items()},
        dq_rules=dq_rules,
        setup_sql=setup_sql,
    )


@dataclass
class TenantWorkload:
    """One tenant's slice of a multi-tenant concurrent workload."""

    tenant: str
    #: this tenant's independent load jobs (distinct target tables).
    workloads: list[Workload] = field(default_factory=list)

    @property
    def total_rows(self) -> int:
        """Rows across every script of this tenant."""
        return sum(w.rows for w in self.workloads)


def multi_tenant_workloads(tenants: int = 3, scripts: int = 2,
                           base_rows: int = 200, skew: float = 2.0,
                           seed: int = 7, row_bytes: int = 120,
                           table_prefix: str = "PROD.MT"
                           ) -> list[TenantWorkload]:
    """K tenants × M scripts with skewed sizes — the WLM test preset.

    Tenant ``t`` runs ``scripts`` independent load jobs of
    ``base_rows * skew**t`` rows each (rounded), so tenant 0 is the
    light interactive-style user and the last tenant is the heavy batch
    hog — the contention shape workload management exists for.  Every
    job gets its own target table (``<prefix>_T<t>_S<s>``) and a
    deterministic per-job seed, so concurrent runs verify row counts
    per table without cross-talk.
    """
    if tenants < 1 or scripts < 1:
        raise ValueError("need at least one tenant and one script")
    if skew < 1.0:
        raise ValueError("skew must be >= 1.0 (tenant t gets "
                         "base_rows * skew**t rows)")
    result: list[TenantWorkload] = []
    for t in range(tenants):
        tenant = f"tenant-{t}"
        rows = max(1, int(round(base_rows * skew ** t)))
        jobs = [
            make_workload(
                rows=rows, row_bytes=row_bytes,
                seed=seed + 1000 * t + s,
                table=f"{table_prefix}_T{t}_S{s}",
                name=f"{tenant}-s{s}")
            for s in range(scripts)
        ]
        result.append(TenantWorkload(tenant=tenant, workloads=jobs))
    return result


def wide_workload(rows: int, columns: int = 50, column_width: int = 16,
                  seed: int = 11, table: str = "PROD.WIDE",
                  name: str = "wide") -> Workload:
    """A many-column load like Figure 10's 50-column table."""
    if columns < 2:
        raise ValueError("need at least two columns")
    rng = random.Random(seed)
    pool = _make_pool(rng)
    field_defs = [FieldDef("REC_ID", parse_type("varchar(12)"))]
    field_defs += [
        FieldDef(f"C{i:02d}", parse_type(f"varchar({column_width + 4})"))
        for i in range(1, columns)
    ]
    layout = Layout(f"{name}_layout", field_defs)
    lines = []
    for i in range(rows):
        parts = [f"R{i:07d}"]
        parts += [_payload(rng, pool, column_width)
                  for _ in range(columns - 1)]
        lines.append("|".join(parts))
    data = ("\n".join(lines) + "\n").encode("utf-8")
    ddl_columns = ", ".join(
        f"{f.name} VARCHAR({(f.type.length or 16)})" for f in field_defs)
    ddl = f"CREATE TABLE {table} ({ddl_columns}, UNIQUE (REC_ID))"
    params = ", ".join(f":{f.name}" for f in field_defs)
    apply_sql = f"insert into {table} values ({params})"
    return Workload(
        name=name, data=data, layout=layout, target_table=table,
        et_table=f"{table}_ET", uv_table=f"{table}_UV",
        ddl=ddl, apply_sql=apply_sql, rows=rows,
        expected_good_rows=rows,
    )
