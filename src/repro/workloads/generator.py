"""Seeded generation of ETL input files with controllable shape.

A :class:`Workload` bundles everything one load job needs: the input file
bytes (VARTEXT), the record layout, the target-table DDL, and the job DML
(in the legacy dialect, with host variables).  Generation is fully
deterministic given the seed.

Error injection (Figure 11):

- ``error_rate`` — fraction of rows whose JOIN_DATE is garbage, failing
  the ``CAST .. AS DATE FORMAT`` during the application phase;
- ``dup_rate`` — fraction of rows that duplicate an earlier REC_ID,
  violating the target's uniqueness constraint;
- ``field_count_error_rate`` — fraction of rows with a missing field,
  rejected during acquisition.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field

from repro.legacy.datafmt import FormatSpec
from repro.legacy.types import FieldDef, Layout, parse_type

__all__ = ["Workload", "TenantWorkload", "make_workload",
           "wide_workload", "multi_tenant_workloads"]

_ALPHABET = string.ascii_uppercase + string.ascii_lowercase

#: bytes of per-row framing overhead outside the PAYLOAD field
#: (REC_ID ~8 + NAME ~12 + JOIN_DATE 10 + three delimiters + newline).
_BASE_ROW_OVERHEAD = 36


@dataclass
class Workload:
    """One generated load job."""

    name: str
    data: bytes
    layout: Layout
    target_table: str
    et_table: str
    uv_table: str
    ddl: str
    apply_sql: str
    format_spec: FormatSpec = field(
        default_factory=lambda: FormatSpec("vartext", "|"))
    rows: int = 0
    expected_good_rows: int = 0
    expected_date_errors: int = 0
    expected_dup_errors: int = 0
    expected_field_count_errors: int = 0

    @property
    def bytes_total(self) -> int:
        return len(self.data)

    @property
    def avg_row_bytes(self) -> float:
        return len(self.data) / max(self.rows, 1)


_POOL_SIZE = 8192


def _make_pool(rng: random.Random) -> str:
    """A reusable slab of random characters; payloads are slices of it.

    Slicing a pre-generated pool is ~100x faster than per-character
    generation and keeps payloads incompressible enough for the
    compression ablation to stay honest.
    """
    return "".join(rng.choices(_ALPHABET, k=_POOL_SIZE))


def _payload(rng: random.Random, pool: str, width: int) -> str:
    if width <= 0:
        return ""
    if width >= len(pool):
        repeats = width // len(pool) + 1
        return (pool * repeats)[:width]
    offset = rng.randrange(len(pool) - width)
    return pool[offset:offset + width]


def make_workload(rows: int, row_bytes: int = 500, seed: int = 7,
                  error_rate: float = 0.0, dup_rate: float = 0.0,
                  field_count_error_rate: float = 0.0,
                  table: str = "PROD.FACT",
                  name: str = "load") -> Workload:
    """Generate the standard 4-column load used by Figures 7, 8 and 11.

    ``row_bytes`` controls the *average* encoded row width by sizing the
    PAYLOAD filler column.
    """
    if rows < 1:
        raise ValueError("rows must be positive")
    payload_width = max(row_bytes - _BASE_ROW_OVERHEAD, 4)
    rng = random.Random(seed)
    pool = _make_pool(rng)
    lines: list[str] = []
    date_errors = dup_errors = field_errors = 0
    for i in range(rows):
        rec_id = f"R{i:07d}"
        roll = rng.random()
        if dup_rate > 0 and roll < dup_rate and i > 0:
            rec_id = f"R{rng.randrange(i):07d}"
            dup_errors += 1
        name_value = f"name-{rng.randrange(10_000):05d}"
        year = 2000 + rng.randrange(25)
        month = 1 + rng.randrange(12)
        day = 1 + rng.randrange(28)
        date_value = f"{year:04d}-{month:02d}-{day:02d}"
        if error_rate > 0 and rng.random() < error_rate:
            date_value = "not-a-date"
            date_errors += 1
        payload = _payload(rng, pool, payload_width)
        if field_count_error_rate > 0 \
                and rng.random() < field_count_error_rate:
            lines.append(f"{rec_id}|{name_value}|{date_value}")
            field_errors += 1
            continue
        lines.append(f"{rec_id}|{name_value}|{date_value}|{payload}")
    data = ("\n".join(lines) + "\n").encode("utf-8")

    layout = Layout(f"{name}_layout", [
        FieldDef("REC_ID", parse_type("varchar(12)")),
        FieldDef("REC_NAME", parse_type("varchar(40)")),
        FieldDef("JOIN_DATE", parse_type("varchar(10)")),
        FieldDef("PAYLOAD", parse_type(f"varchar({payload_width + 8})")),
    ])
    ddl = (
        f"CREATE TABLE {table} ("
        "REC_ID VARCHAR(12) NOT NULL, "
        "REC_NAME VARCHAR(40), "
        "JOIN_DATE DATE, "
        f"PAYLOAD VARCHAR({payload_width + 8}), "
        "UNIQUE (REC_ID))"
    )
    apply_sql = (
        f"insert into {table} values ("
        "trim(:REC_ID), trim(:REC_NAME), "
        "cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'), :PAYLOAD)"
    )
    # A duplicated row that also has a broken date fails on conversion
    # first; the generator avoids that overlap by construction only
    # statistically, so expected numbers are advisory for large runs and
    # exact when rates do not overlap.
    good = rows - date_errors - dup_errors - field_errors
    return Workload(
        name=name, data=data, layout=layout, target_table=table,
        et_table=f"{table}_ET", uv_table=f"{table}_UV",
        ddl=ddl, apply_sql=apply_sql, rows=rows,
        expected_good_rows=good,
        expected_date_errors=date_errors,
        expected_dup_errors=dup_errors,
        expected_field_count_errors=field_errors,
    )


@dataclass
class TenantWorkload:
    """One tenant's slice of a multi-tenant concurrent workload."""

    tenant: str
    #: this tenant's independent load jobs (distinct target tables).
    workloads: list[Workload] = field(default_factory=list)

    @property
    def total_rows(self) -> int:
        """Rows across every script of this tenant."""
        return sum(w.rows for w in self.workloads)


def multi_tenant_workloads(tenants: int = 3, scripts: int = 2,
                           base_rows: int = 200, skew: float = 2.0,
                           seed: int = 7, row_bytes: int = 120,
                           table_prefix: str = "PROD.MT"
                           ) -> list[TenantWorkload]:
    """K tenants × M scripts with skewed sizes — the WLM test preset.

    Tenant ``t`` runs ``scripts`` independent load jobs of
    ``base_rows * skew**t`` rows each (rounded), so tenant 0 is the
    light interactive-style user and the last tenant is the heavy batch
    hog — the contention shape workload management exists for.  Every
    job gets its own target table (``<prefix>_T<t>_S<s>``) and a
    deterministic per-job seed, so concurrent runs verify row counts
    per table without cross-talk.
    """
    if tenants < 1 or scripts < 1:
        raise ValueError("need at least one tenant and one script")
    if skew < 1.0:
        raise ValueError("skew must be >= 1.0 (tenant t gets "
                         "base_rows * skew**t rows)")
    result: list[TenantWorkload] = []
    for t in range(tenants):
        tenant = f"tenant-{t}"
        rows = max(1, int(round(base_rows * skew ** t)))
        jobs = [
            make_workload(
                rows=rows, row_bytes=row_bytes,
                seed=seed + 1000 * t + s,
                table=f"{table_prefix}_T{t}_S{s}",
                name=f"{tenant}-s{s}")
            for s in range(scripts)
        ]
        result.append(TenantWorkload(tenant=tenant, workloads=jobs))
    return result


def wide_workload(rows: int, columns: int = 50, column_width: int = 16,
                  seed: int = 11, table: str = "PROD.WIDE",
                  name: str = "wide") -> Workload:
    """A many-column load like Figure 10's 50-column table."""
    if columns < 2:
        raise ValueError("need at least two columns")
    rng = random.Random(seed)
    pool = _make_pool(rng)
    field_defs = [FieldDef("REC_ID", parse_type("varchar(12)"))]
    field_defs += [
        FieldDef(f"C{i:02d}", parse_type(f"varchar({column_width + 4})"))
        for i in range(1, columns)
    ]
    layout = Layout(f"{name}_layout", field_defs)
    lines = []
    for i in range(rows):
        parts = [f"R{i:07d}"]
        parts += [_payload(rng, pool, column_width)
                  for _ in range(columns - 1)]
        lines.append("|".join(parts))
    data = ("\n".join(lines) + "\n").encode("utf-8")
    ddl_columns = ", ".join(
        f"{f.name} VARCHAR({(f.type.length or 16)})" for f in field_defs)
    ddl = f"CREATE TABLE {table} ({ddl_columns}, UNIQUE (REC_ID))"
    params = ", ".join(f":{f.name}" for f in field_defs)
    apply_sql = f"insert into {table} values ({params})"
    return Workload(
        name=name, data=data, layout=layout, target_table=table,
        et_table=f"{table}_ET", uv_table=f"{table}_UV",
        ddl=ddl, apply_sql=apply_sql, rows=rows,
        expected_good_rows=rows,
    )
