"""Synthetic workload generators for the experiments.

The paper evaluates with "real-world jobs" on proprietary customer data;
we substitute seeded synthetic datasets with the same knobs the
experiments turn: row count, average row width (Figures 7/8), column
count (Figure 10), and injected error rates (Figure 11: bad dates and
duplicate keys).
"""

from repro.workloads.generator import (
    TenantWorkload, Workload, make_workload, multi_tenant_workloads,
    wide_workload,
)
from repro.workloads.streamgen import (
    StreamBatch, StreamWorkload, stream_workload,
)

__all__ = ["StreamBatch", "StreamWorkload", "TenantWorkload", "Workload",
           "make_workload", "multi_tenant_workloads", "stream_workload",
           "wide_workload"]
