"""Seeded generation of continuous-ingestion (micro-batch) workloads.

A :class:`StreamWorkload` is a scripted feed: an ordered list of
:class:`StreamBatch` chunks that a :class:`~repro.stream.runner.
StreamRunner` pushes through one :class:`~repro.stream.session.
StreamSession`.  Schema drift is injected on a fixed schedule so tests
and benchmarks have exact ground truth (the ``manifest``):

- at ``add_at`` the source grows a trailing ``SRC_REGION VARCHAR(8)``
  column;
- at ``rename_at`` the source renames ``REC_NAME`` to ``CUST_NAME``.

REC_IDs are globally unique across batches (``R<seq><i>``) so replayed
or duplicated batches surface as uniqueness violations — the stream
tests' canary for broken exactly-once accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.legacy.datafmt import FormatSpec
from repro.legacy.types import FieldDef, Layout, parse_type
from repro.workloads.generator import _make_pool, _payload

__all__ = ["StreamBatch", "StreamWorkload", "stream_workload"]


@dataclass
class StreamBatch:
    """One micro-batch of a scripted feed."""

    seq: int
    data: bytes
    layout: Layout
    apply_sql: str
    rows: int = 0
    #: opaque source position after this batch (journaled watermark).
    cursor: str | None = None
    #: drift kinds this batch introduces (``()`` for steady state).
    drift: tuple[str, ...] = ()
    #: optional source event timestamp (drives the lag gauge).
    event_ts: float | None = None
    format_spec: FormatSpec = field(
        default_factory=lambda: FormatSpec("vartext", "|"))


@dataclass
class StreamWorkload:
    """A scripted feed plus the ground truth tests assert against."""

    name: str
    feed: str
    target_table: str
    et_table: str
    uv_table: str
    #: DDL for the *initial* schema — drifted columns arrive via ALTER.
    ddl: str
    batches: list[StreamBatch] = field(default_factory=list)
    #: ground truth: totals, per-batch rows, and the drift schedule.
    manifest: dict = field(default_factory=dict)

    @property
    def rows_total(self) -> int:
        """Total source rows across every batch."""
        return sum(b.rows for b in self.batches)


def _batch_layout(has_region: bool, renamed: bool,
                  payload_width: int, seq: int) -> Layout:
    """Layout as the *source* declares it at batch ``seq``."""
    name_col = "CUST_NAME" if renamed else "REC_NAME"
    fields = [
        FieldDef("REC_ID", parse_type("varchar(12)")),
        FieldDef(name_col, parse_type("varchar(40)")),
        FieldDef("JOIN_DATE", parse_type("varchar(10)")),
        FieldDef("PAYLOAD", parse_type(f"varchar({payload_width + 8})")),
    ]
    if has_region:
        fields.append(FieldDef("SRC_REGION", parse_type("varchar(8)")))
    return Layout(f"stream_b{seq:06d}", fields)


def _batch_apply_sql(table: str, has_region: bool, renamed: bool) -> str:
    """Per-batch DML matching the layout the source currently sends."""
    name_bind = ":CUST_NAME" if renamed else ":REC_NAME"
    binds = [
        "trim(:REC_ID)", f"trim({name_bind})",
        "cast(:JOIN_DATE as DATE format 'YYYY-MM-DD')", ":PAYLOAD",
    ]
    if has_region:
        binds.append("trim(:SRC_REGION)")
    return f"insert into {table} values ({', '.join(binds)})"


def stream_workload(batches: int = 12, rows_per_batch: int = 40,
                    *, drift: bool = True,
                    add_at: int | None = None,
                    rename_at: int | None = None,
                    row_bytes: int = 120, seed: int = 7,
                    null_region_rate: float = 0.0,
                    date_error_rate: float = 0.0,
                    feed: str = "orders_feed",
                    table: str = "PROD.STREAM") -> StreamWorkload:
    """Script a feed of ``batches`` micro-batches with scheduled drift.

    ``add_at`` / ``rename_at`` are batch sequences (defaults: one third
    and two thirds of the run); ``drift=False`` disables both.
    ``null_region_rate`` makes a fraction of post-``add_at`` rows carry
    an empty SRC_REGION (VARTEXT decodes empty to NULL) — ground truth
    for the drift × data-quality exemption tests.  ``date_error_rate``
    seeds unparsable JOIN_DATEs that fall out through the ordinary
    error-table path.
    """
    if batches < 1 or rows_per_batch < 1:
        raise ValueError("batches and rows_per_batch must be positive")
    if drift:
        if add_at is None:
            add_at = max(1, batches // 3)
        if rename_at is None:
            rename_at = max(add_at + 1, (2 * batches) // 3)
    else:
        add_at = rename_at = None
    payload_width = max(row_bytes - 56, 4)
    rng = random.Random(seed)
    pool = _make_pool(rng)
    out: list[StreamBatch] = []
    schedule: list[dict] = []
    per_batch_rows: list[int] = []
    null_region_rows: dict[int, list[int]] = {}
    date_error_rows: dict[int, list[int]] = {}
    emitted = 0
    for seq in range(batches):
        has_region = add_at is not None and seq >= add_at
        renamed = rename_at is not None and seq >= rename_at
        kinds: list[str] = []
        if add_at is not None and seq == add_at:
            kinds.append("added")
            schedule.append({"seq": seq, "kind": "added",
                             "column": "SRC_REGION",
                             "new_type": "VARCHAR(8)"})
        if rename_at is not None and seq == rename_at:
            kinds.append("renamed")
            schedule.append({"seq": seq, "kind": "renamed",
                             "column": "CUST_NAME",
                             "old_name": "REC_NAME"})
        lines: list[str] = []
        for i in range(rows_per_batch):
            rec_id = f"R{seq:04d}{i:05d}"
            name_value = f"name-{rng.randrange(10_000):05d}"
            year = 2000 + rng.randrange(25)
            month = 1 + rng.randrange(12)
            day = 1 + rng.randrange(28)
            date_value = f"{year:04d}-{month:02d}-{day:02d}"
            if date_error_rate > 0 and rng.random() < date_error_rate:
                date_value = "not-a-date"
                date_error_rows.setdefault(seq, []).append(i + 1)
            parts = [rec_id, name_value, date_value,
                     _payload(rng, pool, payload_width)]
            if has_region:
                region = f"R-{rng.randrange(90) + 10}"
                if null_region_rate > 0 \
                        and rng.random() < null_region_rate:
                    region = ""
                    null_region_rows.setdefault(seq, []).append(i + 1)
                parts.append(region)
            lines.append("|".join(parts))
        data = ("\n".join(lines) + "\n").encode("utf-8")
        emitted += rows_per_batch
        out.append(StreamBatch(
            seq=seq, data=data,
            layout=_batch_layout(has_region, renamed, payload_width,
                                 seq),
            apply_sql=_batch_apply_sql(table, has_region, renamed),
            rows=rows_per_batch,
            cursor=f"offset:{emitted}",
            drift=tuple(kinds),
        ))
        per_batch_rows.append(rows_per_batch)
    ddl = (
        f"CREATE TABLE {table} ("
        "REC_ID VARCHAR(12) NOT NULL, "
        "REC_NAME VARCHAR(40), "
        "JOIN_DATE DATE, "
        f"PAYLOAD VARCHAR({payload_width + 8}), "
        "UNIQUE (REC_ID))"
    )
    final_columns = ["REC_ID", "REC_NAME", "JOIN_DATE", "PAYLOAD"]
    if add_at is not None:
        final_columns.append("SRC_REGION")
    if rename_at is not None:
        final_columns[1] = "CUST_NAME"
    manifest = {
        "feed": feed,
        "batches": batches,
        "rows_per_batch": per_batch_rows,
        "rows_total": emitted,
        "drift": schedule,
        "add_at": add_at,
        "rename_at": rename_at,
        "final_columns": final_columns,
        "rows_before_add": (add_at or 0) * rows_per_batch,
        "null_region_rows": null_region_rows,
        "date_error_rows": date_error_rows,
    }
    return StreamWorkload(
        name=f"stream_{feed}", feed=feed, target_table=table,
        et_table=f"{table}_ET", uv_table=f"{table}_UV",
        ddl=ddl, batches=out, manifest=manifest,
    )
