"""A bounded LRU cache for compiled statement plans.

The adaptive error handler (Section 7) can issue hundreds of DML
statements per failing chunk, every one of them the *same shape* with
only the ``__SEQ`` range literals changed — and the engine re-parses any
statement text it is handed.  Dialect-translation systems amortize that
by caching the compiled plan keyed by statement identity; this module is
that cache, shared by Beta's prepared DML templates and the engine's
parsed-statement cache.

The cache is thread-safe; compilation runs under the cache lock, so a
key is compiled exactly once no matter how many threads race on it.
Entries are only ever dropped by LRU eviction — keys embed everything
identity-relevant (statement text, staging table name, layout
signature), so a schema or table change produces a *different* key and
the stale entry simply ages out.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

__all__ = ["PlanCache"]


class PlanCache:
    """Bounded LRU ``key -> compiled plan`` map with hit/miss counters.

    ``on_hit``/``on_miss`` are optional callbacks (typically obs counter
    ``inc`` methods) invoked once per lookup outcome.
    """

    def __init__(self, capacity: int = 128,
                 on_hit: Callable[[], None] | None = None,
                 on_miss: Callable[[], None] | None = None):
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._on_hit = on_hit
        self._on_miss = on_miss
        self._lock = threading.Lock()
        self._plans: OrderedDict[Hashable, Any] = OrderedDict()

    def get_or_compile(self, key: Hashable,
                       compile_fn: Callable[[], Any]) -> Any:
        """Return the cached plan for ``key``, compiling it on first use."""
        with self._lock:
            plans = self._plans
            try:
                plan = plans[key]
                plans.move_to_end(key)
                self.hits += 1
                hit = True
            except KeyError:
                plan = plans[key] = compile_fn()
                self.misses += 1
                hit = False
                if len(plans) > self.capacity:
                    plans.popitem(last=False)
                    self.evictions += 1
        if hit:
            if self._on_hit is not None:
                self._on_hit()
        elif self._on_miss is not None:
            self._on_miss()
        return plan

    def __len__(self) -> int:
        """Number of cached plans."""
        with self._lock:
            return len(self._plans)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._plans.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters for ``stats()`` surfaces and benchmarks."""
        return {
            "capacity": self.capacity,
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }
