"""Batch-loop driver: pushes a stream workload through a session.

:class:`StreamRunner` is the piece the CLI and benchmarks share — it
iterates a workload's micro-batches through a
:class:`~repro.stream.session.StreamSession` at an optional cadence and
folds the per-batch outcomes into a :class:`StreamReport` (counts,
latency percentiles, drift trail).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["StreamRunner", "StreamReport"]


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered)) - 1))
    if q >= 1.0:
        rank = len(ordered) - 1
    return ordered[rank]


@dataclass
class StreamReport:
    """Aggregated outcome of a :meth:`StreamRunner.run` loop."""

    feed: str = ""
    batches: int = 0
    committed: int = 0
    skipped: int = 0
    routed: int = 0
    rows_inserted: int = 0
    et_errors: int = 0
    uv_errors: int = 0
    dq_routed_rows: int = 0
    #: per-batch cycle latencies, in run order (committed + skipped).
    latencies_s: list[float] = field(default_factory=list)
    #: drift events accepted during the run, as ``(seq, wire-dict)``.
    drift: list = field(default_factory=list)
    #: wall-clock seconds for the whole loop.
    elapsed_s: float = 0.0

    def latency_p(self, q: float) -> float:
        """Latency percentile (e.g. ``latency_p(0.95)``) in seconds."""
        return _percentile(self.latencies_s, q)

    @property
    def rows_per_second(self) -> float:
        """Committed-row throughput across the whole loop."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.rows_inserted / self.elapsed_s

    def as_dict(self) -> dict:
        """JSON-safe summary (benchmark artifacts, CLI output)."""
        return {
            "feed": self.feed,
            "batches": self.batches,
            "committed": self.committed,
            "skipped": self.skipped,
            "routed": self.routed,
            "rows_inserted": self.rows_inserted,
            "et_errors": self.et_errors,
            "uv_errors": self.uv_errors,
            "dq_routed_rows": self.dq_routed_rows,
            "elapsed_s": round(self.elapsed_s, 6),
            "rows_per_second": round(self.rows_per_second, 3),
            "latency_p50_s": round(self.latency_p(0.50), 6),
            "latency_p95_s": round(self.latency_p(0.95), 6),
            "drift_events": len(self.drift),
        }


class StreamRunner:
    """Feeds a workload's batches through one session, in order."""

    def __init__(self, session, workload, cadence_s: float = 0.0):
        self.session = session
        self.workload = workload
        self.cadence_s = cadence_s
        #: per-batch :class:`~repro.stream.session.StreamBatchResult`
        #: objects, appended as the loop progresses.
        self.results = []

    def run(self, batches: int | None = None) -> StreamReport:
        """Run up to ``batches`` micro-batches (all when ``None``)."""
        todo = list(self.workload.batches)
        if batches is not None:
            todo = todo[:batches]
        report = StreamReport(feed=self.session.feed)
        started = time.perf_counter()
        for batch in todo:
            result = self.session.run_batch(batch)
            self.results.append(result)
            report.batches += 1
            report.latencies_s.append(result.latency_s)
            if result.skipped:
                report.skipped += 1
            else:
                report.committed += 1
                report.rows_inserted += result.rows_inserted
                report.et_errors += result.et_errors
                report.uv_errors += result.uv_errors
                report.dq_routed_rows += result.dq_routed_rows
            if result.routed:
                report.routed += 1
            for event in result.drift:
                report.drift.append((result.seq, event))
            if self.cadence_s > 0:
                time.sleep(self.cadence_s)
        report.elapsed_s = time.perf_counter() - started
        return report
