"""Schema-drift detection for continuous ingestion feeds.

A long-running feed replays the same BEGIN_LOAD → acquire → APPLY cycle
for every micro-batch, but the *source* schema is not frozen: upstream
systems add columns, rename them, or widen their types mid-stream.  The
:class:`SchemaDriftResolver` compares each batch's declared layout with
the layout the feed last accepted and reduces the difference to a list
of :class:`DriftEvent` records the gateway can act on:

- ``added``   — a new trailing/interior column appeared in the source;
- ``renamed`` — the column at some position changed name (detected
  positionally: the old name vanished and the new name is unknown);
- ``retyped`` — a column kept its name but changed its declared type.

A column that *disappears* has no safe automatic resolution (historic
rows cannot be unloaded), so it raises
:class:`~repro.errors.StreamDriftError` regardless of policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StreamDriftError
from repro.legacy.types import Layout

__all__ = ["DriftEvent", "SchemaDriftResolver"]


@dataclass(frozen=True)
class DriftEvent:
    """One accepted schema change on a streaming feed."""

    #: ``added`` / ``renamed`` / ``retyped``.
    kind: str
    #: the column's *new* (current) name.
    column: str
    #: previous name (``renamed`` only).
    old_name: str = ""
    #: previous rendered type (``retyped`` only).
    old_type: str = ""
    #: new rendered type (``added`` and ``retyped``).
    new_type: str = ""

    def to_wire(self) -> dict:
        """JSON-safe dict for journals, replies, and flight records."""
        out = {"kind": self.kind, "column": self.column}
        if self.old_name:
            out["old_name"] = self.old_name
        if self.old_type:
            out["old_type"] = self.old_type
        if self.new_type:
            out["new_type"] = self.new_type
        return out

    @classmethod
    def from_wire(cls, payload: dict) -> "DriftEvent":
        """Inverse of :meth:`to_wire`."""
        return cls(kind=payload["kind"], column=payload["column"],
                   old_name=payload.get("old_name", ""),
                   old_type=payload.get("old_type", ""),
                   new_type=payload.get("new_type", ""))


@dataclass
class SchemaDriftResolver:
    """Diffs per-batch layouts against a feed's accepted layout.

    Stateless apart from the feed name (used only for error messages):
    the accepted layout lives with the feed's durable watermark, so a
    resolver can be rebuilt freely after a restart.
    """

    feed: str = ""
    #: events from the last :meth:`resolve` call (convenience for
    #: callers that diff and then branch on policy).
    last_events: list[DriftEvent] = field(default_factory=list)

    def resolve(self, accepted: Layout,
                observed: Layout) -> list[DriftEvent]:
        """Diff ``observed`` against ``accepted``; raise on removals.

        Renames are detected positionally: the field at position *i*
        carries a name that exists in neither layout's complement, so
        it can only be the old column under a new name.  Everything
        else unknown is an addition; same-name/different-type is a
        retype.
        """
        acc_index = {f.name.upper(): f for f in accepted.fields}
        obs_index = {f.name.upper(): f for f in observed.fields}
        events: list[DriftEvent] = []
        renamed_from: dict[str, str] = {}
        rename_targets: set[str] = set()
        for i, obs in enumerate(observed.fields[:len(accepted.fields)]):
            acc = accepted.fields[i]
            if obs.name.upper() == acc.name.upper():
                continue
            if obs.name.upper() in acc_index or \
                    acc.name.upper() in obs_index:
                continue  # reorder/addition, not a positional rename
            renamed_from[acc.name.upper()] = obs.name
            rename_targets.add(obs.name.upper())
            events.append(DriftEvent("renamed", column=obs.name,
                                     old_name=acc.name))
            if obs.type.render() != acc.type.render():
                events.append(DriftEvent(
                    "retyped", column=obs.name,
                    old_type=acc.type.render(),
                    new_type=obs.type.render()))
        for acc in accepted.fields:
            key = acc.name.upper()
            if key not in obs_index and key not in renamed_from:
                raise StreamDriftError(
                    f"feed {self.feed or '?'}: source column "
                    f"{acc.name!r} disappeared — removing columns is "
                    "not a supported drift", feed=self.feed)
        for obs in observed.fields:
            key = obs.name.upper()
            if key in rename_targets:
                continue
            acc = acc_index.get(key)
            if acc is None:
                events.append(DriftEvent("added", column=obs.name,
                                         new_type=obs.type.render()))
            elif obs.type.render() != acc.type.render():
                events.append(DriftEvent(
                    "retyped", column=obs.name,
                    old_type=acc.type.render(),
                    new_type=obs.type.render()))
        self.last_events = events
        return events

    @staticmethod
    def evolve_statements(target: str,
                          events: list[DriftEvent]) -> list[str]:
        """ALTER TABLE statements propagating ``events`` to ``target``.

        ``added`` → ``ADD COLUMN IF NOT EXISTS`` (idempotent: a crash
        between the ALTER and the drift journal record replays safely);
        ``renamed`` → ``RENAME COLUMN``; ``retyped`` needs no target
        DDL — staging parses with the new type, the target keeps its
        declared one and the application phase's per-tuple conversion
        arbitrates (docs/STREAMING.md).
        """
        statements = []
        for event in events:
            if event.kind == "added":
                statements.append(
                    f"ALTER TABLE {target} ADD COLUMN IF NOT EXISTS "
                    f"{event.column} {event.new_type}")
            elif event.kind == "renamed":
                statements.append(
                    f"ALTER TABLE {target} RENAME COLUMN "
                    f"{event.old_name} TO {event.column}")
        return statements

    @staticmethod
    def apply_to_mapping(mapping: dict[str, str],
                         events: list[DriftEvent]) -> dict[str, str]:
        """New source→target mapping matrix after ``events``.

        Under ``evolve`` the target tracks the source, so the matrix
        stays a bijection: renames move the key, additions append an
        identity entry, retypes leave the shape alone.
        """
        out = dict(mapping)
        for event in events:
            if event.kind == "renamed":
                out.pop(event.old_name, None)
                out[event.column] = event.column
            elif event.kind == "added":
                out[event.column] = event.column
        return out
