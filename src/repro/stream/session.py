"""Client-side driver of one continuous-ingestion feed.

A :class:`StreamSession` owns a :class:`~repro.legacy.client.
LegacyEtlClient` and replays the classic BEGIN_LOAD → acquire → APPLY →
END_LOAD cycle once per micro-batch, stamping each cycle with the
feed's stream metadata (feed name, batch sequence, source cursor,
drift policy).  Exactly-once across restarts falls out of two rules:

- every batch job is sent with ``resume=True`` under the deterministic
  job id ``<feed>_b<seq>`` — a redelivered chunk of a half-done batch
  dedups against the gateway's per-job checkpoint journal;
- a restarted client replays from *any* earlier sequence — batches at
  or below the feed's durable watermark come back ``stream_committed``
  from BEGIN_LOAD and the whole cycle is skipped without sending a
  byte.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.legacy.client import ImportJobSpec, LegacyEtlClient
from repro.legacy.datafmt import FormatSpec
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = ["StreamSession", "StreamBatchResult"]


@dataclass
class StreamBatchResult:
    """Outcome of one micro-batch cycle."""

    seq: int
    #: the batch ran the full load path this cycle.
    committed: bool = False
    #: the gateway fast-skipped it (already below the watermark).
    skipped: bool = False
    #: the whole batch was routed to the error table (drift policy).
    routed: bool = False
    rows_inserted: int = 0
    et_errors: int = 0
    uv_errors: int = 0
    #: rows the dq precheck routed to the error table this batch.
    dq_routed_rows: int = 0
    bytes_sent: int = 0
    #: wall-clock seconds of the whole cycle, client-observed.
    latency_s: float = 0.0
    #: drift events the gateway accepted at this batch (wire dicts).
    drift: list = field(default_factory=list)
    #: source-to-commit lag the gateway reported, when known.
    lag_s: float | None = None


class StreamSession:
    """One long-running feed: repeated micro-batches, one watermark."""

    def __init__(self, connect, *, feed: str, target_table: str,
                 et_table: str | None = None,
                 uv_table: str | None = None,
                 policy: str = "evolve",
                 watermark_dir: str | None = None,
                 tenant: str = "", sessions: int = 2,
                 chunk_bytes: int = 64 * 1024,
                 timeout: float | None = 30.0,
                 user: str = "stream",
                 retry_attempts: int = 0,
                 admission_retry_attempts: int = 0,
                 tracer: Tracer = NULL_TRACER):
        self.feed = feed
        self.target_table = target_table
        self.et_table = et_table or f"{target_table}_ET"
        self.uv_table = uv_table or f"{target_table}_UV"
        self.policy = policy
        self.watermark_dir = watermark_dir
        self.tenant = tenant
        self.sessions = sessions
        self.chunk_bytes = chunk_bytes
        self.user = user
        self.retry_attempts = retry_attempts
        self.admission_retry_attempts = admission_retry_attempts
        self.client = LegacyEtlClient(connect, timeout=timeout,
                                      tracer=tracer)
        self._safe_feed = "".join(
            c if c.isalnum() or c in "-_" else "_" for c in feed)
        #: per-session counters (the server holds the authoritative
        #: watermark; these describe what *this* process observed).
        self.batches_committed = 0
        self.batches_skipped = 0
        self.rows_inserted = 0

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> "StreamSession":
        """Log the control session on; returns self for chaining."""
        self.client.logon("hyperq", self.user, "")
        return self

    def close(self, end_feed: bool = True) -> None:
        """Log off; optionally close the feed on the server first.

        ``end_feed=False`` leaves the feed (and its pool slot) open on
        the server — the shape of a client that intends to reconnect.
        """
        try:
            if end_feed:
                self.client.end_stream(self.feed)
        finally:
            self.client.logoff()

    def __enter__(self) -> "StreamSession":
        """Context-manager support: opens the session."""
        return self.open()

    def __exit__(self, *exc_info) -> None:
        """Close (feed included) on context exit, best-effort."""
        try:
            self.close()
        except Exception:
            pass

    # -- the cycle ---------------------------------------------------------

    def job_id_for(self, seq: int) -> str:
        """Deterministic per-batch job id — the resume/replay anchor."""
        return f"{self._safe_feed}_b{seq:06d}"

    def run_batch(self, batch) -> StreamBatchResult:
        """Run one micro-batch cycle; fast-skips below the watermark.

        ``batch`` is duck-typed: it needs ``seq``, ``layout``,
        ``data``, and ``apply_sql``; ``cursor``, ``event_ts``, and
        ``format_spec`` ride along when present (e.g.
        :class:`repro.workloads.streamgen.StreamBatch`).
        """
        seq = int(batch.seq)
        stream_meta: dict = {
            "feed": self.feed,
            "batch_seq": seq,
            "drift_policy": self.policy,
        }
        cursor = getattr(batch, "cursor", None)
        if cursor is not None:
            stream_meta["cursor"] = cursor
        event_ts = getattr(batch, "event_ts", None)
        if event_ts is not None:
            stream_meta["event_ts"] = event_ts
        if self.watermark_dir:
            stream_meta["watermark_dir"] = self.watermark_dir
        spec = ImportJobSpec(
            target_table=self.target_table,
            et_table=self.et_table,
            uv_table=self.uv_table,
            layout=batch.layout,
            apply_sql=batch.apply_sql,
            data=batch.data,
            format_spec=getattr(batch, "format_spec", None)
            or FormatSpec("vartext", "|"),
            sessions=self.sessions,
            chunk_bytes=self.chunk_bytes,
            job_id=self.job_id_for(seq),
            # Always resume: harmless on a fresh batch job, and the
            # only correct mode when replaying a half-done one.
            resume=True,
            tenant=self.tenant,
            retry_attempts=self.retry_attempts,
            admission_retry_attempts=self.admission_retry_attempts,
            stream=stream_meta,
        )
        started = time.perf_counter()
        result = self.client.run_import(spec)
        latency = time.perf_counter() - started
        if result.stream_committed:
            self.batches_skipped += 1
            return StreamBatchResult(seq=seq, skipped=True,
                                     latency_s=latency)
        self.batches_committed += 1
        self.rows_inserted += result.rows_inserted
        info = result.stream or {}
        return StreamBatchResult(
            seq=seq, committed=True,
            routed=bool(info.get("routed")),
            rows_inserted=result.rows_inserted,
            et_errors=result.et_errors,
            uv_errors=result.uv_errors,
            dq_routed_rows=result.dq_routed_rows,
            bytes_sent=result.bytes_sent,
            latency_s=latency,
            drift=list(info.get("drift", ())),
            lag_s=info.get("lag_s"),
        )
