"""Continuous ingestion: micro-batch/CDC session mode for Hyper-Q.

The batch path loads a table once and disconnects.  This package keeps
the pipe open: a *feed* drives repeated micro-batch BEGIN_LOAD →
acquire → DQ → APPLY cycles against one target table, with a per-feed
watermark journaled durably on the gateway so a killed client (or
node) resumes exactly-once across batch boundaries — committed batches
fast-skip, half-done batches replay through the ordinary per-job
checkpoint journal.

Pieces:

- :class:`~repro.stream.session.StreamSession` — client-side feed
  driver (one control connection, one batch cycle per call);
- :class:`~repro.stream.runner.StreamRunner` /
  :class:`~repro.stream.runner.StreamReport` — batch loop + rollup;
- :class:`~repro.stream.drift.SchemaDriftResolver` /
  :class:`~repro.stream.drift.DriftEvent` — mid-stream schema-change
  detection and the ``evolve`` ALTER/mapping propagation (policies:
  ``evolve`` / ``route-to-error`` / ``halt``).

See docs/STREAMING.md for the protocol extension and recovery rules.
"""

from repro.stream.drift import DriftEvent, SchemaDriftResolver
from repro.stream.runner import StreamReport, StreamRunner
from repro.stream.session import StreamBatchResult, StreamSession

__all__ = [
    "DriftEvent",
    "SchemaDriftResolver",
    "StreamBatchResult",
    "StreamReport",
    "StreamRunner",
    "StreamSession",
]
