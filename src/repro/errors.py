"""Shared exception hierarchy for the whole reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish "the system under test reported a problem" from
programming errors.  Error *codes* mirror the numeric codes shown in the
paper's Figures 5 and 6 (2666/2794 for the legacy EDW, 3103/3805/9057 for
Hyper-Q's emulated error reporting).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Script language / protocol level
# ---------------------------------------------------------------------------

class ScriptError(ReproError):
    """Legacy ETL script could not be parsed or is semantically invalid."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ProtocolError(ReproError):
    """Malformed or unexpected message on the legacy wire protocol."""


class TransportClosed(ReproError):
    """The peer closed the connection while data was still expected."""


# ---------------------------------------------------------------------------
# SQL cross compiler
# ---------------------------------------------------------------------------

class SqlError(ReproError):
    """Base class for SQL lexing/parsing/translation failures."""


class SqlLexError(SqlError):
    def __init__(self, message: str, pos: int):
        self.pos = pos
        super().__init__(f"at offset {pos}: {message}")


class SqlParseError(SqlError):
    def __init__(self, message: str, token: object = None):
        self.token = token
        super().__init__(message)


class SqlTranslationError(SqlError):
    """A legacy construct has no equivalent in the target dialect."""


class UnboundParameterError(SqlError):
    """A host variable (``:name``) had no binding at execution time."""


# ---------------------------------------------------------------------------
# Data representation
# ---------------------------------------------------------------------------

class DataFormatError(ReproError):
    """A record could not be encoded/decoded in the requested format.

    ``field`` names the offending field when known; ``code`` carries the
    legacy-style numeric error code used in error tables.
    """

    #: legacy EDW code for a data conversion failure (Figure 5b).
    LEGACY_CONVERSION = 2666
    #: legacy EDW code for a uniqueness violation (Figure 5c).
    LEGACY_UNIQUENESS = 2794

    def __init__(self, message: str, field: str | None = None,
                 code: int = LEGACY_CONVERSION):
        self.field = field
        self.code = code
        super().__init__(message)


class TdfError(ReproError):
    """Corrupt or unsupported Tabular Data Format payload."""


# ---------------------------------------------------------------------------
# CDW engine
# ---------------------------------------------------------------------------

class CdwError(ReproError):
    """Base class for cloud data warehouse errors."""


class CatalogError(CdwError):
    """Unknown/duplicate table, column, or schema."""


class TypeError_(CdwError):
    """Value does not fit the declared column type."""


class ExpressionError(CdwError):
    """Runtime failure while evaluating a scalar expression (bad cast...)."""

    def __init__(self, message: str, field: str | None = None):
        self.field = field
        super().__init__(message)


class BulkExecutionError(CdwError):
    """A set-oriented DML statement aborted wholesale.

    Modern CDWs process DML in bulk: one bad tuple aborts the whole
    statement, and the error is observed at *statement* granularity (the
    engine intentionally does not say which row failed — that opacity is
    what forces the adaptive splitting of Section 7).  ``kind`` is either
    ``"conversion"`` or ``"uniqueness"``; ``field`` is a best-effort hint.
    """

    def __init__(self, message: str, kind: str = "conversion",
                 field: str | None = None):
        self.kind = kind
        self.field = field
        super().__init__(message)


class StorageError(CdwError):
    """Cloud object store failure (missing blob, container...)."""


# ---------------------------------------------------------------------------
# Hyper-Q gateway
# ---------------------------------------------------------------------------

class GatewayError(ReproError):
    """Internal Hyper-Q failure (pipeline wiring, job state machine...)."""


class BackPressureTimeout(GatewayError):
    """A credit could not be acquired within the configured timeout."""


class PipelineFailure(GatewayError):
    """The acquisition pipeline failed on a worker thread.

    ``failures`` holds every captured worker exception (first one wins as
    ``__cause__`` so the original traceback survives the thread hop).
    """

    def __init__(self, message: str,
                 failures: list[BaseException] | None = None):
        self.failures = list(failures or [])
        super().__init__(message)


class WlmThrottled(GatewayError):
    """Admission control rejected or timed out a job (workload manager).

    Deliberately *transient* (``transient = True``) so the legacy
    client's :class:`~repro.resilience.retry.RetryPolicy` backs off and
    retries the BEGIN_LOAD / BEGIN_EXPORT instead of failing the job.
    ``retry_after_s`` is the server's backoff hint (it floors the
    client's jittered delay); ``reason`` is ``"queue_full"`` (shed
    immediately — the pool's bounded admission queue had no room) or
    ``"queue_timeout"`` (queued, but no slot freed within the pool's
    queue timeout).  In-flight jobs are never aborted by the workload
    manager — throttling happens strictly at admission.
    """

    transient = True
    #: Hyper-Q protocol error code carried in ERROR frames (the repro's
    #: stand-in for the legacy EDW's "delayed by workload rule" codes).
    code = 3149
    #: ceiling on the server's retry-after hint (the queue-depth-scaled
    #: hint in :meth:`repro.wlm.profile.PoolSpec.throttle_hint_s` never
    #: exceeds this) — clients size their admission retry sleep budget
    #: against it so one deeply-hinted delay cannot void the budget.
    MAX_RETRY_AFTER_S = 30.0

    def __init__(self, message: str, pool: str = "",
                 reason: str = "queue_full",
                 retry_after_s: float = 0.0):
        self.pool = pool
        self.reason = reason
        self.retry_after_s = retry_after_s
        super().__init__(message)


class ConnectionLimited(GatewayError):
    """The gateway refused a new connection: ``max_connections`` reached.

    Sent as the very first (and only) frame on an over-limit connection,
    before any LOGON is read, then the socket is closed.  Deliberately
    *transient* like :class:`WlmThrottled`: a legacy feed scheduler that
    floods the gateway with session opens should back off and retry, not
    fail its jobs — the limit protects the node from the unbounded
    thread/memory growth a connection flood would otherwise cause.
    """

    transient = True
    #: Hyper-Q protocol error code carried in ERROR frames (sibling of
    #: the WLM throttle code: both mean "retry later, nothing is lost").
    code = 3159

    def __init__(self, message: str, limit: int = 0,
                 retry_after_s: float = 1.0):
        self.limit = limit
        self.retry_after_s = retry_after_s
        super().__init__(message)


class StreamDriftError(GatewayError):
    """Schema drift on a streaming feed could not be accepted.

    Raised when the feed's drift policy is ``halt``, when the drift is
    structurally unsupported (a source column disappeared), or when an
    ``evolve`` ALTER failed on the target.  The client sees it as an
    ERROR frame carrying :data:`HYPERQ_SCHEMA_DRIFT`; the feed's
    watermark is untouched, so the batch can be replayed once the
    schema disagreement is resolved.
    """

    code = 3811

    def __init__(self, message: str, feed: str = "",
                 events: list | None = None):
        self.feed = feed
        self.events = list(events or [])
        super().__init__(message)


class CircuitOpenError(GatewayError):
    """A circuit breaker rejected the call without attempting it.

    Deliberately *not* transient: when the breaker for a target is open,
    retrying immediately is exactly what the breaker exists to prevent.
    """

    def __init__(self, target: str, retry_after_s: float = 0.0):
        self.target = target
        self.retry_after_s = retry_after_s
        super().__init__(
            f"circuit breaker for {target!r} is open "
            f"(retry in {retry_after_s:.2f}s)")


# ---------------------------------------------------------------------------
# Fault injection (repro.faults)
# ---------------------------------------------------------------------------

class FaultInjected(ReproError):
    """Base class for errors raised by the chaos fault injector.

    ``transient`` drives the resilience layer's retry predicate: transient
    faults model recoverable cloud hiccups (throttling, connection reset),
    permanent ones model hard failures (auth revoked, container deleted).
    """

    transient = False

    def __init__(self, message: str, point: str = "", rule: int = 0):
        self.point = point
        self.rule = rule
        super().__init__(message)


class TransientFault(FaultInjected):
    """An injected recoverable fault — the retry layer may absorb it."""

    transient = True


class PermanentFault(FaultInjected):
    """An injected unrecoverable fault — must surface to the caller."""

    transient = False


#: Hyper-Q error-table code: data conversion failed during DML (Figure 6).
HYPERQ_CONVERSION_ERROR = 3103
#: Hyper-Q error-table code: uniqueness violation detected during DML.
HYPERQ_UNIQUENESS_ERROR = 3805
#: Hyper-Q error-table code: declarative data-quality rule violated
#: during the pre-APPLY check (see :mod:`repro.dq` and docs/DQ.md).
HYPERQ_DQ_VIOLATION = 3807
#: Hyper-Q error-table code: a whole micro-batch routed to the error
#: table because its feed drifted under the ``route-to-error`` policy
#: (see :mod:`repro.stream` and docs/STREAMING.md).
HYPERQ_SCHEMA_DRIFT = StreamDriftError.code
#: Hyper-Q error-table code: max_errors budget exhausted (Figure 6).
HYPERQ_MAX_ERRORS_REACHED = 9057
#: Hyper-Q protocol code: job throttled by workload management (see
#: :class:`WlmThrottled` and docs/WLM.md) — retryable after backoff.
HYPERQ_WLM_THROTTLED = WlmThrottled.code
#: Hyper-Q protocol code: connection refused at the front door because
#: ``max_connections`` was reached (see :class:`ConnectionLimited` and
#: docs/CONCURRENCY.md) — retryable after backoff.
HYPERQ_CONNECTION_LIMITED = ConnectionLimited.code


# ---------------------------------------------------------------------------
# Simulator
# ---------------------------------------------------------------------------

class SimulationError(ReproError):
    """Base class for discrete-event-simulator failures."""


class SimOutOfMemory(SimulationError):
    """The modelled Hyper-Q node exceeded its memory budget.

    Reproduces the experimental run mentioned with Figure 10 where one
    million credits let so many chunks pile up in flight that the node
    crashed before the load completed.
    """

    def __init__(self, message: str, at_time: float, peak_bytes: int):
        self.at_time = at_time
        self.peak_bytes = peak_bytes
        super().__init__(message)
