"""Legacy binary record formats (the over-the-wire data encodings).

The legacy ETL client formats data "according to the format and protocol of
the EDW system" (Section 2).  Two encodings are provided, mirroring the two
families of legacy load formats:

- **VARTEXT** — delimiter-separated text records, one per line.  All fields
  are character data; an *empty* field means SQL NULL (this is the
  "detecting null values, handling empty strings" discrepancy that the
  DataConverter of Section 4 must bridge, because the CDW's CSV input
  distinguishes NULL from the empty string).
- **BINARY** — length-prefixed typed records with a null-indicator bitmap,
  using the legacy system's value encodings (e.g. dates as the classic
  ``(year-1900)*10000 + month*100 + day`` integer).

Both encoders work record-at-a-time so the client can cut chunks on record
boundaries, and both decoders offer a *lenient* mode that yields
:class:`~repro.errors.DataFormatError` objects in place of undecodable
records — the hook for per-tuple error reporting during acquisition.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from decimal import Decimal
from typing import Iterable, Iterator

from repro import values
from repro.errors import DataFormatError
from repro.legacy.types import Layout, LegacyType

__all__ = [
    "FormatSpec",
    "RecordFormat",
    "VartextFormat",
    "BinaryFormat",
    "make_format",
    "DEFAULT_COMPILED",
    "LEGACY_FIELD_COUNT_ERROR",
]

#: legacy error code for a record with the wrong number of fields.
LEGACY_FIELD_COUNT_ERROR = 2673

_DATE_EPOCH_BASE = 1900


@dataclass(frozen=True)
class FormatSpec:
    """A serializable description of a record format.

    Travels inside BEGIN LOAD / BEGIN EXPORT protocol messages so both ends
    agree on the encoding; ``kind`` is ``"vartext"`` or ``"binary"``.
    """

    kind: str
    delimiter: str = "|"

    def to_wire(self) -> str:
        """Serialize for BEGIN LOAD / BEGIN EXPORT metadata."""
        return f"{self.kind}:{self.delimiter}"

    @classmethod
    def from_wire(cls, text: str) -> "FormatSpec":
        kind, _, delim = text.partition(":")
        return cls(kind=kind, delimiter=delim or "|")


#: process-wide default for ``make_format(compiled=None)``.  Benchmarks
#: flip this to run the reference interpreters as an A/B baseline.
DEFAULT_COMPILED = True


def make_format(spec: FormatSpec, layout: Layout,
                compiled: bool | None = None) -> "RecordFormat":
    """Instantiate the encoder/decoder named by ``spec`` for ``layout``.

    With ``compiled`` true (the default via :data:`DEFAULT_COMPILED`),
    returns the layout-compiled codecs from :mod:`repro.legacy.codec`;
    they are subclasses of the reference classes below and byte-identical
    in behaviour, errors included.
    """
    if compiled is None:
        compiled = DEFAULT_COMPILED
    if compiled:
        from repro.legacy import codec

        return codec.compile_format(spec, layout)
    if spec.kind == "vartext":
        return VartextFormat(layout, delimiter=spec.delimiter)
    if spec.kind == "binary":
        return BinaryFormat(layout)
    raise DataFormatError(f"unknown record format {spec.kind!r}")


class RecordFormat:
    """Common interface of the legacy record encodings."""

    def __init__(self, layout: Layout):
        self.layout = layout

    # -- encoding ----------------------------------------------------------

    def encode_record(self, row: tuple) -> bytes:
        """Encode one row as wire bytes."""
        raise NotImplementedError

    def encode_records(self, rows: Iterable[tuple]) -> bytes:
        """Encode many rows back to back."""
        return b"".join(self.encode_record(r) for r in rows)

    # -- decoding ----------------------------------------------------------

    def iter_decode(self, data: bytes) -> Iterator[tuple | DataFormatError]:
        """Yield one decoded row per record; errors replace bad records."""
        raise NotImplementedError

    def decode_records(self, data: bytes) -> list[tuple]:
        """Strict decode: raise on the first malformed record."""
        out: list[tuple] = []
        for item in self.iter_decode(data):
            if isinstance(item, DataFormatError):
                raise item
            out.append(item)
        return out

    def count_records(self, data: bytes) -> int:
        """Number of items :meth:`iter_decode` would yield for ``data``.

        Lets callers size-check a chunk before paying for the decode.
        """
        return sum(1 for _ in self.iter_decode(data))


class VartextFormat(RecordFormat):
    """Delimiter-separated text records, one per ``\\n``-terminated line."""

    def __init__(self, layout: Layout, delimiter: str = "|"):
        super().__init__(layout)
        if len(delimiter) != 1 or delimiter in ("\\", "\n"):
            raise DataFormatError(f"invalid vartext delimiter {delimiter!r}")
        self.delimiter = delimiter

    # -- encoding ----------------------------------------------------------

    def _render_field(self, value, ftype: LegacyType) -> str:
        if value is None:
            return ""
        if isinstance(value, str):
            text = value
        elif isinstance(value, values.Date) and not isinstance(
                value, values.Timestamp):
            text = values.format_date(value)
        elif isinstance(value, values.Timestamp):
            text = value.isoformat(sep=" ")
        elif isinstance(value, (int, float, Decimal)):
            text = str(value)
        else:
            raise DataFormatError(
                f"cannot encode {type(value).__name__} as vartext",
                field=ftype.base)
        escaped = (
            text.replace("\\", "\\\\")
            .replace(self.delimiter, "\\" + self.delimiter)
            .replace("\n", "\\n")
        )
        return escaped

    def encode_record(self, row: tuple) -> bytes:
        """Encode one row as a delimited text line."""
        if len(row) != self.layout.arity:
            raise DataFormatError(
                f"record has {len(row)} fields, layout "
                f"{self.layout.name!r} expects {self.layout.arity}",
                code=LEGACY_FIELD_COUNT_ERROR)
        parts = [
            self._render_field(v, f.type)
            for v, f in zip(row, self.layout.fields)
        ]
        return (self.delimiter.join(parts) + "\n").encode("utf-8")

    # -- decoding ----------------------------------------------------------

    def _split_line(self, line: str) -> list[str | None]:
        fields: list[str | None] = []
        buf: list[str] = []
        i = 0
        while i < len(line):
            ch = line[i]
            if ch == "\\" and i + 1 < len(line):
                nxt = line[i + 1]
                buf.append("\n" if nxt == "n" else nxt)
                i += 2
                continue
            if ch == self.delimiter:
                fields.append("".join(buf))
                buf = []
            else:
                buf.append(ch)
            i += 1
        fields.append("".join(buf))
        # Legacy semantics: an empty vartext field is NULL.
        return [f if f != "" else None for f in fields]

    def iter_decode(self, data: bytes) -> Iterator[tuple | DataFormatError]:
        text = data.decode("utf-8")
        for line in text.split("\n"):
            if line == "":
                continue
            fields = self._split_line(line)
            if len(fields) != self.layout.arity:
                yield DataFormatError(
                    f"record has {len(fields)} fields, layout "
                    f"{self.layout.name!r} expects {self.layout.arity}",
                    code=LEGACY_FIELD_COUNT_ERROR)
                continue
            yield tuple(fields)

    def count_records(self, data: bytes) -> int:
        """Count records without decoding the text.

        UTF-8 multi-byte sequences never contain ``0x0A``, so splitting
        the raw bytes on newlines sees exactly the lines ``iter_decode``
        sees; empty lines are skipped there too.
        """
        return sum(1 for line in data.split(b"\n") if line)


class BinaryFormat(RecordFormat):
    """Length-prefixed typed records with a null-indicator bitmap.

    Record wire layout::

        u16  body length (bytes after this header)
        u8[] null bitmap, ceil(arity / 8) bytes, bit i set => field i NULL
        ...  non-null field payloads, in layout order
    """

    def __init__(self, layout: Layout):
        super().__init__(layout)
        self._bitmap_len = (layout.arity + 7) // 8

    # -- field codecs ------------------------------------------------------

    def _encode_field(self, value, ftype: LegacyType, name: str) -> bytes:
        try:
            if ftype.is_character:
                raw = str(value).encode("utf-8")
                return struct.pack("<H", len(raw)) + raw
            if ftype.base == "BYTEINT":
                return struct.pack("<b", int(value))
            if ftype.base == "SMALLINT":
                return struct.pack("<h", int(value))
            if ftype.base == "INTEGER":
                return struct.pack("<i", int(value))
            if ftype.base == "BIGINT":
                return struct.pack("<q", int(value))
            if ftype.base == "FLOAT":
                return struct.pack("<d", float(value))
            if ftype.base == "DECIMAL":
                raw = str(value).encode("ascii")
                return struct.pack("<H", len(raw)) + raw
            if ftype.base == "DATE":
                encoded = ((value.year - _DATE_EPOCH_BASE) * 10000
                           + value.month * 100 + value.day)
                return struct.pack("<i", encoded)
            if ftype.base == "TIMESTAMP":
                raw = value.isoformat(sep=" ").encode("ascii")
                return struct.pack("<H", len(raw)) + raw
        except (struct.error, AttributeError, ValueError, TypeError) as exc:
            raise DataFormatError(
                f"cannot encode {value!r} as {ftype.render()}: {exc}",
                field=name) from exc
        raise DataFormatError(
            f"no binary encoding for {ftype.render()}", field=name)

    def _decode_field(self, view: memoryview, pos: int,
                      ftype: LegacyType, name: str):
        try:
            if ftype.is_character or ftype.base in ("DECIMAL", "TIMESTAMP"):
                (length,) = struct.unpack_from("<H", view, pos)
                raw = bytes(view[pos + 2:pos + 2 + length])
                if len(raw) != length:
                    raise DataFormatError(
                        f"truncated field {name}", field=name)
                pos += 2 + length
                text = raw.decode("utf-8")
                if ftype.base == "DECIMAL":
                    return values.parse_decimal(text, field=name), pos
                if ftype.base == "TIMESTAMP":
                    return values.parse_timestamp(text, field=name), pos
                return text, pos
            if ftype.base == "BYTEINT":
                (val,) = struct.unpack_from("<b", view, pos)
                return val, pos + 1
            if ftype.base == "SMALLINT":
                (val,) = struct.unpack_from("<h", view, pos)
                return val, pos + 2
            if ftype.base == "INTEGER":
                (val,) = struct.unpack_from("<i", view, pos)
                return val, pos + 4
            if ftype.base == "BIGINT":
                (val,) = struct.unpack_from("<q", view, pos)
                return val, pos + 8
            if ftype.base == "FLOAT":
                (val,) = struct.unpack_from("<d", view, pos)
                return val, pos + 8
            if ftype.base == "DATE":
                (encoded,) = struct.unpack_from("<i", view, pos)
                year = encoded // 10000 + _DATE_EPOCH_BASE
                month = (encoded // 100) % 100
                day = encoded % 100
                return values.Date(year, month, day), pos + 4
        except struct.error as exc:
            raise DataFormatError(
                f"truncated field {name}: {exc}", field=name) from exc
        except ValueError as exc:
            raise DataFormatError(
                f"bad value for field {name}: {exc}", field=name) from exc
        raise DataFormatError(
            f"no binary decoding for {ftype.render()}", field=name)

    # -- records -----------------------------------------------------------

    def encode_record(self, row: tuple) -> bytes:
        """Encode one row in the binary record layout."""
        if len(row) != self.layout.arity:
            raise DataFormatError(
                f"record has {len(row)} fields, layout "
                f"{self.layout.name!r} expects {self.layout.arity}",
                code=LEGACY_FIELD_COUNT_ERROR)
        bitmap = bytearray(self._bitmap_len)
        payload = bytearray()
        for i, (value, fld) in enumerate(zip(row, self.layout.fields)):
            if value is None:
                bitmap[i // 8] |= 1 << (i % 8)
            else:
                payload += self._encode_field(value, fld.type, fld.name)
        body = bytes(bitmap) + bytes(payload)
        return struct.pack("<H", len(body)) + body

    def iter_decode(self, data: bytes) -> Iterator[tuple | DataFormatError]:
        view = memoryview(data)
        pos = 0
        while pos < len(view):
            if pos + 2 > len(view):
                yield DataFormatError("truncated record header")
                return
            (body_len,) = struct.unpack_from("<H", view, pos)
            body_end = pos + 2 + body_len
            if body_end > len(view):
                yield DataFormatError("truncated record body")
                return
            record_view = view[pos + 2:body_end]
            pos = body_end
            yield self._decode_one(record_view)

    def count_records(self, data: bytes) -> int:
        """Count records by walking the length headers only.

        A truncated header or body contributes one item — the error
        object ``iter_decode`` yields before stopping.
        """
        n = len(data)
        pos = 0
        count = 0
        while pos < n:
            if pos + 2 > n:
                return count + 1
            body_end = pos + 2 + (data[pos] | (data[pos + 1] << 8))
            if body_end > n:
                return count + 1
            count += 1
            pos = body_end
        return count

    def _decode_one(self, body: memoryview) -> tuple | DataFormatError:
        if len(body) < self._bitmap_len:
            return DataFormatError("record body shorter than null bitmap")
        bitmap = bytes(body[:self._bitmap_len])
        cursor = self._bitmap_len
        row: list = []
        for i, fld in enumerate(self.layout.fields):
            if bitmap[i // 8] & (1 << (i % 8)):
                row.append(None)
                continue
            try:
                value, cursor = self._decode_field(
                    body, cursor, fld.type, fld.name)
            except DataFormatError as exc:
                return exc
            row.append(value)
        if cursor != len(body):
            return DataFormatError(
                f"record has {len(body) - cursor} trailing bytes",
                code=LEGACY_FIELD_COUNT_ERROR)
        return tuple(row)
