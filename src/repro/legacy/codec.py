"""Compiled row codecs for the legacy wire formats.

:mod:`repro.legacy.datafmt` decodes records with per-field ``if/elif``
dispatch — correct, but the DataConverter pays that interpreter overhead
for every field of every record of every chunk.  This module compiles a
:class:`~repro.legacy.types.Layout` once into specialized encode/decode
closures, the way push-down translators cache per-shape plans:

- **BINARY** — consecutive fixed-width fields are fused into a single
  precomputed :class:`struct.Struct` run, split only at variable-length
  fields (character/DECIMAL/TIMESTAMP payloads).  A record whose null
  bitmap is all zeroes and whose layout is entirely fixed-width decodes
  with one ``unpack_from`` call.
- **VARTEXT** — a line with no backslash escapes splits with
  ``str.split`` instead of the character-at-a-time escape scanner, and
  the encoder only runs the escape replacements when a precompiled
  regex says the rendered text needs them.

Error semantics are byte-identical to the reference implementations by
construction: the fast paths handle the well-formed cases, and *any*
surprise (truncation, bad value, unexpected Python type, arity
mismatch) falls back to the reference code path for that one record, so
the reference classes remain the behavioural oracle.  The equivalence
suite in ``tests/legacy/test_codec_equivalence.py`` holds the two
implementations byte-identical, errors included.
"""

from __future__ import annotations

import datetime as _dt
import functools
import re
import struct
from decimal import Decimal
from typing import Iterable, Iterator

from repro import values
from repro.errors import DataFormatError
from repro.legacy.datafmt import (
    _DATE_EPOCH_BASE,
    LEGACY_FIELD_COUNT_ERROR,
    BinaryFormat,
    FormatSpec,
    VartextFormat,
)
from repro.legacy.types import Layout

__all__ = [
    "CompiledVartextFormat",
    "CompiledBinaryFormat",
    "compile_format",
]


class _Slow(Exception):
    """Internal signal: bail out of a fast path to the reference oracle."""


@functools.lru_cache(maxsize=None)
def _struct(fmt: str) -> struct.Struct:
    """Shared Struct instances — one per distinct format string."""
    return struct.Struct(fmt)


_S_H = _struct("<H")

#: fixed-width struct code and size per binary base type.
_FIXED_CODES = {
    "BYTEINT": ("b", 1),
    "SMALLINT": ("h", 2),
    "INTEGER": ("i", 4),
    "BIGINT": ("q", 8),
    "FLOAT": ("d", 8),
    "DATE": ("i", 4),
}


def compile_format(spec: FormatSpec, layout: Layout):
    """Compile the encoder/decoder named by ``spec`` for ``layout``."""
    if spec.kind == "vartext":
        return CompiledVartextFormat(layout, delimiter=spec.delimiter)
    if spec.kind == "binary":
        return CompiledBinaryFormat(layout)
    raise DataFormatError(f"unknown record format {spec.kind!r}")


# ---------------------------------------------------------------------------
# VARTEXT


class CompiledVartextFormat(VartextFormat):
    """VartextFormat with precompiled render/split fast paths."""

    def __init__(self, layout: Layout, delimiter: str = "|"):
        super().__init__(layout, delimiter)
        self._arity = layout.arity
        # Characters whose presence forces the escape replacements.
        self._esc_search = re.compile(
            "[\\\\\n%s]" % re.escape(delimiter)).search

    # -- encoding ----------------------------------------------------------

    def _fast_text(self, row: tuple) -> str:
        if len(row) != self._arity:
            raise _Slow
        delimiter = self.delimiter
        search = self._esc_search
        parts: list[str] = []
        append = parts.append
        for value in row:
            if value is None:
                append("")
                continue
            kind = type(value)
            if kind is str:
                text = value
            elif kind is int or kind is float or kind is Decimal:
                text = str(value)
            elif kind is _dt.date:
                text = f"{value.year:04d}-{value.month:02d}-{value.day:02d}"
            elif kind is _dt.datetime:
                text = value.isoformat(sep=" ")
            else:
                # bool, value subclasses, unsupported types: let the
                # reference dispatch (and its errors) decide.
                raise _Slow
            if search(text) is not None:
                text = (text.replace("\\", "\\\\")
                        .replace(delimiter, "\\" + delimiter)
                        .replace("\n", "\\n"))
            append(text)
        return delimiter.join(parts) + "\n"

    def encode_record(self, row: tuple) -> bytes:
        try:
            return self._fast_text(row).encode("utf-8")
        except Exception:
            return VartextFormat.encode_record(self, row)

    def encode_records(self, rows: Iterable[tuple]) -> bytes:
        texts: list[str] = []
        append = texts.append
        fast = self._fast_text
        for row in rows:
            try:
                append(fast(row))
            except Exception:
                append(VartextFormat.encode_record(self, row).decode("utf-8"))
        return "".join(texts).encode("utf-8")

    # -- decoding ----------------------------------------------------------

    def iter_decode(self, data: bytes) -> Iterator[tuple | DataFormatError]:
        text = data.decode("utf-8")
        arity = self._arity
        delimiter = self.delimiter
        layout_name = self.layout.name
        split_escaped = self._split_line
        for line in text.split("\n"):
            if not line:
                continue
            if "\\" in line:
                fields = split_escaped(line)
                if len(fields) != arity:
                    yield DataFormatError(
                        f"record has {len(fields)} fields, layout "
                        f"{layout_name!r} expects {arity}",
                        code=LEGACY_FIELD_COUNT_ERROR)
                    continue
                yield tuple(fields)
                continue
            parts = line.split(delimiter)
            if len(parts) != arity:
                yield DataFormatError(
                    f"record has {len(parts)} fields, layout "
                    f"{layout_name!r} expects {arity}",
                    code=LEGACY_FIELD_COUNT_ERROR)
                continue
            if "" in parts:
                yield tuple([p or None for p in parts])
            else:
                yield tuple(parts)


# ---------------------------------------------------------------------------
# BINARY


def _make_fixed_decoder(code: str, width: int, post):
    unpack_from = _struct("<" + code).unpack_from
    if post is None:
        def decode(data, pos, end):
            nxt = pos + width
            if nxt > end:
                raise _Slow
            return unpack_from(data, pos)[0], nxt
    else:
        def decode(data, pos, end):
            nxt = pos + width
            if nxt > end:
                raise _Slow
            return post(unpack_from(data, pos)[0]), nxt
    return decode


def _date_from_epoch(encoded: int) -> _dt.date:
    year = encoded // 10000 + _DATE_EPOCH_BASE
    month = (encoded // 100) % 100
    day = encoded % 100
    return _dt.date(year, month, day)


def _make_var_decoder(base: str, name: str):
    unpack_h = _S_H.unpack_from
    if base == "DECIMAL":
        parse = values.parse_decimal
    elif base == "TIMESTAMP":
        parse = values.parse_timestamp
    else:
        parse = None

    def decode(data, pos, end):
        if pos + 2 > end:
            raise _Slow
        length = unpack_h(data, pos)[0]
        nxt = pos + 2 + length
        if nxt > end:
            raise _Slow
        text = data[pos + 2:nxt].decode("utf-8")
        if parse is not None:
            return parse(text, field=name), nxt
        return text, nxt

    return decode


def _make_char_encoder():
    pack = _S_H.pack

    def encode(value):
        raw = str(value).encode("utf-8")
        return pack(len(raw)) + raw

    return encode


def _make_text_encoder(base: str):
    pack = _S_H.pack
    if base == "DECIMAL":
        def encode(value):
            raw = str(value).encode("ascii")
            return pack(len(raw)) + raw
    else:  # TIMESTAMP
        def encode(value):
            raw = value.isoformat(sep=" ").encode("ascii")
            return pack(len(raw)) + raw
    return encode


def _date_to_epoch(value) -> int:
    return ((value.year - _DATE_EPOCH_BASE) * 10000
            + value.month * 100 + value.day)


def _make_fixed_encoder(code: str, is_date: bool):
    pack = _struct("<" + code).pack
    if is_date:
        def encode(value):
            return pack(_date_to_epoch(value))
    else:
        def encode(value):
            return pack(value)
    return encode


class CompiledBinaryFormat(BinaryFormat):
    """BinaryFormat with fused fixed-width struct runs.

    The layout is compiled into *segments*: maximal runs of consecutive
    fixed-width fields (packed/unpacked with one Struct call when none
    of the run's fields is NULL) interleaved with variable-length field
    closures.  An entirely fixed-width layout additionally gets a
    whole-record Struct used whenever the null bitmap is zero.
    """

    def __init__(self, layout: Layout):
        super().__init__(layout)
        self._arity = layout.arity
        self._compile()

    def _compile(self) -> None:
        dsegments: list[tuple] = []
        esegments: list[tuple] = []
        run: list[tuple] = []  # (index, code, width, is_date, name)

        def flush_run() -> None:
            if not run:
                return
            mask = 0
            codes = []
            posts = []
            dec_fields = []
            enc_fields = []
            indices = []
            datepos = []
            for offset, (i, code, width, is_date, name) in enumerate(run):
                mask |= 1 << i
                codes.append(code)
                post = _date_from_epoch if is_date else None
                posts.append(post)
                dec_fields.append(
                    (i, _make_fixed_decoder(code, width, post)))
                enc_fields.append((i, _make_fixed_encoder(code, is_date)))
                indices.append(i)
                if is_date:
                    datepos.append(offset)
            fused = _struct("<" + "".join(codes))
            posts_t = tuple(posts) if datepos else None
            dsegments.append((0, mask, fused.unpack_from, fused.size,
                              posts_t, tuple(dec_fields)))
            esegments.append((0, tuple(indices), fused.pack,
                              tuple(datepos), tuple(enc_fields)))
            run.clear()

        for i, fld in enumerate(self.layout.fields):
            ftype = fld.type
            if ftype.is_character or ftype.base in ("DECIMAL", "TIMESTAMP"):
                flush_run()
                if ftype.is_character:
                    # Tag 3: plain length-prefixed text, inlined in the
                    # decode loop (no per-field closure call).
                    dsegments.append((3, i))
                    esegments.append((1, i, _make_char_encoder()))
                else:
                    dsegments.append(
                        (1, i, _make_var_decoder(ftype.base, fld.name)))
                    esegments.append((1, i, _make_text_encoder(ftype.base)))
            elif ftype.base in _FIXED_CODES:
                code, width = _FIXED_CODES[ftype.base]
                run.append((i, code, width, ftype.base == "DATE", fld.name))
            else:
                # No binary codec for this base; the reference raises the
                # "no binary encoding/decoding" error per record.
                flush_run()
                dsegments.append((2,))
                esegments.append((2,))
        flush_run()

        self._dsegments = tuple(dsegments)
        self._esegments = tuple(esegments)
        self._decode_zero = self._gen_decode_zero(dsegments)

        # Whole-record fast path: a single fused run covering every field.
        self._whole = None
        self._fixed_prefix = None
        if len(dsegments) == 1 and dsegments[0][0] == 0:
            _, _, unpack_from, size, posts_t, _ = dsegments[0]
            datepos = esegments[0][3]
            self._whole = (unpack_from, size, posts_t)
            self._whole_pack = esegments[0][2]
            self._whole_datepos = datepos
            body_len = self._bitmap_len + size
            if body_len <= 0xFFFF:
                self._fixed_prefix = (
                    _S_H.pack(body_len) + bytes(self._bitmap_len))

    @staticmethod
    def _gen_decode_zero(dsegments: list[tuple]):
        """exec-compile a straight-line decoder for the no-NULLs case.

        With a zero null bitmap every field is present, so the byte walk
        is fully determined by the layout; generating it as one flat
        function removes the segment loop and the per-row result list.
        Any shortfall (truncation, trailing bytes, unsupported base)
        raises ``_Slow`` and the caller falls back.
        """
        src = ["def _decode_zero(data, cursor, end):"]
        env = {"_Slow": _Slow, "_uh": _S_H.unpack_from}
        names: list[str] = []
        for k, seg in enumerate(dsegments):
            tag = seg[0]
            if tag == 0:
                _, _, unpack_from, size, posts, fields = seg
                unpack = f"_u{k}"
                env[unpack] = unpack_from
                run = [f"v{i}" for i, _ in fields]
                src += [f"    nxt = cursor + {size}",
                        "    if nxt > end: raise _Slow",
                        f"    {', '.join(run)}"
                        f"{',' if len(run) == 1 else ''}"
                        f" = {unpack}(data, cursor)",
                        "    cursor = nxt"]
                if posts is not None:
                    for (i, _), post in zip(fields, posts):
                        if post is not None:
                            env[f"_p{i}"] = post
                            src.append(f"    v{i} = _p{i}(v{i})")
                names += run
            elif tag == 3:
                i = seg[1]
                src += ["    nxt = cursor + 2",
                        "    if nxt > end: raise _Slow",
                        "    nxt += _uh(data, cursor)[0]",
                        "    if nxt > end: raise _Slow",
                        f"    v{i} = data[cursor + 2:nxt].decode('utf-8')",
                        "    cursor = nxt"]
                names.append(f"v{i}")
            elif tag == 1:
                _, i, decode = seg
                env[f"_d{i}"] = decode
                src.append(f"    v{i}, cursor = _d{i}(data, cursor, end)")
                names.append(f"v{i}")
            else:
                src.append("    raise _Slow")
        src.append("    if cursor != end: raise _Slow")
        src.append(f"    return ({', '.join(names)}"
                   f"{',' if len(names) == 1 else ''})")
        exec("\n".join(src), env)
        return env["_decode_zero"]

    # -- decoding ----------------------------------------------------------

    def iter_decode(self, data: bytes) -> Iterator[tuple | DataFormatError]:
        n = len(data)
        pos = 0
        unpack_h = _S_H.unpack_from
        decode_body = self._decode_body
        oracle = BinaryFormat._decode_one
        view = None
        while pos < n:
            if pos + 2 > n:
                yield DataFormatError("truncated record header")
                return
            body_end = pos + 2 + unpack_h(data, pos)[0]
            if body_end > n:
                yield DataFormatError("truncated record body")
                return
            start = pos + 2
            pos = body_end
            try:
                yield decode_body(data, start, body_end)
            except Exception:
                # Reference oracle reproduces the exact error item (or
                # re-raises the exact exception, e.g. ExpressionError).
                if view is None:
                    view = memoryview(data)
                yield oracle(self, view[start:body_end])

    def _decode_body(self, data: bytes, start: int, end: int) -> tuple:
        cursor = start + self._bitmap_len
        if cursor > end:
            raise _Slow
        bitmap = int.from_bytes(data[start:cursor], "little")
        if bitmap == 0:
            if self._whole is not None:
                unpack_from, size, posts = self._whole
                if end - cursor != size:
                    raise _Slow
                vals = unpack_from(data, cursor)
                if posts is None:
                    return vals
                out = list(vals)
                for j, post in enumerate(posts):
                    if post is not None:
                        out[j] = post(out[j])
                return tuple(out)
            return self._decode_zero(data, cursor, end)
        row: list = []
        append = row.append
        unpack_h = _S_H.unpack_from
        for seg in self._dsegments:
            tag = seg[0]
            if tag == 0:
                _, mask, unpack_from, size, posts, fields = seg
                if not (bitmap & mask):
                    nxt = cursor + size
                    if nxt > end:
                        raise _Slow
                    vals = unpack_from(data, cursor)
                    cursor = nxt
                    if posts is None:
                        row += vals
                    else:
                        for v, post in zip(vals, posts):
                            append(post(v) if post is not None else v)
                else:
                    for i, decode in fields:
                        if bitmap >> i & 1:
                            append(None)
                        else:
                            v, cursor = decode(data, cursor, end)
                            append(v)
            elif tag == 3:
                i = seg[1]
                if bitmap >> i & 1:
                    append(None)
                else:
                    nxt = cursor + 2
                    if nxt > end:
                        raise _Slow
                    nxt += unpack_h(data, cursor)[0]
                    if nxt > end:
                        raise _Slow
                    append(data[cursor + 2:nxt].decode("utf-8"))
                    cursor = nxt
            elif tag == 1:
                _, i, decode = seg
                if bitmap >> i & 1:
                    append(None)
                else:
                    v, cursor = decode(data, cursor, end)
                    append(v)
            else:
                # Unsupported base type: reference error path.
                raise _Slow
        if cursor != end:
            raise _Slow
        return tuple(row)

    # -- encoding ----------------------------------------------------------

    def encode_record(self, row: tuple) -> bytes:
        try:
            return self._encode_fast(row)
        except Exception:
            return BinaryFormat.encode_record(self, row)

    def _encode_fast(self, row: tuple) -> bytes:
        if len(row) != self._arity:
            raise _Slow
        prefix = self._fixed_prefix
        if prefix is not None and None not in row:
            datepos = self._whole_datepos
            if not datepos:
                return prefix + self._whole_pack(*row)
            vals = list(row)
            for j in datepos:
                vals[j] = _date_to_epoch(vals[j])
            return prefix + self._whole_pack(*vals)
        bitmap = 0
        parts: list[bytes] = []
        append = parts.append
        for seg in self._esegments:
            tag = seg[0]
            if tag == 0:
                _, indices, pack, datepos, fields = seg
                vals = [row[i] for i in indices]
                if None in vals:
                    for i, encode in fields:
                        value = row[i]
                        if value is None:
                            bitmap |= 1 << i
                        else:
                            append(encode(value))
                else:
                    for j in datepos:
                        vals[j] = _date_to_epoch(vals[j])
                    append(pack(*vals))
            elif tag == 1:
                _, i, encode = seg
                value = row[i]
                if value is None:
                    bitmap |= 1 << i
                else:
                    append(encode(value))
            else:
                raise _Slow
        body_len = self._bitmap_len + sum(map(len, parts))
        return (_S_H.pack(body_len)
                + bitmap.to_bytes(self._bitmap_len, "little")
                + b"".join(parts))

    def encode_records(self, rows: Iterable[tuple]) -> bytes:
        out: list[bytes] = []
        append = out.append
        fast = self._encode_fast
        for row in rows:
            try:
                append(fast(row))
            except Exception:
                append(BinaryFormat.encode_record(self, row))
        return b"".join(out)
