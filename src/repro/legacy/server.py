"""The reference legacy EDW server.

This is the ground-truth implementation of the *legacy* system's observable
behaviour, used in parity tests against Hyper-Q:

- it speaks the legacy wire protocol natively;
- load jobs are processed **tuple-at-a-time**: each staged record is bound
  into the job's DML and applied individually; a record that fails data
  conversion goes to the transformation error table (``_ET``, code 2666 —
  Figure 5b) and a record that violates a uniqueness constraint goes to
  the uniqueness-violation table (``_UV``, code 2794 — Figure 5c), after
  which the job simply proceeds (Section 7: "errors in ETL jobs do not
  result in suspending the job");
- export jobs run the SELECT and serve ordered result chunks.

Internally the server reuses the generic relational machinery (catalog,
expression evaluator) — what defines "legacy" is the wire protocol, the
SQL dialect, and the per-tuple error semantics, all of which live here.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.cdw.engine import CdwEngine
from repro.core.frontend import ThreadedFrontend
from repro.errors import (
    BulkExecutionError, CdwError, DataFormatError, ProtocolError,
    ReproError, SqlError,
)
from repro.legacy.client import layout_from_wire
from repro.legacy.datafmt import BinaryFormat, FormatSpec, make_format
from repro.legacy.infer import infer_result_layout
from repro.legacy.protocol import Message, MessageChannel, MessageKind
from repro.legacy.types import Layout
from repro.net import Listener
from repro.obs import get_logger
from repro.sqlxc.nodes import Insert, Select, Statement
from repro.sqlxc.parser import parse_statement
from repro.sqlxc.rewrites import bind_params_to_values

__all__ = ["LegacyServer", "ET_COLUMNS_SQL", "UV_EXTRA_COLUMNS_SQL"]

log = get_logger("legacy.server")

#: schema of a transformation error table (Figure 5b, plus a message).
ET_COLUMNS_SQL = (
    "SEQNO INT, ERRCODE INT, ERRFIELD VARCHAR(128), ERRMSG VARCHAR(512)")
#: columns appended to the target schema for a UV table (Figure 5c).
UV_EXTRA_COLUMNS_SQL = "SEQNO INT, ERRCODE INT"

_UV_CODE = 2794
_ET_CODE = 2666


@dataclass
class _LoadJob:
    job_id: str
    target: str
    et_table: str
    uv_table: str
    layout: Layout
    format_spec: FormatSpec
    chunks: dict[int, bytes] = field(default_factory=dict)
    eof_sessions: set[int] = field(default_factory=set)
    lock: threading.Lock = field(default_factory=threading.Lock)


@dataclass
class _ExportJob:
    job_id: str
    columns: list[str]
    chunks: list[list[tuple]]
    layout: Layout


class LegacyServer:
    """A reference legacy EDW node: listener plus native ETL semantics."""

    def __init__(self, chunk_rows: int = 1000, mtu: int | None = None,
                 listener=None):
        self.engine = CdwEngine(native_unique=True)
        self.listener = listener if listener is not None \
            else Listener(mtu=mtu)
        self.chunk_rows = chunk_rows
        self._jobs: dict[str, _LoadJob] = {}
        self._exports: dict[str, _ExportJob] = {}
        self._jobs_lock = threading.Lock()
        self.frontend: ThreadedFrontend | None = None
        self._running = False
        #: dispatch counters by message kind (monitoring parity with
        #: ``HyperQNode.stats()``).
        self._message_counts: dict[str, int] = {}
        self._connections = 0
        self._jobs_completed = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "LegacyServer":
        """Start the front end; returns self for chaining."""
        self._running = True
        self.frontend = ThreadedFrontend(
            self, self.listener, name="legacy-server")
        self.frontend.start()
        return self

    def stop(self) -> None:
        """Stop accepting connections."""
        self._running = False
        if self.frontend is not None:
            self.frontend.stop()
        self.listener.close()

    def __enter__(self) -> "LegacyServer":
        """Context-manager support: starts the server."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Stop the server on context exit."""
        self.stop()

    def connect(self):
        """Client-side connection factory (pass to the ETL client)."""
        return self.listener.connect()

    def stats(self) -> dict:
        """Operational snapshot (monitoring parity with Hyper-Q)."""
        with self._jobs_lock:
            return {
                "active_jobs": len(self._jobs),
                "active_exports": len(self._exports),
                "completed_jobs": self._jobs_completed,
                "connections": self._connections,
                "messages": dict(self._message_counts),
            }

    # -- connection handling (driven by ThreadedFrontend) -------------------------

    def new_conn(self) -> dict:
        """Session contract: per-connection state (none needed here
        beyond the running total the stats snapshot reports)."""
        with self._jobs_lock:
            self._connections += 1
        log.debug("legacy connection opened")
        return {}

    def wrap_endpoint(self, endpoint):
        """Session contract: no chaos instrumentation on the reference."""
        return endpoint

    def connection_closed(self, conn: dict) -> None:
        """Session contract: jobs survive their connection here (the
        reference node has no admission slots to reclaim)."""
        log.debug("legacy connection closed")

    def handle_message(self, channel, message: Message,
                       conn: dict) -> None:
        """Dispatch one frame; typed failures become ERROR replies."""
        try:
            self._dispatch(channel, message)
        except ReproError as exc:
            log.warning("request failed: %s", exc, extra={
                "kind": message.kind.name,
                "code": getattr(exc, "code", 0)})
            error_meta = {
                "code": getattr(exc, "code", 0),
                "message": str(exc),
            }
            # Echo the request's trace context (if any) so a
            # traced client keeps error replies correlated —
            # same contract as the Hyper-Q gateway.
            traceparent = message.meta.get("traceparent")
            if traceparent:
                error_meta["traceparent"] = traceparent
            channel.send(Message(MessageKind.ERROR, error_meta))

    def _dispatch(self, channel: MessageChannel, message: Message) -> None:
        kind = message.kind
        with self._jobs_lock:
            self._message_counts[kind.name] = \
                self._message_counts.get(kind.name, 0) + 1
        if kind == MessageKind.LOGON:
            channel.send(Message(MessageKind.LOGON_OK))
        elif kind == MessageKind.LOGOFF:
            channel.send(Message(MessageKind.LOGOFF_OK))
        elif kind == MessageKind.SQL_REQUEST:
            self._handle_sql(channel, message)
        elif kind == MessageKind.BEGIN_LOAD:
            self._handle_begin_load(channel, message)
        elif kind == MessageKind.DATA:
            self._handle_data(channel, message)
        elif kind == MessageKind.DATA_EOF:
            self._handle_data_eof(channel, message)
        elif kind == MessageKind.APPLY_DML:
            self._handle_apply(channel, message)
        elif kind == MessageKind.END_LOAD:
            self._handle_end_load(channel, message)
        elif kind == MessageKind.BEGIN_EXPORT:
            self._handle_begin_export(channel, message)
        elif kind == MessageKind.EXPORT_FETCH:
            self._handle_export_fetch(channel, message)
        else:
            raise ProtocolError(f"unexpected message {kind.name}")

    # -- ad-hoc SQL --------------------------------------------------------------------

    def _handle_sql(self, channel: MessageChannel,
                    message: Message) -> None:
        statement = parse_statement(message.meta["sql"], dialect="legacy")
        result = self.engine.execute(statement)
        if result.kind == "rows":
            layout = infer_result_layout(result.columns, result.rows)
            fmt = BinaryFormat(layout)
            channel.send(Message(
                MessageKind.RESULT_SET,
                {"columns": [[f.name, f.type.render()]
                             for f in layout.fields]},
                body=fmt.encode_records(result.rows)))
        else:
            channel.send(Message(
                MessageKind.STMT_OK,
                {"activity_count": result.activity_count}))

    # -- load jobs -------------------------------------------------------------------------

    def _handle_begin_load(self, channel: MessageChannel,
                           message: Message) -> None:
        meta = message.meta
        layout = layout_from_wire(meta["layout"])
        job = _LoadJob(
            job_id=meta["job_id"],
            target=meta["target"],
            et_table=meta["et_table"],
            uv_table=meta["uv_table"],
            layout=layout,
            format_spec=FormatSpec.from_wire(meta["format"]),
        )
        self._create_error_tables(job)
        with self._jobs_lock:
            self._jobs[job.job_id] = job
        log.info("legacy load job started", extra={
            "job_id": job.job_id, "target": job.target})
        channel.send(Message(MessageKind.BEGIN_LOAD_OK,
                             {"job_id": job.job_id}))

    def _create_error_tables(self, job: _LoadJob) -> None:
        self.engine.execute(
            f"CREATE TABLE IF NOT EXISTS {job.et_table} "
            f"({ET_COLUMNS_SQL})")
        target = self.engine.table(job.target)
        uv_columns = ", ".join(
            f"{c.name} {c.ctype.render()}" for c in target.columns)
        self.engine.execute(
            f"CREATE TABLE IF NOT EXISTS {job.uv_table} "
            f"({uv_columns}, {UV_EXTRA_COLUMNS_SQL})")

    def _job(self, job_id: str) -> _LoadJob:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ProtocolError(f"unknown load job {job_id!r}")
        return job

    def _handle_data(self, channel: MessageChannel,
                     message: Message) -> None:
        job = self._job(message.meta["job_id"])
        with job.lock:
            job.chunks[message.meta["seq"]] = message.body
        channel.send(Message(MessageKind.DATA_ACK,
                             {"seq": message.meta["seq"]}))

    def _handle_data_eof(self, channel: MessageChannel,
                         message: Message) -> None:
        job = self._job(message.meta["job_id"])
        with job.lock:
            job.eof_sessions.add(message.meta["session_no"])
        channel.send(Message(MessageKind.DATA_ACK, {"seq": -1}))

    # Tuple-at-a-time application: the defining legacy behaviour. ----------

    def _handle_apply(self, channel: MessageChannel,
                      message: Message) -> None:
        job = self._job(message.meta["job_id"])
        template = parse_statement(message.meta["sql"], dialect="legacy")
        fmt = make_format(job.format_spec, job.layout)
        field_names = job.layout.field_names

        inserted = updated = deleted = 0
        et_errors = uv_errors = 0
        rownum = 0
        with job.lock:
            ordered = [job.chunks[k] for k in sorted(job.chunks)]
        for chunk in ordered:
            for item in fmt.iter_decode(chunk):
                rownum += 1
                if isinstance(item, DataFormatError):
                    self._record_et(job, rownum, item.code,
                                    item.field, str(item))
                    et_errors += 1
                    continue
                bindings = dict(zip(field_names, item))
                bound = bind_params_to_values(template, bindings)
                try:
                    result = self.engine.execute(bound)
                except BulkExecutionError as exc:
                    if exc.kind == "uniqueness":
                        self._record_uv(job, bound, item, rownum)
                        uv_errors += 1
                    else:
                        self._record_et(job, rownum, _ET_CODE,
                                        exc.field, str(exc))
                        et_errors += 1
                    continue
                except (SqlError, CdwError) as exc:
                    self._record_et(job, rownum, _ET_CODE,
                                    getattr(exc, "field", None), str(exc))
                    et_errors += 1
                    continue
                inserted += result.rows_inserted
                updated += result.rows_updated
                deleted += result.rows_deleted
        log.debug("legacy apply done", extra={
            "job_id": job.job_id, "rows_inserted": inserted,
            "et_errors": et_errors, "uv_errors": uv_errors})
        channel.send(Message(MessageKind.APPLY_RESULT, {
            "rows_inserted": inserted,
            "rows_updated": updated,
            "rows_deleted": deleted,
            "et_errors": et_errors,
            "uv_errors": uv_errors,
        }))

    def _record_et(self, job: _LoadJob, rownum: int, code: int,
                   field_name: str | None, message: str) -> None:
        table = self.engine.table(job.et_table)
        table.append_rows([table.coerce_row(
            (rownum, code, field_name, message[:512]))])

    def _record_uv(self, job: _LoadJob, bound_stmt: Statement,
                   raw_item: tuple, rownum: int) -> None:
        """Record the *converted* violating tuple, like Figure 5c."""
        table = self.engine.table(job.uv_table)
        target = self.engine.table(job.target)
        tuple_values: tuple
        if isinstance(bound_stmt, Insert) and bound_stmt.source is not None:
            # Evaluate the insert's expressions to get the converted tuple
            # (conversion already succeeded — only uniqueness failed).
            from repro.cdw.expressions import RowContext, evaluate
            rows = getattr(bound_stmt.source, "rows", None)
            if rows:
                ctx = RowContext()
                raw = tuple(evaluate(e, ctx) for e in rows[0])
                shaped = self.engine._shape_insert_row(
                    target, bound_stmt.columns, raw)
                tuple_values = target.coerce_row(shaped)
            else:
                tuple_values = tuple([None] * target.arity)
        else:
            tuple_values = tuple([None] * target.arity)
        table.append_rows([table.coerce_row(
            tuple_values + (rownum, _UV_CODE))])

    def _handle_end_load(self, channel: MessageChannel,
                         message: Message) -> None:
        with self._jobs_lock:
            self._jobs.pop(message.meta["job_id"], None)
            self._jobs_completed += 1
        log.info("legacy load job completed",
                 extra={"job_id": message.meta["job_id"]})
        channel.send(Message(MessageKind.END_LOAD_OK))

    # -- export jobs ---------------------------------------------------------------------------

    def _handle_begin_export(self, channel: MessageChannel,
                             message: Message) -> None:
        statement = parse_statement(message.meta["sql"], dialect="legacy")
        if not isinstance(statement, Select):
            raise ProtocolError("export job needs a SELECT statement")
        result = self.engine.execute(statement)
        layout = infer_result_layout(result.columns, result.rows)
        chunks = [
            result.rows[i:i + self.chunk_rows]
            for i in range(0, len(result.rows), self.chunk_rows)
        ] or [[]]
        job = _ExportJob(
            job_id=message.meta["job_id"],
            columns=result.columns,
            chunks=chunks,
            layout=layout,
        )
        with self._jobs_lock:
            self._exports[job.job_id] = job
        channel.send(Message(MessageKind.BEGIN_EXPORT_OK, {
            "columns": [[f.name, f.type.render()] for f in layout.fields],
        }))

    def _handle_export_fetch(self, channel: MessageChannel,
                             message: Message) -> None:
        with self._jobs_lock:
            job = self._exports.get(message.meta["job_id"])
        if job is None:
            raise ProtocolError(
                f"unknown export job {message.meta.get('job_id')!r}")
        chunk_no = message.meta["chunk_no"]
        if chunk_no >= len(job.chunks) or (
                chunk_no > 0 and not job.chunks[chunk_no]):
            channel.send(Message(MessageKind.EXPORT_DATA,
                                 {"chunk_no": chunk_no, "eof": True}))
            return
        fmt = BinaryFormat(job.layout)
        body = fmt.encode_records(job.chunks[chunk_no])
        channel.send(Message(
            MessageKind.EXPORT_DATA,
            {"chunk_no": chunk_no, "eof": False,
             "records": len(job.chunks[chunk_no])},
            body=body))
