"""The legacy ETL client utility.

This module is the stand-in for the proprietary load/export tools of the
legacy EDW (the FastLoad/MultiLoad-style utilities of Section 2).  It is
deliberately *dumb about the backend*: it speaks only the legacy wire
protocol of :mod:`repro.legacy.protocol`, chunks input files on record
boundaries, pumps chunks through parallel data sessions with synchronous
per-chunk acknowledgements, and interprets responses in legacy formats.

Because of that, the exact same client (and therefore the exact same job
script) runs against the reference legacy server and against Hyper-Q — the
transparency property the paper's virtualization approach provides.
"""

from __future__ import annotations

import random
import struct
import threading
import time
import uuid
from dataclasses import dataclass, field

from repro.errors import ProtocolError, TransportClosed, WlmThrottled
from repro.legacy.datafmt import FormatSpec, make_format
from repro.legacy.protocol import Message, MessageChannel, MessageKind
from repro.legacy.types import FieldDef, Layout, parse_type
from repro.obs.trace import NULL_TRACER, Tracer
from repro.resilience import (
    CheckpointJournal, RetryPolicy, full_jitter_delay,
)

__all__ = [
    "LegacyEtlClient", "ImportJobSpec", "ExportJobSpec",
    "ImportJobResult", "ExportJobResult", "StatementResult",
    "split_into_chunks",
]


@dataclass
class StatementResult:
    """Outcome of an ad-hoc SQL request."""

    activity_count: int = 0
    columns: list[tuple[str, str]] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)

    @property
    def is_result_set(self) -> bool:
        return bool(self.columns)


@dataclass
class ImportJobSpec:
    """Everything one ``.begin import`` … ``.end load`` block describes."""

    target_table: str
    et_table: str
    uv_table: str
    layout: Layout
    apply_sql: str
    data: bytes
    format_spec: FormatSpec = field(
        default_factory=lambda: FormatSpec("vartext", "|"))
    sessions: int = 2
    chunk_bytes: int = 64 * 1024
    max_errors: int | None = None
    max_retries: int | None = None
    #: data-session checkpoint/restart: how many times a failed session
    #: reconnects and resumes from its last unacknowledged chunk.  The
    #: server side is idempotent, so resending a chunk whose ack was
    #: lost is safe.
    retry_attempts: int = 0
    #: base delay before a session reconnects (full jitter, doubling per
    #: attempt, capped at 32x the base); 0 reconnects immediately.
    reconnect_backoff_s: float = 0.0
    #: stable job identifier — required to restart an interrupted job
    #: against its server-side checkpoint state (default: random).
    job_id: str | None = None
    #: restart an earlier run of ``job_id``: the gateway replays its
    #: checkpoint journal so durable work is not re-done, and this
    #: client skips the chunks the gateway confirms durable (further
    #: narrowed to acks recorded in ``journal_path``, when set).
    resume: bool = False
    #: path of the client-side ack journal (records per-chunk acks so a
    #: whole-process restart knows what this client already sent).
    journal_path: str | None = None
    #: tenant this job runs on behalf of — a workload-managed gateway
    #: classifies the job into a resource pool by it (falls back to the
    #: logon user when empty).
    tenant: str = ""
    #: how many times a WLM_THROTTLED BEGIN is retried before the
    #: throttle propagates to the caller (0 = no admission retry).
    admission_retry_attempts: int = 0
    #: base backoff between admission retries; the server's
    #: retry-after hint floors each delay.
    admission_backoff_s: float = 0.05
    #: continuous-ingestion metadata (repro.stream): a dict with at
    #: least ``feed`` and ``batch_seq``, optionally ``cursor``,
    #: ``event_ts``, ``drift_policy``, and ``watermark_dir``.  When set
    #: the job is one micro-batch of a streaming feed — the gateway may
    #: answer BEGIN_LOAD with ``stream_committed`` (the batch is below
    #: the feed's durable watermark) and the client then skips the
    #: whole cycle (see :attr:`ImportJobResult.stream_committed`).
    stream: dict | None = None


@dataclass
class ImportJobResult:
    """Job status the server reports after the application phase."""

    rows_inserted: int = 0
    rows_updated: int = 0
    rows_deleted: int = 0
    et_errors: int = 0
    uv_errors: int = 0
    #: rows the declarative data-quality precheck routed to the error
    #: table before application (not counted in ``et_errors``).
    dq_routed_rows: int = 0
    chunks_sent: int = 0
    bytes_sent: int = 0
    #: True when the gateway fast-skipped this micro-batch because its
    #: sequence was already below the feed's durable watermark — no
    #: data was sent, no DML ran (streaming replay after a restart).
    stream_committed: bool = False
    #: stream info from the server (watermark, accepted drift, lag).
    stream: dict = field(default_factory=dict)

    @property
    def total_errors(self) -> int:
        return self.et_errors + self.uv_errors


@dataclass
class ExportJobSpec:
    """An export job: run a SELECT and dump the result in legacy format."""

    select_sql: str
    format_spec: FormatSpec = field(
        default_factory=lambda: FormatSpec("vartext", "|"))
    sessions: int = 2
    #: tenant this job runs on behalf of (see ImportJobSpec.tenant).
    tenant: str = ""
    #: admission retries for a WLM_THROTTLED BEGIN_EXPORT.
    admission_retry_attempts: int = 0
    #: base backoff between admission retries (server hint floors it).
    admission_backoff_s: float = 0.05


@dataclass
class ExportJobResult:
    data: bytes = b""
    rows_exported: int = 0
    chunks_fetched: int = 0
    columns: list[tuple[str, str]] = field(default_factory=list)


def split_into_chunks(data: bytes, format_spec: FormatSpec,
                      chunk_bytes: int) -> list[bytes]:
    """Split encoded records into chunks on record boundaries."""
    if chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    if format_spec.kind == "vartext":
        return _split_vartext(data, chunk_bytes)
    if format_spec.kind == "binary":
        return _split_binary(data, chunk_bytes)
    raise ProtocolError(f"unknown format {format_spec.kind!r}")


def _split_vartext(data: bytes, chunk_bytes: int) -> list[bytes]:
    chunks: list[bytes] = []
    start = 0
    while start < len(data):
        end = min(start + chunk_bytes, len(data))
        if end < len(data):
            newline = data.rfind(b"\n", start, end)
            if newline < 0:
                # A single record longer than chunk_bytes: extend forward.
                newline = data.find(b"\n", end)
                if newline < 0:
                    newline = len(data) - 1
            end = newline + 1
        chunks.append(data[start:end])
        start = end
    return chunks


def _split_binary(data: bytes, chunk_bytes: int) -> list[bytes]:
    chunks: list[bytes] = []
    start = 0
    pos = 0
    while pos < len(data):
        if pos + 2 > len(data):
            raise ProtocolError("truncated binary record header in input")
        (body_len,) = struct.unpack_from("<H", data, pos)
        record_end = pos + 2 + body_len
        if record_end > len(data):
            raise ProtocolError("truncated binary record in input")
        if record_end - start >= chunk_bytes:
            chunks.append(data[start:record_end])
            start = record_end
        pos = record_end
    if start < len(data):
        chunks.append(data[start:])
    return chunks


def _layout_to_wire(layout: Layout) -> dict:
    return {
        "name": layout.name,
        "fields": [[f.name, f.type.render()] for f in layout.fields],
    }


def layout_from_wire(payload: dict) -> Layout:
    """Inverse of the layout encoding used in BEGIN_LOAD messages."""
    return Layout(payload["name"], [
        FieldDef(name, parse_type(type_text))
        for name, type_text in payload["fields"]
    ])


def _columns_layout(columns: list[tuple[str, str]]) -> Layout:
    return Layout("__resultset__", [
        FieldDef(name, parse_type(type_text)) for name, type_text in columns
    ])


class LegacyEtlClient:
    """Drives legacy load/export jobs over the legacy wire protocol.

    ``connect`` is any zero-argument callable returning a fresh
    :class:`~repro.net.Endpoint` — typically ``listener.connect`` where the
    listener belongs to either the reference server or a Hyper-Q node.

    Given a ``tracer``, the client opens one ``client.job`` /
    ``client.export`` root span per job and propagates its trace
    context in BEGIN_LOAD / APPLY_DML / BEGIN_EXPORT metadata, so a
    trace-enabled gateway parents its whole span tree under the
    client's — one end-to-end trace across the process boundary.
    """

    def __init__(self, connect, timeout: float | None = 30.0,
                 tracer: Tracer = NULL_TRACER):
        self._connect = connect
        self._timeout = timeout
        self._tracer = tracer
        self._control: MessageChannel | None = None
        self._credentials: tuple[str, str, str] | None = None

    # -- session management --------------------------------------------------

    def logon(self, host: str, user: str, password: str) -> None:
        """Open the control session and authenticate."""
        if self._control is not None:
            raise ProtocolError("already logged on")
        self._credentials = (host, user, password)
        self._control = MessageChannel(self._connect(), timeout=self._timeout)
        self._control.request(
            Message(MessageKind.LOGON,
                    {"host": host, "user": user, "password": password}),
            MessageKind.LOGON_OK)

    def logoff(self) -> None:
        """Close the control session (idempotent)."""
        if self._control is None:
            return
        try:
            self._control.request(
                Message(MessageKind.LOGOFF), MessageKind.LOGOFF_OK)
        finally:
            self._control.close()
            self._control = None

    def _require_control(self) -> MessageChannel:
        if self._control is None:
            raise ProtocolError("not logged on")
        return self._control

    def _open_data_session(self, job_id: str,
                           session_no: int) -> MessageChannel:
        channel = MessageChannel(self._connect(), timeout=self._timeout)
        host, user, password = self._credentials or ("", "", "")
        channel.request(
            Message(MessageKind.LOGON,
                    {"host": host, "user": user, "password": password,
                     "job_id": job_id, "session_no": session_no}),
            MessageKind.LOGON_OK)
        return channel

    # -- ad-hoc SQL ------------------------------------------------------------

    def execute_sql(self, sql: str) -> StatementResult:
        """Run one SQL statement; decode a result set when one comes back."""
        control = self._require_control()
        control.send(Message(MessageKind.SQL_REQUEST, {"sql": sql}))
        response = control.recv()
        if response.kind == MessageKind.STMT_OK:
            return StatementResult(
                activity_count=response.meta.get("activity_count", 0))
        response.expect(MessageKind.RESULT_SET)
        columns = [tuple(c) for c in response.meta["columns"]]
        fmt = make_format(FormatSpec("binary"), _columns_layout(columns))
        rows = fmt.decode_records(response.body)
        return StatementResult(
            activity_count=len(rows), columns=columns, rows=rows)

    # -- import jobs -------------------------------------------------------------

    def _request_admitted(self, control: MessageChannel, message: Message,
                          expect: MessageKind, attempts: int,
                          backoff_s: float) -> Message:
        """Send a BEGIN request, absorbing WLM_THROTTLED with backoff.

        A workload-managed gateway sheds BEGIN requests when the job's
        resource pool is saturated; the shed carries a retry-after hint
        which floors each backoff delay.  Only throttles are retried —
        any other error still surfaces immediately.  The legacy
        utilities behaved exactly this way against a busy EDW: wait,
        retry the logon/begin, eventually give up.
        """
        if attempts <= 0:
            return control.request(message, expect)
        policy = RetryPolicy(
            max_attempts=attempts + 1,
            base_delay_s=backoff_s,
            max_delay_s=max(backoff_s * 32, backoff_s),
            # Size the sleep budget for the worst case of every retry
            # being floored by the server's largest possible hint —
            # otherwise a deeply queued pool could exhaust the budget
            # in a single hinted delay and void the configured retries.
            budget_s=max(attempts * WlmThrottled.MAX_RETRY_AFTER_S,
                         attempts * backoff_s * 32),
            classify=lambda exc: isinstance(exc, WlmThrottled))
        return policy.call(lambda: control.request(message, expect),
                           target="wlm.admit")

    def run_import(self, spec: ImportJobSpec) -> ImportJobResult:
        """Execute a full import job: acquisition then DML application."""
        control = self._require_control()
        job_id = spec.job_id or uuid.uuid4().hex[:12]
        begin_meta = {
            "job_id": job_id,
            "target": spec.target_table,
            "et_table": spec.et_table,
            "uv_table": spec.uv_table,
            "layout": _layout_to_wire(spec.layout),
            "format": spec.format_spec.to_wire(),
            "sessions": spec.sessions,
            # Announcing the DML up front lets an eager-apply gateway
            # start applying durable prefixes before APPLY_DML arrives.
            "apply_sql": spec.apply_sql,
        }
        if spec.max_errors is not None:
            begin_meta["max_errors"] = spec.max_errors
        if spec.max_retries is not None:
            begin_meta["max_retries"] = spec.max_retries
        if spec.tenant:
            begin_meta["tenant"] = spec.tenant
        if spec.resume:
            begin_meta["resume"] = True
        if spec.stream is not None:
            begin_meta["stream"] = spec.stream
        job_span = self._tracer.span(
            "client.job", job_id=job_id, target=spec.target_table)
        try:
            begun = self._request_admitted(
                control,
                Message(MessageKind.BEGIN_LOAD, begin_meta)
                .set_trace_context(job_span),
                MessageKind.BEGIN_LOAD_OK,
                spec.admission_retry_attempts, spec.admission_backoff_s)

            if begun.meta.get("stream_committed"):
                # The feed's durable watermark already covers this
                # batch: the gateway created no job, so there is
                # nothing to pump, apply, or end.
                job_span.set_attribute("stream_committed", True)
                job_span.end()
                return ImportJobResult(
                    stream_committed=True,
                    stream={
                        "committed_seq": begun.meta.get("committed_seq"),
                        "cursor": begun.meta.get("cursor"),
                    })

            journal = None
            if spec.journal_path is not None:
                journal = CheckpointJournal(spec.journal_path,
                                            fresh=not spec.resume)
            # Chunks safe to skip on a restarted job: the gateway's
            # reply lists the chunk seqs whose staged data survived (an
            # ack alone is NOT durability under the immediate-ack
            # pipeline).  The local journal narrows that to chunks this
            # client actually saw acknowledged; anything resent
            # unnecessarily is deduplicated server-side, so skipping
            # conservatively is always safe.
            skip_seqs: set[int] = set()
            if spec.resume:
                skip_seqs = set(begun.meta.get("durable_seqs", ()))
                if journal is not None and journal.acked:
                    skip_seqs &= journal.acked
            chunks = split_into_chunks(
                spec.data, spec.format_spec, spec.chunk_bytes)
            result = ImportJobResult(
                chunks_sent=len(chunks),
                bytes_sent=sum(len(c) for c in chunks))
            try:
                try:
                    self._pump_data(
                        job_id, spec.sessions, chunks,
                        retry_attempts=spec.retry_attempts,
                        reconnect_backoff_s=spec.reconnect_backoff_s,
                        journal=journal, skip_seqs=skip_seqs)
                finally:
                    if journal is not None:
                        journal.close()

                apply_meta = {"job_id": job_id, "sql": spec.apply_sql}
                if spec.max_errors is not None:
                    apply_meta["max_errors"] = spec.max_errors
                if spec.max_retries is not None:
                    apply_meta["max_retries"] = spec.max_retries
                applied = control.request(
                    Message(MessageKind.APPLY_DML, apply_meta)
                    .set_trace_context(job_span),
                    MessageKind.APPLY_RESULT)
            except BaseException:
                # The job is dead on this side: tell the server so it
                # can free the admission slot *now* instead of holding
                # it until the control connection closes.  Checkpointed
                # server state survives the abort, so a resume restart
                # still works.
                self._abort_load(control, job_id)
                raise
            result.rows_inserted = applied.meta.get("rows_inserted", 0)
            result.rows_updated = applied.meta.get("rows_updated", 0)
            result.rows_deleted = applied.meta.get("rows_deleted", 0)
            result.et_errors = applied.meta.get("et_errors", 0)
            result.uv_errors = applied.meta.get("uv_errors", 0)
            result.dq_routed_rows = applied.meta.get(
                "dq_routed_rows", 0)
            result.stream = applied.meta.get("stream", {})

            control.request(
                Message(MessageKind.END_LOAD, {"job_id": job_id}),
                MessageKind.END_LOAD_OK)
        except BaseException:
            job_span.end("error")
            raise
        job_span.end()
        return result

    def end_stream(self, feed: str) -> None:
        """Close a streaming feed on the server.

        Rides END_LOAD with ``stream_end`` — the server releases the
        feed's admission slot and closes its watermark journal.  The
        journal itself is durable: reopening the feed later resumes
        from the committed watermark.
        """
        control = self._require_control()
        control.request(
            Message(MessageKind.END_LOAD,
                    {"job_id": f"stream:{feed}", "stream_end": True,
                     "feed": feed}),
            MessageKind.END_LOAD_OK)

    @staticmethod
    def _abort_load(control: MessageChannel, job_id: str) -> None:
        """Best-effort END_LOAD(abort) for a job that just failed.

        Never raises — the failure that got us here is the one the
        caller must see, and the control connection may already be
        gone (its closure releases the server-side slot anyway).
        """
        try:
            control.request(
                Message(MessageKind.END_LOAD,
                        {"job_id": job_id, "abort": True}),
                MessageKind.END_LOAD_OK)
        except Exception:
            pass

    def _pump_data(self, job_id: str, sessions: int,
                   chunks: list[bytes], retry_attempts: int = 0,
                   reconnect_backoff_s: float = 0.0,
                   journal: CheckpointJournal | None = None,
                   skip_seqs: set[int] | None = None) -> None:
        """Send chunks through parallel sessions, one thread per session.

        Each session is strictly synchronous (send one DATA, wait for the
        DATA_ACK) exactly like the legacy utilities; parallelism comes only
        from running several sessions at once.  With ``retry_attempts``
        a failed session reconnects — after a jittered exponential
        backoff when ``reconnect_backoff_s`` is set — and *resumes* from
        the first chunk whose acknowledgment it never saw
        (checkpoint/restart).  A ``journal`` records acked chunk seqs as
        they arrive, extending the checkpoint across whole-process
        restarts; ``skip_seqs`` (the server-confirmed durable chunks of
        a resumed job) are not sent at all.
        """
        session_count = max(1, min(sessions, len(chunks)) or 1)
        failures: list[BaseException] = []
        backoff_rng = random.Random()
        skip = skip_seqs or set()

        def run_session(session_no: int) -> None:
            pending = [seq
                       for seq in range(session_no, len(chunks),
                                        session_count)
                       if seq not in skip]
            attempts_left = retry_attempts
            attempt_no = 0
            position = 0
            while True:
                channel = None
                try:
                    channel = self._open_data_session(job_id, session_no)
                    while position < len(pending):
                        seq = pending[position]
                        channel.request(
                            Message(MessageKind.DATA,
                                    {"job_id": job_id,
                                     "session_no": session_no,
                                     "seq": seq},
                                    body=chunks[seq]),
                            MessageKind.DATA_ACK)
                        position += 1  # checkpoint: this chunk is acked
                        if journal is not None:
                            journal.record_ack(seq)
                    channel.request(
                        Message(MessageKind.DATA_EOF,
                                {"job_id": job_id,
                                 "session_no": session_no}),
                        MessageKind.DATA_ACK)
                    return
                except TransportClosed as exc:
                    if attempts_left <= 0:
                        failures.append(exc)
                        return
                    attempts_left -= 1
                    attempt_no += 1
                    if reconnect_backoff_s > 0:
                        time.sleep(full_jitter_delay(
                            attempt_no, reconnect_backoff_s,
                            reconnect_backoff_s * 32, backoff_rng))
                    # reconnect and resend from the unacked chunk
                except BaseException as exc:
                    failures.append(exc)
                    return
                finally:
                    if channel is not None:
                        channel.close()

        threads = [
            threading.Thread(target=run_session, args=(i,), daemon=True)
            for i in range(session_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]

    # -- export jobs -------------------------------------------------------------

    def run_export(self, spec: ExportJobSpec) -> ExportJobResult:
        """Execute an export job: SELECT on the server, fetch chunks."""
        control = self._require_control()
        job_id = uuid.uuid4().hex[:12]
        begin_meta = {
            "job_id": job_id,
            "sql": spec.select_sql,
            "format": spec.format_spec.to_wire(),
            "sessions": spec.sessions,
        }
        if spec.tenant:
            begin_meta["tenant"] = spec.tenant
        export_span = self._tracer.span("client.export", job_id=job_id)
        try:
            begun = self._request_admitted(
                control,
                Message(MessageKind.BEGIN_EXPORT, begin_meta)
                .set_trace_context(export_span),
                MessageKind.BEGIN_EXPORT_OK,
                spec.admission_retry_attempts, spec.admission_backoff_s)
        except BaseException:
            export_span.end("error")
            raise
        columns = [tuple(c) for c in begun.meta["columns"]]
        layout = _columns_layout(columns)
        fmt = make_format(spec.format_spec, layout)

        session_count = max(1, spec.sessions)
        collected: dict[int, bytes] = {}
        lock = threading.Lock()
        failures: list[BaseException] = []

        def run_session(session_no: int) -> None:
            try:
                channel = self._open_data_session(job_id, session_no)
                try:
                    chunk_no = session_no
                    while True:
                        response = channel.request(
                            Message(MessageKind.EXPORT_FETCH,
                                    {"job_id": job_id,
                                     "session_no": session_no,
                                     "chunk_no": chunk_no}),
                            MessageKind.EXPORT_DATA)
                        if response.meta.get("eof"):
                            break
                        with lock:
                            collected[chunk_no] = response.body
                        chunk_no += session_count
                finally:
                    channel.close()
            except BaseException as exc:
                failures.append(exc)

        threads = [
            threading.Thread(target=run_session, args=(i,), daemon=True)
            for i in range(session_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            export_span.end("error")
            raise failures[0]
        export_span.end()

        # Chunks arrive in legacy *binary* encoding from the server; the
        # client re-encodes them into the requested output file format.
        binary_fmt = make_format(FormatSpec("binary"), layout)
        out = bytearray()
        rows_exported = 0
        for chunk_no in sorted(collected):
            rows = binary_fmt.decode_records(collected[chunk_no])
            rows_exported += len(rows)
            out += fmt.encode_records(rows)
        return ExportJobResult(
            data=bytes(out), rows_exported=rows_exported,
            chunks_fetched=len(collected), columns=columns)
