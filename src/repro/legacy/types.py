"""Legacy EDW type system.

The legacy system's types appear in two places: ``.field`` declarations in
ETL scripts (Example 2.1) and SQL DDL.  A :class:`Layout` is an ordered list
of :class:`FieldDef` — exactly what a ``.layout``/``.field`` block declares —
and is the schema against which wire records are encoded and decoded.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field as dc_field
from decimal import Decimal

from repro.errors import ScriptError
from repro import values

__all__ = ["LegacyType", "FieldDef", "Layout", "parse_type"]


_TYPE_RE = re.compile(
    r"^\s*([A-Za-z_][A-Za-z_0-9]*)\s*(?:\(\s*(\d+)\s*(?:,\s*(\d+)\s*)?\))?\s*$"
)

#: canonical base-type names the legacy system understands.
_KNOWN_BASES = {
    "VARCHAR", "CHAR", "BYTEINT", "SMALLINT", "INTEGER", "BIGINT",
    "DECIMAL", "FLOAT", "DATE", "TIMESTAMP", "UNICODE",
}

_ALIASES = {
    "INT": "INTEGER",
    "NUMERIC": "DECIMAL",
    "DOUBLE": "FLOAT",
    "CHARACTER": "CHAR",
}


@dataclass(frozen=True)
class LegacyType:
    """A legacy SQL type, e.g. ``VARCHAR(5)`` or ``DECIMAL(10, 2)``."""

    base: str
    length: int | None = None
    scale: int | None = None

    def __post_init__(self):
        """Validate the base type name."""
        if self.base not in _KNOWN_BASES:
            raise ScriptError(f"unknown legacy type {self.base!r}")

    def render(self) -> str:
        """SQL rendering of the type, e.g. ``VARCHAR(5)``."""
        if self.base == "DECIMAL" and self.length is not None:
            scale = self.scale if self.scale is not None else 0
            return f"DECIMAL({self.length},{scale})"
        if self.length is not None:
            return f"{self.base}({self.length})"
        return self.base

    @property
    def is_character(self) -> bool:
        return self.base in ("VARCHAR", "CHAR", "UNICODE")

    @property
    def is_integer(self) -> bool:
        return self.base in ("BYTEINT", "SMALLINT", "INTEGER", "BIGINT")

    def python_type(self) -> type:
        """The Python type values of this legacy type are carried as."""
        if self.is_character:
            return str
        if self.is_integer:
            return int
        if self.base == "DECIMAL":
            return Decimal
        if self.base == "FLOAT":
            return float
        if self.base == "DATE":
            return values.Date
        if self.base == "TIMESTAMP":
            return values.Timestamp
        raise AssertionError(self.base)


def parse_type(text: str) -> LegacyType:
    """Parse a type expression like ``varchar(50)`` from a script or DDL."""
    match = _TYPE_RE.match(text)
    if match is None:
        raise ScriptError(f"cannot parse type expression {text!r}")
    base = match.group(1).upper()
    base = _ALIASES.get(base, base)
    if base not in _KNOWN_BASES:
        raise ScriptError(f"unknown legacy type {base!r}")
    length = int(match.group(2)) if match.group(2) else None
    scale = int(match.group(3)) if match.group(3) else None
    return LegacyType(base, length, scale)


@dataclass(frozen=True)
class FieldDef:
    """One ``.field NAME TYPE;`` declaration inside a ``.layout`` block."""

    name: str
    type: LegacyType

    def render(self) -> str:
        """``NAME TYPE`` rendering for DDL/messages."""
        return f"{self.name} {self.type.render()}"


@dataclass
class Layout:
    """An ordered record layout — the schema of rows on the wire."""

    name: str
    fields: list[FieldDef] = dc_field(default_factory=list)

    def __post_init__(self):
        """Reject duplicate field names."""
        seen: set[str] = set()
        for fld in self.fields:
            key = fld.name.upper()
            if key in seen:
                raise ScriptError(
                    f"layout {self.name!r}: duplicate field {fld.name!r}")
            seen.add(key)

    @property
    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    @property
    def arity(self) -> int:
        return len(self.fields)

    def index_of(self, name: str) -> int:
        """Position of a field by (case-insensitive) name."""
        target = name.upper()
        for i, fld in enumerate(self.fields):
            if fld.name.upper() == target:
                return i
        raise ScriptError(f"layout {self.name!r} has no field {name!r}")

    def field(self, name: str) -> FieldDef:
        """The FieldDef for a field name."""
        return self.fields[self.index_of(name)]
