"""The legacy EDW substrate: script language, wire protocol, client, server.

This package is a from-scratch stand-in for the proprietary legacy data
warehouse stack (a Teradata-like system and its FastLoad/MultiLoad-style
utilities) that the paper virtualizes.  It provides:

- :mod:`repro.legacy.types` — the legacy type system;
- :mod:`repro.legacy.datafmt` — VARTEXT and BINARY record encodings;
- :mod:`repro.legacy.protocol` — the synchronous chunked wire protocol;
- :mod:`repro.legacy.script` — the dot-command ETL scripting language;
- :mod:`repro.legacy.client` — the ETL client utility driving load/export
  sessions (it only speaks the legacy protocol and therefore works
  unmodified against either the reference server or Hyper-Q);
- :mod:`repro.legacy.server` — a reference legacy EDW server used as the
  ground truth in parity tests.
"""

from repro.legacy.types import LegacyType, FieldDef, Layout, parse_type

__all__ = ["LegacyType", "FieldDef", "Layout", "parse_type"]
