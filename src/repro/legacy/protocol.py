"""The legacy EDW wire protocol: frame format, message kinds, Coalescer.

The protocol is *synchronous and chunked*: the client sends one request and
waits for the matching response; during data acquisition each DATA message
must be acknowledged before the next is sent (Section 5: "ETL clients
typically use a synchronous protocol requiring an acknowledgment of one
chunk before sending the next").

Frame layout (little-endian)::

    u16  magic  (0x4C50, "LP")
    u16  kind   (MessageKind)
    u32  meta length
    u32  body length
    ...  meta  — UTF-8 JSON object with the structured fields
    ...  body  — raw bytes (encoded records for DATA / RESULT_SET / ...)

The :class:`Coalescer` reassembles complete frames from the arbitrary byte
chunks a transport delivers — it is the component of the same name in
Figure 2(a), and is used both by the reference legacy server and by
Hyper-Q's Alpha listener.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterator

from repro.errors import (
    ConnectionLimited, ProtocolError, TransportClosed, WlmThrottled,
)
from repro.net import Endpoint
from repro.obs.trace import SpanContext

__all__ = ["MessageKind", "Message", "Coalescer", "MessageChannel",
           "TRACEPARENT_KEY"]

#: metadata key carrying the W3C-traceparent-style trace context on
#: BEGIN_LOAD / APPLY_DML / BEGIN_EXPORT requests (and echoed on WLM
#: throttle replies), stitching client and gateway spans into one
#: end-to-end trace.
TRACEPARENT_KEY = "traceparent"

_MAGIC = 0x4C50
_HEADER = struct.Struct("<HHII")


class MessageKind(IntEnum):
    """Every request/response the legacy protocol knows."""

    LOGON = 1
    LOGON_OK = 2
    LOGOFF = 3
    LOGOFF_OK = 4

    SQL_REQUEST = 10       # ad-hoc SQL (DDL, SELECT, singleton DML)
    STMT_OK = 11           # statement succeeded, meta carries row counts
    RESULT_SET = 12        # meta: columns; body: binary-encoded rows
    ERROR = 13             # meta: code + message

    BEGIN_LOAD = 20        # meta: job, target, error tables, layout, format
    BEGIN_LOAD_OK = 21
    DATA = 22              # body: encoded records; meta: session/seq
    DATA_ACK = 23
    DATA_EOF = 24          # a data session finished sending
    APPLY_DML = 25         # meta: sql, label, max_errors/max_retries
    APPLY_RESULT = 26      # meta: activity counts + error counts
    END_LOAD = 27
    END_LOAD_OK = 28

    BEGIN_EXPORT = 30      # meta: select sql, format, sessions
    BEGIN_EXPORT_OK = 31   # meta: columns of the result
    EXPORT_FETCH = 32      # meta: chunk_no requested
    EXPORT_DATA = 33       # body: encoded records; meta: chunk_no, eof


@dataclass
class Message:
    """One protocol frame: a kind, JSON-able metadata, and a raw body."""

    kind: MessageKind
    meta: dict = field(default_factory=dict)
    body: bytes = b""

    def to_bytes(self) -> bytes:
        """Serialize the message as one wire frame."""
        meta_raw = json.dumps(self.meta, separators=(",", ":")).encode()
        header = _HEADER.pack(_MAGIC, int(self.kind),
                              len(meta_raw), len(self.body))
        return header + meta_raw + self.body

    def expect(self, kind: MessageKind) -> "Message":
        """Assert this message has the given kind; raise the peer's error."""
        if self.kind == MessageKind.ERROR and kind != MessageKind.ERROR:
            if self.meta.get("code") == WlmThrottled.code:
                # Workload-management shedding is a *typed* peer error:
                # the client's admission retry loop catches it and backs
                # off using the server's retry-after hint.
                raise WlmThrottled(
                    str(self.meta.get("message")),
                    pool=self.meta.get("pool", ""),
                    reason=self.meta.get("reason", "queue_full"),
                    retry_after_s=float(
                        self.meta.get("retry_after_s", 0.0)))
            if self.meta.get("code") == ConnectionLimited.code:
                # Front-door shedding: the gateway is at its connection
                # cap.  Typed and transient so session schedulers back
                # off instead of treating a full node as a dead one.
                raise ConnectionLimited(
                    str(self.meta.get("message")),
                    limit=int(self.meta.get("limit", 0)),
                    retry_after_s=float(
                        self.meta.get("retry_after_s", 1.0)))
            raise ProtocolError(
                f"peer error {self.meta.get('code')}: "
                f"{self.meta.get('message')}")
        if self.kind != kind:
            raise ProtocolError(
                f"expected {kind.name}, got {self.kind.name}")
        return self

    def trace_context(self) -> SpanContext | None:
        """The remote trace context carried in the metadata, if any.

        Malformed or absent headers yield ``None`` — propagation never
        fails the message it rode in on.
        """
        return SpanContext.from_traceparent(
            self.meta.get(TRACEPARENT_KEY))

    def set_trace_context(self, span) -> "Message":
        """Stamp a span's context into the metadata (chainable).

        Accepts anything with a ``context`` attribute (a ``Span``, a
        null span, or an existing :class:`SpanContext`); no-ops when
        there is no real context to propagate.
        """
        context = getattr(span, "context", span)
        if isinstance(context, SpanContext) and context.trace_id:
            self.meta[TRACEPARENT_KEY] = context.to_traceparent()
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message({self.kind.name}, meta={self.meta}, "
                f"body={len(self.body)}B)")


class Coalescer:
    """Reassembles complete frames from raw byte chunks.

    Feed it whatever the transport delivers; it buffers partial frames and
    yields :class:`Message` objects as soon as they are complete.
    """

    def __init__(self):
        self._buffer = bytearray()
        #: total raw bytes ever fed (acquisition-rate accounting).
        self.bytes_seen = 0

    def feed(self, data: bytes) -> Iterator[Message]:
        """Consume raw bytes; yield every completed message."""
        self._buffer += data
        self.bytes_seen += len(data)
        while True:
            message = self._try_extract()
            if message is None:
                return
            yield message

    def _try_extract(self) -> Message | None:
        if len(self._buffer) < _HEADER.size:
            return None
        magic, kind, meta_len, body_len = _HEADER.unpack_from(self._buffer)
        if magic != _MAGIC:
            raise ProtocolError(f"bad frame magic 0x{magic:04x}")
        total = _HEADER.size + meta_len + body_len
        if len(self._buffer) < total:
            return None
        meta_raw = bytes(self._buffer[_HEADER.size:_HEADER.size + meta_len])
        body = bytes(self._buffer[_HEADER.size + meta_len:total])
        del self._buffer[:total]
        try:
            meta = json.loads(meta_raw) if meta_raw else {}
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"bad frame metadata: {exc}") from exc
        try:
            message_kind = MessageKind(kind)
        except ValueError as exc:
            raise ProtocolError(f"unknown message kind {kind}") from exc
        return Message(message_kind, meta, body)

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


class MessageChannel:
    """A message-granular view over a byte endpoint.

    Wraps an :class:`~repro.net.Endpoint` with a :class:`Coalescer` so
    callers can ``send``/``recv`` whole messages.  Both the legacy client
    and the reference server use it; Hyper-Q's Alpha process uses the
    Coalescer directly so it can also account for raw acquisition bytes.
    """

    def __init__(self, endpoint: Endpoint, timeout: float | None = 30.0):
        self._endpoint = endpoint
        self._coalescer = Coalescer()
        self._ready: list[Message] = []
        self.timeout = timeout

    def send(self, message: Message) -> None:
        """Send one message over the endpoint."""
        self._endpoint.send_bytes(message.to_bytes())

    def recv(self) -> Message:
        """Block until the next complete message arrives."""
        while not self._ready:
            chunk = self._endpoint.recv_bytes(timeout=self.timeout)
            if chunk is None:
                raise TransportClosed("connection closed mid-message")
            self._ready.extend(self._coalescer.feed(chunk))
        return self._ready.pop(0)

    def recv_or_eof(self) -> Message | None:
        """Like :meth:`recv` but returns ``None`` on a clean EOF."""
        while not self._ready:
            chunk = self._endpoint.recv_bytes(timeout=self.timeout)
            if chunk is None:
                if self._coalescer.pending_bytes:
                    raise TransportClosed("connection closed mid-frame")
                return None
            self._ready.extend(self._coalescer.feed(chunk))
        return self._ready.pop(0)

    def request(self, message: Message, expect: MessageKind) -> Message:
        """Send a request and wait for its (typed) response."""
        self.send(message)
        return self.recv().expect(expect)

    def close(self) -> None:
        """Close the underlying endpoint."""
        self._endpoint.close()
