"""Infer legacy wire types for query-result columns.

Export jobs and ad-hoc result sets travel in the legacy *binary* encoding,
which needs a :class:`~repro.legacy.types.Layout`.  The engines do not
track result types, so both the reference server and Hyper-Q's export path
derive a layout from the result values themselves.
"""

from __future__ import annotations

from decimal import Decimal

from repro import values
from repro.legacy.types import FieldDef, Layout, LegacyType

__all__ = ["infer_legacy_type", "infer_result_layout"]


def infer_legacy_type(column_values: list) -> LegacyType:
    """The narrowest legacy type that can carry every value in a column."""
    kinds = {type(v) for v in column_values if v is not None}
    if not kinds:
        return LegacyType("VARCHAR", 1)
    if kinds <= {bool, int}:
        return LegacyType("BIGINT")
    if kinds <= {bool, int, float}:
        return LegacyType("FLOAT")
    if kinds <= {bool, int, Decimal}:
        return LegacyType("DECIMAL")
    if kinds == {values.Timestamp}:
        return LegacyType("TIMESTAMP")
    # datetime is a subclass of date; a pure-date column has no datetimes.
    if all(isinstance(v, values.Date) and not isinstance(v, values.Timestamp)
           for v in column_values if v is not None):
        return LegacyType("DATE")
    if kinds <= {str}:
        longest = max(len(v) for v in column_values if v is not None)
        return LegacyType("VARCHAR", max(longest, 1))
    # Mixed column: fall back to text wide enough for every rendering.
    longest = max(len(str(v)) for v in column_values if v is not None)
    return LegacyType("VARCHAR", max(longest, 1))


def infer_result_layout(columns: list[str], rows: list[tuple]) -> Layout:
    """Build a layout for a result set from its column names and rows."""
    fields = []
    for i, name in enumerate(columns):
        column_values = [row[i] for row in rows]
        fields.append(FieldDef(name, infer_legacy_type(column_values)))
    return Layout("__resultset__", fields)
