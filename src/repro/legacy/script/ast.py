"""AST of the legacy ETL scripting language."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScriptError
from repro.legacy.datafmt import FormatSpec
from repro.legacy.types import Layout

__all__ = [
    "Command", "LogonCmd", "LogoffCmd", "LayoutDecl", "BeginImportCmd",
    "DmlDecl", "ImportCmd", "EndLoadCmd", "BeginExportCmd", "ExportCmd",
    "EndExportCmd", "SetCmd", "SqlCmd", "Script",
]


@dataclass
class Command:
    """Base class: every command remembers its source line."""

    line: int = field(default=0, kw_only=True)


@dataclass
class LogonCmd(Command):
    """``.logon host/user,password;``"""

    host: str
    user: str
    password: str


@dataclass
class LogoffCmd(Command):
    """``.logoff;``"""


@dataclass
class LayoutDecl(Command):
    """A ``.layout NAME;`` block together with its ``.field`` lines."""

    layout: Layout


@dataclass
class BeginImportCmd(Command):
    """``.begin import tables T errortables ET UV [sessions N];``"""

    target_table: str
    et_table: str
    uv_table: str
    sessions: int = 2


@dataclass
class DmlDecl(Command):
    """``.dml label NAME;`` followed by one legacy SQL statement."""

    label: str
    sql: str


@dataclass
class ImportCmd(Command):
    """``.import infile F format vartext '|' layout L apply D;``"""

    infile: str
    format_spec: FormatSpec
    layout_name: str
    apply_label: str


@dataclass
class EndLoadCmd(Command):
    """``.end load;``"""


@dataclass
class BeginExportCmd(Command):
    """``.begin export [sessions N];``"""

    sessions: int = 2


@dataclass
class ExportCmd(Command):
    """``.export outfile F format vartext '|';`` followed by a SELECT."""

    outfile: str
    format_spec: FormatSpec
    select_sql: str = ""


@dataclass
class EndExportCmd(Command):
    """``.end export;``"""


@dataclass
class SetCmd(Command):
    """``.set NAME VALUE;`` — job tuning knobs (max_errors, max_retries...)."""

    name: str
    value: str


@dataclass
class SqlCmd(Command):
    """A bare SQL statement outside any block (sent as an ad-hoc request)."""

    sql: str


@dataclass
class Script:
    """A parsed job script: the command list plus name-resolved indexes."""

    commands: list[Command] = field(default_factory=list)
    layouts: dict[str, Layout] = field(default_factory=dict)
    dmls: dict[str, DmlDecl] = field(default_factory=dict)

    def layout(self, name: str) -> Layout:
        """Look up a layout by name (case-insensitive)."""
        try:
            return self.layouts[name.upper()]
        except KeyError:
            raise ScriptError(f"undefined layout {name!r}") from None

    def dml(self, label: str) -> DmlDecl:
        """Look up a DML declaration by label (case-insensitive)."""
        try:
            return self.dmls[label.upper()]
        except KeyError:
            raise ScriptError(f"undefined dml label {label!r}") from None
