"""Interpreter: executes a parsed ETL job script via the legacy client.

The interpreter owns no protocol knowledge — it translates script commands
into :class:`~repro.legacy.client.LegacyEtlClient` calls.  Input/output
files come from an in-memory mapping (tests, benchmarks) or from disk.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ScriptError
from repro.legacy.client import (
    ExportJobResult, ExportJobSpec, ImportJobResult, ImportJobSpec,
    LegacyEtlClient, StatementResult,
)
from repro.legacy.script import ast

__all__ = ["ScriptInterpreter", "ScriptResult"]


@dataclass
class ScriptResult:
    """Everything a script run produced, in execution order."""

    imports: list[ImportJobResult] = field(default_factory=list)
    exports: list[ExportJobResult] = field(default_factory=list)
    statements: list[StatementResult] = field(default_factory=list)

    @property
    def last_import(self) -> ImportJobResult:
        if not self.imports:
            raise ScriptError("script ran no import job")
        return self.imports[-1]

    @property
    def last_export(self) -> ExportJobResult:
        if not self.exports:
            raise ScriptError("script ran no export job")
        return self.exports[-1]


@dataclass
class _ImportState:
    begin: ast.BeginImportCmd
    import_cmd: ast.ImportCmd | None = None


@dataclass
class _ExportState:
    begin: ast.BeginExportCmd
    export_cmd: ast.ExportCmd | None = None


class ScriptInterpreter:
    """Runs a parsed script against any backend speaking the legacy protocol.

    ``connect`` is passed to :class:`LegacyEtlClient`; ``files`` maps input
    file names to bytes and receives output files (falling back to
    ``base_dir`` on disk when a name is absent from the mapping).
    """

    def __init__(self, connect, files: dict[str, bytes] | None = None,
                 base_dir: str = ".", chunk_bytes: int = 64 * 1024,
                 timeout: float | None = 30.0):
        self.client = LegacyEtlClient(connect, timeout=timeout)
        self.files = files if files is not None else {}
        self.base_dir = base_dir
        self.chunk_bytes = chunk_bytes
        self.settings: dict[str, str] = {}

    # -- file access ---------------------------------------------------------

    def _read_file(self, name: str) -> bytes:
        if name in self.files:
            return self.files[name]
        path = os.path.join(self.base_dir, name)
        with open(path, "rb") as handle:
            return handle.read()

    def _write_file(self, name: str, data: bytes) -> None:
        self.files[name] = data

    # -- execution -----------------------------------------------------------

    def run(self, script: ast.Script) -> ScriptResult:
        """Execute every command of a parsed script in order."""
        result = ScriptResult()
        import_state: _ImportState | None = None
        export_state: _ExportState | None = None

        for command in script.commands:
            if isinstance(command, ast.LogonCmd):
                self.client.logon(command.host, command.user,
                                  command.password)
            elif isinstance(command, ast.LogoffCmd):
                self.client.logoff()
            elif isinstance(command, ast.LayoutDecl):
                pass  # registered during parsing
            elif isinstance(command, ast.DmlDecl):
                pass  # registered during parsing
            elif isinstance(command, ast.SetCmd):
                self.settings[command.name] = command.value
            elif isinstance(command, ast.SqlCmd):
                result.statements.append(
                    self.client.execute_sql(command.sql))
            elif isinstance(command, ast.BeginImportCmd):
                if import_state or export_state:
                    raise ScriptError(
                        "nested .begin blocks are not allowed",
                        line=command.line)
                import_state = _ImportState(command)
            elif isinstance(command, ast.ImportCmd):
                if import_state is None:
                    raise ScriptError(
                        ".import outside a .begin import block",
                        line=command.line)
                import_state.import_cmd = command
            elif isinstance(command, ast.EndLoadCmd):
                if import_state is None or import_state.import_cmd is None:
                    raise ScriptError(
                        ".end load without a complete import block",
                        line=command.line)
                result.imports.append(
                    self._run_import(script, import_state))
                import_state = None
            elif isinstance(command, ast.BeginExportCmd):
                if import_state or export_state:
                    raise ScriptError(
                        "nested .begin blocks are not allowed",
                        line=command.line)
                export_state = _ExportState(command)
            elif isinstance(command, ast.ExportCmd):
                if export_state is None:
                    raise ScriptError(
                        ".export outside a .begin export block",
                        line=command.line)
                export_state.export_cmd = command
            elif isinstance(command, ast.EndExportCmd):
                if export_state is None or export_state.export_cmd is None:
                    raise ScriptError(
                        ".end export without a complete export block",
                        line=command.line)
                result.exports.append(self._run_export(export_state))
                export_state = None
            else:  # pragma: no cover - parser produces no other commands
                raise ScriptError(
                    f"unhandled command {type(command).__name__}")

        if import_state is not None:
            raise ScriptError(".begin import block never ended")
        if export_state is not None:
            raise ScriptError(".begin export block never ended")
        return result

    def _int_setting(self, name: str) -> int | None:
        value = self.settings.get(name)
        return int(value) if value is not None else None

    def _run_import(self, script: ast.Script,
                    state: _ImportState) -> ImportJobResult:
        import_cmd = state.import_cmd
        assert import_cmd is not None
        layout = script.layout(import_cmd.layout_name)
        dml = script.dml(import_cmd.apply_label)
        chunk_kb = self._int_setting("chunk_kbytes")
        retry_attempts = self._int_setting("retry_attempts")
        spec = ImportJobSpec(
            target_table=state.begin.target_table,
            et_table=state.begin.et_table,
            uv_table=state.begin.uv_table,
            layout=layout,
            apply_sql=dml.sql,
            data=self._read_file(import_cmd.infile),
            format_spec=import_cmd.format_spec,
            sessions=state.begin.sessions,
            chunk_bytes=(chunk_kb * 1024 if chunk_kb
                         else self.chunk_bytes),
            max_errors=self._int_setting("max_errors"),
            max_retries=self._int_setting("max_retries"),
            retry_attempts=retry_attempts or 0,
        )
        return self.client.run_import(spec)

    def _run_export(self, state: _ExportState) -> ExportJobResult:
        export_cmd = state.export_cmd
        assert export_cmd is not None
        spec = ExportJobSpec(
            select_sql=export_cmd.select_sql,
            format_spec=export_cmd.format_spec,
            sessions=state.begin.sessions,
        )
        result = self.client.run_export(spec)
        self._write_file(export_cmd.outfile, result.data)
        return result
