"""Statement-level lexer for the legacy ETL scripting language.

A job script is a sequence of statements terminated by ``;``.  Statements
starting with ``.`` are dot-commands; anything else is a legacy SQL payload
(attached by the parser to the preceding ``.dml label`` or ``.export``).
The lexer honours single-quoted strings (with ``''`` escapes), ``--`` line
comments and ``/* */`` block comments, and records the line number of every
statement for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScriptError

__all__ = ["RawStatement", "split_statements", "split_words"]


@dataclass(frozen=True)
class RawStatement:
    """One ``;``-terminated statement with its 1-based starting line."""

    text: str
    line: int

    @property
    def is_dot_command(self) -> bool:
        return self.text.lstrip().startswith(".")


def split_statements(source: str) -> list[RawStatement]:
    """Split a script into ``;``-terminated statements."""
    statements: list[RawStatement] = []
    buf: list[str] = []
    line = 1
    stmt_line: int | None = None
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            buf.append(ch)
            i += 1
            continue
        if ch == "-" and source.startswith("--", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if ch == "/" and source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise ScriptError("unterminated block comment", line=line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch == "'":
            if stmt_line is None:
                stmt_line = line
            j = i + 1
            while j < n:
                if source[j] == "'":
                    if j + 1 < n and source[j + 1] == "'":
                        j += 2
                        continue
                    break
                if source[j] == "\n":
                    line += 1
                j += 1
            else:
                raise ScriptError("unterminated string literal", line=line)
            buf.append(source[i:j + 1])
            i = j + 1
            continue
        if ch == ";":
            text = "".join(buf).strip()
            if text:
                statements.append(RawStatement(text, stmt_line or line))
            buf = []
            stmt_line = None
            i += 1
            continue
        if stmt_line is None and not ch.isspace():
            stmt_line = line
        buf.append(ch)
        i += 1
    trailing = "".join(buf).strip()
    if trailing:
        raise ScriptError(
            f"statement not terminated by ';': {trailing[:40]!r}",
            line=stmt_line or line)
    return statements


def split_words(text: str) -> list[str]:
    """Split a dot-command into words, keeping quoted strings intact.

    Quoted words keep their quotes so the parser can tell ``'|'`` (a
    delimiter literal) from a bare identifier.  Parenthesized type suffixes
    stay glued to their word (``varchar(5)``, ``decimal(10,2)``) and a
    parenthesized group separated by spaces is re-joined (``varchar (5)``).
    """
    words: list[str] = []
    buf: list[str] = []
    depth = 0
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            j = i + 1
            while j < n:
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        j += 2
                        continue
                    break
                j += 1
            buf.append(text[i:j + 1])
            i = j + 1
            continue
        if ch == "(":
            depth += 1
            buf.append(ch)
        elif ch == ")":
            depth -= 1
            buf.append(ch)
        elif ch.isspace() and depth == 0:
            if buf:
                words.append("".join(buf))
                buf = []
        else:
            buf.append(ch)
        i += 1
    if buf:
        words.append("".join(buf))
    # Re-join a dangling "( ... )" group to the preceding word.
    merged: list[str] = []
    for word in words:
        if word.startswith("(") and merged:
            merged[-1] += word
        else:
            merged.append(word)
    return merged
