"""Parser for the legacy ETL scripting language."""

from __future__ import annotations

from repro.errors import ScriptError
from repro.legacy.datafmt import FormatSpec
from repro.legacy.script import ast
from repro.legacy.script.lexer import RawStatement, split_statements, split_words
from repro.legacy.types import FieldDef, Layout, parse_type

__all__ = ["parse_script"]


def _unquote(word: str) -> str:
    if len(word) >= 2 and word.startswith("'") and word.endswith("'"):
        return word[1:-1].replace("''", "'")
    return word


class _Parser:
    def __init__(self, source: str):
        self.statements = split_statements(source)
        self.script = ast.Script()
        self._current_layout: Layout | None = None
        self._pending_dml: ast.DmlDecl | None = None
        self._pending_export: ast.ExportCmd | None = None

    def parse(self) -> ast.Script:
        for stmt in self.statements:
            if stmt.is_dot_command:
                self._dot_command(stmt)
            else:
                self._sql_payload(stmt)
        if self._pending_dml is not None:
            raise ScriptError(
                f".dml label {self._pending_dml.label!r} has no SQL "
                "statement", line=self._pending_dml.line)
        if self._pending_export is not None:
            raise ScriptError(
                ".export has no SELECT statement",
                line=self._pending_export.line)
        return self.script

    # -- SQL payloads -------------------------------------------------------

    def _sql_payload(self, stmt: RawStatement) -> None:
        if self._pending_dml is not None:
            dml = self._pending_dml
            self._pending_dml = None
            dml.sql = stmt.text
            self.script.dmls[dml.label.upper()] = dml
            self.script.commands.append(dml)
            return
        if self._pending_export is not None:
            export = self._pending_export
            self._pending_export = None
            export.select_sql = stmt.text
            self.script.commands.append(export)
            return
        self.script.commands.append(ast.SqlCmd(stmt.text, line=stmt.line))

    # -- dot commands -------------------------------------------------------

    def _dot_command(self, stmt: RawStatement) -> None:
        if self._pending_dml is not None:
            raise ScriptError(
                f".dml label {self._pending_dml.label!r} must be followed "
                "by a SQL statement", line=stmt.line)
        if self._pending_export is not None:
            raise ScriptError(
                ".export must be followed by a SELECT statement",
                line=stmt.line)
        words = split_words(stmt.text)
        verb = words[0][1:].lower()  # strip the leading dot
        handler = getattr(self, f"_cmd_{verb}", None)
        if handler is None:
            raise ScriptError(f"unknown command .{verb}", line=stmt.line)
        handler(words, stmt.line)

    def _cmd_logon(self, words: list[str], line: int) -> None:
        if len(words) != 2:
            raise ScriptError(".logon expects host/user,password", line=line)
        spec = words[1]
        host, sep, rest = spec.partition("/")
        user, sep2, password = rest.partition(",")
        if not sep or not sep2 or not host or not user:
            raise ScriptError(
                f"malformed .logon spec {spec!r} "
                "(expected host/user,password)", line=line)
        self.script.commands.append(
            ast.LogonCmd(host, user, password, line=line))

    def _cmd_logoff(self, words: list[str], line: int) -> None:
        self.script.commands.append(ast.LogoffCmd(line=line))

    def _cmd_layout(self, words: list[str], line: int) -> None:
        if len(words) != 2:
            raise ScriptError(".layout expects exactly one name", line=line)
        layout = Layout(words[1], [])
        key = layout.name.upper()
        if key in self.script.layouts:
            raise ScriptError(f"duplicate layout {layout.name!r}", line=line)
        self.script.layouts[key] = layout
        self._current_layout = layout
        self.script.commands.append(ast.LayoutDecl(layout, line=line))

    def _cmd_field(self, words: list[str], line: int) -> None:
        if self._current_layout is None:
            raise ScriptError(".field outside a .layout block", line=line)
        if len(words) < 3:
            raise ScriptError(".field expects NAME TYPE", line=line)
        name = words[1]
        type_text = " ".join(words[2:])
        field = FieldDef(name, parse_type(type_text))
        if any(f.name.upper() == name.upper()
               for f in self._current_layout.fields):
            raise ScriptError(
                f"duplicate field {name!r} in layout "
                f"{self._current_layout.name!r}", line=line)
        self._current_layout.fields.append(field)

    def _cmd_begin(self, words: list[str], line: int) -> None:
        if len(words) < 2:
            raise ScriptError(".begin expects import or export", line=line)
        mode = words[1].lower()
        if mode == "import":
            self._begin_import(words[2:], line)
        elif mode == "export":
            self._begin_export(words[2:], line)
        else:
            raise ScriptError(f"unknown .begin mode {mode!r}", line=line)

    def _begin_import(self, words: list[str], line: int) -> None:
        target = et = uv = None
        sessions = 2
        i = 0
        while i < len(words):
            key = words[i].lower()
            if key == "tables":
                target = words[i + 1]
                i += 2
            elif key == "errortables":
                et, uv = words[i + 1], words[i + 2]
                i += 3
            elif key == "sessions":
                sessions = int(words[i + 1])
                i += 2
            else:
                raise ScriptError(
                    f"unexpected word {words[i]!r} in .begin import",
                    line=line)
        if target is None or et is None or uv is None:
            raise ScriptError(
                ".begin import needs 'tables T errortables ET UV'",
                line=line)
        self.script.commands.append(ast.BeginImportCmd(
            target, et, uv, sessions=sessions, line=line))

    def _begin_export(self, words: list[str], line: int) -> None:
        sessions = 2
        i = 0
        while i < len(words):
            key = words[i].lower()
            if key == "sessions":
                sessions = int(words[i + 1])
                i += 2
            else:
                raise ScriptError(
                    f"unexpected word {words[i]!r} in .begin export",
                    line=line)
        self.script.commands.append(
            ast.BeginExportCmd(sessions=sessions, line=line))

    def _cmd_dml(self, words: list[str], line: int) -> None:
        if len(words) != 3 or words[1].lower() != "label":
            raise ScriptError(".dml expects 'label NAME'", line=line)
        label = words[2]
        if label.upper() in self.script.dmls:
            raise ScriptError(f"duplicate dml label {label!r}", line=line)
        self._pending_dml = ast.DmlDecl(label, "", line=line)

    def _parse_format(self, words: list[str], i: int,
                      line: int) -> tuple[FormatSpec, int]:
        kind = words[i].lower()
        if kind == "vartext":
            delim = "|"
            if i + 1 < len(words) and words[i + 1].startswith("'"):
                delim = _unquote(words[i + 1])
                i += 1
            return FormatSpec("vartext", delim), i + 1
        if kind == "binary":
            return FormatSpec("binary"), i + 1
        raise ScriptError(f"unknown format {words[i]!r}", line=line)

    def _cmd_import(self, words: list[str], line: int) -> None:
        infile = None
        format_spec = FormatSpec("vartext", "|")
        layout_name = None
        apply_label = None
        i = 1
        while i < len(words):
            key = words[i].lower()
            if key == "infile":
                infile = _unquote(words[i + 1])
                i += 2
            elif key == "format":
                format_spec, i = self._parse_format(words, i + 1, line)
            elif key == "layout":
                layout_name = words[i + 1]
                i += 2
            elif key == "apply":
                apply_label = words[i + 1]
                i += 2
            else:
                raise ScriptError(
                    f"unexpected word {words[i]!r} in .import", line=line)
        if infile is None or layout_name is None or apply_label is None:
            raise ScriptError(
                ".import needs 'infile F ... layout L apply D'", line=line)
        self.script.commands.append(ast.ImportCmd(
            infile, format_spec, layout_name, apply_label, line=line))

    def _cmd_export(self, words: list[str], line: int) -> None:
        outfile = None
        format_spec = FormatSpec("vartext", "|")
        i = 1
        while i < len(words):
            key = words[i].lower()
            if key == "outfile":
                outfile = _unquote(words[i + 1])
                i += 2
            elif key == "format":
                format_spec, i = self._parse_format(words, i + 1, line)
            else:
                raise ScriptError(
                    f"unexpected word {words[i]!r} in .export", line=line)
        if outfile is None:
            raise ScriptError(".export needs 'outfile F'", line=line)
        self._pending_export = ast.ExportCmd(
            outfile, format_spec, line=line)

    def _cmd_end(self, words: list[str], line: int) -> None:
        if len(words) != 2:
            raise ScriptError(".end expects load or export", line=line)
        mode = words[1].lower()
        if mode == "load":
            self.script.commands.append(ast.EndLoadCmd(line=line))
        elif mode == "export":
            self.script.commands.append(ast.EndExportCmd(line=line))
        else:
            raise ScriptError(f"unknown .end mode {mode!r}", line=line)

    def _cmd_set(self, words: list[str], line: int) -> None:
        if len(words) != 3:
            raise ScriptError(".set expects NAME VALUE", line=line)
        self.script.commands.append(
            ast.SetCmd(words[1].lower(), words[2], line=line))


def parse_script(source: str) -> ast.Script:
    """Parse a legacy ETL job script into a :class:`~...ast.Script`."""
    return _Parser(source).parse()
