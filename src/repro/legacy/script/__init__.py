"""The legacy dot-command ETL scripting language.

This is the proprietary scripting language of Example 2.1 — the thing the
paper says makes pipelines "very difficult and expensive to rewrite for
CDWs".  A job script declares record layouts, DML labels containing legacy
SQL, and import/export commands, e.g.::

    .logon host/user,pass;
    .layout CustLayout;
    .field CUST_ID varchar(5);
    .field CUST_NAME varchar(50);
    .field JOIN_DATE varchar(10);
    .begin import tables PROD.CUSTOMER
        errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
    .dml label InsApply;
    insert into PROD.CUSTOMER values (
        trim(:CUST_ID), trim(:CUST_NAME),
        cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') );
    .import infile input.txt
        format vartext '|' layout CustLayout apply InsApply;
    .end load;

The interpreter executes a parsed script by driving the legacy ETL client;
because the client only speaks the legacy wire protocol, the same script
runs unchanged against the reference legacy server *or* against Hyper-Q —
which is the entire point of the paper.
"""

from repro.legacy.script.ast import (
    Script, LogonCmd, LogoffCmd, LayoutDecl, BeginImportCmd, DmlDecl,
    ImportCmd, EndLoadCmd, BeginExportCmd, ExportCmd, EndExportCmd,
    SetCmd, SqlCmd,
)
from repro.legacy.script.parser import parse_script
from repro.legacy.script.interpreter import ScriptInterpreter, ScriptResult

__all__ = [
    "Script", "LogonCmd", "LogoffCmd", "LayoutDecl", "BeginImportCmd",
    "DmlDecl", "ImportCmd", "EndLoadCmd", "BeginExportCmd", "ExportCmd",
    "EndExportCmd", "SetCmd", "SqlCmd",
    "parse_script", "ScriptInterpreter", "ScriptResult",
]
