"""Memory accounting for the simulated Hyper-Q node.

Every in-flight chunk holds memory from arrival until its bytes are
written to a staging file.  Exceeding the node's budget raises
:class:`~repro.errors.SimOutOfMemory` — reproducing the experimental run
reported with Figure 10 where one million credits let Hyper-Q "run out
of memory and crash before all of the records could be loaded".
"""

from __future__ import annotations

from repro.errors import SimOutOfMemory
from repro.sim.events import Environment

__all__ = ["MemoryModel"]


class MemoryModel:
    """Tracks allocated bytes against a hard limit."""

    def __init__(self, env: Environment, limit_bytes: int | None):
        self.env = env
        self.limit_bytes = limit_bytes
        self.in_use = 0
        self.peak = 0

    def allocate(self, size: int) -> None:
        """Claim bytes; raises SimOutOfMemory over the limit."""
        self.in_use += size
        self.peak = max(self.peak, self.in_use)
        if self.limit_bytes is not None and self.in_use > self.limit_bytes:
            raise SimOutOfMemory(
                f"simulated node exceeded {self.limit_bytes} bytes "
                f"({self.in_use} in use) at t={self.env.now:.3f}s",
                at_time=self.env.now, peak_bytes=self.peak)

    def free(self, size: int) -> None:
        """Release previously allocated bytes."""
        self.in_use -= size
        if self.in_use < 0:
            raise AssertionError("memory accounting went negative")
