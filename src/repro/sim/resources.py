"""Queues and the credit pool for the simulated pipeline."""

from __future__ import annotations

from collections import deque

from repro.sim.events import Environment, Event

__all__ = ["Store", "CreditPool"]


class Store:
    """An unbounded FIFO hand-off between pipeline stages."""

    def __init__(self, env: Environment):
        self.env = env
        self._items: deque = deque()
        self._getters: deque[Event] = deque()

    def put(self, item) -> None:
        """Add an item, waking the oldest waiting getter."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next item."""
        event = self.env.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        """Number of buffered items."""
        return len(self._items)


class CreditPool:
    """The simulated CreditManager: a counted pool with FIFO waiters.

    Mirrors :class:`repro.core.credits.CreditManager` semantics in
    simulated time, including wait-time accounting.
    """

    def __init__(self, env: Environment, size: int):
        self.env = env
        self.size = size
        self.available = size
        self._waiters: deque[tuple[Event, float]] = deque()
        # -- statistics --
        self.acquires = 0
        self.blocked_acquires = 0
        self.total_wait = 0.0
        self.min_available = size
        self.peak_in_flight = 0

    def acquire(self) -> Event:
        """An event that fires once a credit is held."""
        event = self.env.event()
        self.acquires += 1
        if self.available > 0:
            self.available -= 1
            self._note_levels()
            event.succeed()
        else:
            self.blocked_acquires += 1
            self._waiters.append((event, self.env.now))
        return event

    def release(self) -> None:
        """Return a credit, waking the oldest waiter."""
        if self._waiters:
            event, since = self._waiters.popleft()
            self.total_wait += self.env.now - since
            self._note_levels()
            event.succeed()
        else:
            self.available += 1

    def _note_levels(self) -> None:
        self.min_available = min(self.min_available, self.available)
        self.peak_in_flight = max(self.peak_in_flight,
                                  self.size - self.available)
