"""A minimal generator-based discrete-event loop (SimPy-style, from
scratch).

Processes are Python generators that ``yield`` events; the environment
resumes them when the event fires.  Only the primitives the pipeline
model needs are implemented: immediate events, timeouts, and processes
(which are themselves events that fire on return).
"""

from __future__ import annotations

import heapq
from typing import Generator, Iterator

from repro.errors import SimulationError

__all__ = ["Event", "Timeout", "Process", "Environment"]


class Event:
    """Something that will happen; processes can wait on it."""

    __slots__ = ("env", "callbacks", "triggered", "value", "cancelled",
                 "_scheduled")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list = []
        self.triggered = False
        self.cancelled = False
        self._scheduled = False
        self.value = None

    def succeed(self, value=None, delay: float = 0.0) -> "Event":
        """Mark the event triggered (optionally after a delay)."""
        if self.triggered or self._scheduled:
            raise SimulationError("event already triggered")
        self.value = value
        self.env._schedule(self, delay)
        return self

    def cancel(self) -> None:
        """Prevent a scheduled event from firing (used by the CPU pool)."""
        self.cancelled = True


class Timeout(Event):
    """Fires after a simulated delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(env)
        self.env._schedule(self, delay)


class Process(Event):
    """A running generator; fires (with the return value) when it ends."""

    __slots__ = ("_generator",)

    def __init__(self, env: "Environment", generator: Generator):
        super().__init__(env)
        self._generator = generator
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def _resume(self, event: Event) -> None:
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            self.value = stop.value
            if not self.triggered:
                self.env._schedule(self, 0.0)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {type(target).__name__}, expected Event")
        if target.triggered:
            # Already fired: resume on the next loop iteration.
            relay = Event(self.env)
            relay.callbacks.append(self._resume)
            relay.succeed(target.value)
        else:
            target.callbacks.append(self._resume)


class Environment:
    """The event loop: a time-ordered heap of pending events."""

    def __init__(self):
        self.now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0

    # -- primitives -------------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float) -> Timeout:
        """An event firing after the simulated delay."""
        return Timeout(self, delay)

    def process(self, generator: Generator) -> Process:
        """Start a generator as a simulated process."""
        return Process(self, generator)

    # -- scheduling ---------------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        if event.triggered:
            raise SimulationError("event already triggered")
        event._scheduled = True
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence,
                                    event))

    def _pending(self) -> Iterator[Event]:  # pragma: no cover - debug aid
        return (event for _, _, event in self._heap)

    def run(self, until: float | None = None) -> float:
        """Process events until the heap empties (or ``until`` passes).

        Returns the simulated time reached.
        """
        while self._heap:
            at, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if until is not None and at > until:
                # Push back and stop.
                heapq.heappush(self._heap, (at, self._sequence, event))
                self.now = until
                return self.now
            self.now = at
            event.triggered = True
            callbacks, event.callbacks = event.callbacks, []
            for callback in callbacks:
                callback(event)
        return self.now
