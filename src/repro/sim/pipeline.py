"""Simulated acquisition pipeline (the model behind Figures 9 and 10).

The process structure mirrors :mod:`repro.core.pipeline` one-to-one:

- ``sessions`` client sessions transmit chunks synchronously (one ack per
  chunk); the ack path does minimal CPU work and then waits only for a
  credit;
- conversion runs asynchronously on the shared CPU pool (this is where
  core count and run-queue length matter);
- FileWriters return the credit just before writing, write at a
  fluctuating disk bandwidth, and cut files at a threshold;
- finalized files are uploaded over the cloud link (optionally
  compressed), and one in-cloud COPY finishes acquisition;
- fixed setup/teardown time is spent regardless of resources — the
  Amdahl term that caps speedup efficiency in Figure 9.

Chunk memory is held from credit acquisition until the bytes hit disk;
with an oversized credit pool the converted backlog grows without bound
and the simulated node dies with :class:`~repro.errors.SimOutOfMemory`,
like the one-million-credit run described with Figure 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimOutOfMemory
from repro.sim.cpu import SharedCpuPool
from repro.sim.events import Environment
from repro.sim.memory import MemoryModel
from repro.sim.resources import CreditPool, Store

__all__ = ["SimParams", "SimReport", "simulate_acquisition"]


@dataclass
class SimParams:
    """Workload and machine parameters for one simulated load job."""

    rows: int = 10_000_000
    row_bytes: int = 500
    chunk_bytes: int = 1 << 20
    sessions: int = 8
    # -- machine --
    cores: int = 8
    quantum: float = 0.004
    switch_cost: float = 0.000_02
    credits: int = 32
    memory_limit_bytes: int | None = 64 << 30
    # -- per-stage costs --
    receive_cpu_per_byte: float = 2e-10
    convert_cpu_per_byte: float = 1.2e-9
    convert_cpu_per_row: float = 3e-7
    client_bandwidth_per_session: float = 120e6
    disk_bandwidth: float = 400e6
    disk_fluctuation: float = 0.2
    filewriters: int = 2
    file_threshold_bytes: int = 64 << 20
    link_bandwidth: float = 200e6
    compression: bool = False
    compression_ratio: float = 2.5
    compression_cpu_per_byte: float = 8e-10
    copy_bandwidth: float = 1.5e9
    csv_expansion: float = 1.05
    session_setup: float = 0.5
    fixed_setup: float = 6.0
    fixed_teardown: float = 4.0
    #: model the rejected synchronous design of Section 5: the ack (and
    #: therefore the client's next chunk) waits until the chunk's bytes
    #: are written to disk.
    synchronous_ack: bool = False

    @property
    def total_bytes(self) -> int:
        return self.rows * self.row_bytes

    @property
    def chunk_count(self) -> int:
        return max(1, math.ceil(self.total_bytes / self.chunk_bytes))


@dataclass
class SimReport:
    """What one simulated run measured."""

    total_time: float = 0.0
    acquisition_time: float = 0.0
    setup_teardown_time: float = 0.0
    peak_memory_bytes: int = 0
    peak_runnable_tasks: int = 0
    credit_blocked_acquires: int = 0
    credit_total_wait: float = 0.0
    files_uploaded: int = 0
    crashed: bool = False
    crash_time: float | None = None

    @property
    def throughput_bytes_per_s(self) -> float:
        if self.acquisition_time <= 0:
            return 0.0
        return self._bytes / self.acquisition_time

    _bytes: int = 0


def simulate_acquisition(params: SimParams) -> SimReport:
    """Run one simulated load job and report its timings."""
    env = Environment()
    cpu = SharedCpuPool(env, params.cores, params.quantum,
                        params.switch_cost)
    credits = CreditPool(env, params.credits)
    memory = MemoryModel(env, params.memory_limit_bytes)
    report = SimReport()
    report._bytes = params.total_bytes

    chunk_count = params.chunk_count
    last_chunk_bytes = (params.total_bytes
                        - (chunk_count - 1) * params.chunk_bytes)
    rows_per_chunk = params.rows / chunk_count

    writer_stores = [Store(env) for _ in range(params.filewriters)]
    upload_store = Store(env)
    flush_acks = Store(env)
    upload_acks = Store(env)
    chunks_written = Store(env)  # one token per chunk that reached disk

    state = {
        "acq_start": None,
        "acq_end": None,
        "files_finalized": 0,
        "writer_buffers": [0.0] * params.filewriters,
        "writer_records": [0] * params.filewriters,
    }
    chunk_done: dict[int, object] = {}

    def chunk_size(index: int) -> float:
        return (last_chunk_bytes if index == chunk_count - 1
                else params.chunk_bytes)

    def disk_rate(writer_no: int) -> float:
        """Fluctuating disk bandwidth (deterministic wave)."""
        wobble = params.disk_fluctuation * math.sin(
            env.now * 0.7 + writer_no * 1.3)
        return params.disk_bandwidth * (1.0 + wobble)

    # -- converter -------------------------------------------------------------

    def converter(index: int, raw: float):
        work = (raw * params.convert_cpu_per_byte
                + rows_per_chunk * params.convert_cpu_per_row)
        yield cpu.compute(work)
        csv = raw * params.csv_expansion
        memory.allocate(int(csv))
        memory.free(int(raw))
        writer_stores[index % params.filewriters].put((index, csv))

    # -- sessions -----------------------------------------------------------------

    def session(session_no: int):
        yield env.timeout(params.session_setup)
        for index in range(session_no, chunk_count, params.sessions):
            raw = chunk_size(index)
            # client transmission (synchronous per session)
            yield env.timeout(raw / params.client_bandwidth_per_session)
            # minimal ack-path processing; this is network/kernel work on
            # a fast path, not competing in the converter CPU pool.
            yield env.timeout(raw * params.receive_cpu_per_byte)
            # back-pressure point
            yield credits.acquire()
            memory.allocate(int(raw))
            if params.synchronous_ack:
                done = env.event()
                chunk_done[index] = done
                env.process(converter(index, raw))
                # rejected design: hold the ack until the write lands.
                yield done
            else:
                env.process(converter(index, raw))
            # the DATA_ACK goes out here; next loop iteration models the
            # client sending its next chunk.

    # -- filewriters -----------------------------------------------------------------

    def filewriter(writer_no: int):
        store = writer_stores[writer_no]
        while True:
            item = yield store.get()
            if item == "FLUSH":
                buffered = state["writer_buffers"][writer_no]
                if buffered > 0:
                    state["writer_buffers"][writer_no] = 0.0
                    state["files_finalized"] += 1
                    upload_store.put(buffered)
                flush_acks.put(writer_no)
                return
            index, csv = item
            credits.release()  # just before the write (Figure 4)
            yield env.timeout(csv / disk_rate(writer_no))
            memory.free(int(csv))
            state["writer_buffers"][writer_no] += csv
            if state["writer_buffers"][writer_no] \
                    >= params.file_threshold_bytes:
                upload_store.put(state["writer_buffers"][writer_no])
                state["writer_buffers"][writer_no] = 0.0
                state["files_finalized"] += 1
            done = chunk_done.pop(index, None)
            if done is not None:
                done.succeed()
            chunks_written.put(index)

    # -- uploader -----------------------------------------------------------------------

    def uploader():
        while True:
            item = yield upload_store.get()
            if item == "STOP":
                return
            size = item
            if params.compression:
                yield cpu.compute(size * params.compression_cpu_per_byte)
                size /= params.compression_ratio
            yield env.timeout(size / params.link_bandwidth)
            report.files_uploaded += 1
            upload_acks.put(True)

    # -- coordinator ------------------------------------------------------------------------

    def coordinator():
        yield env.timeout(params.fixed_setup)
        # The acquisition phase includes per-session setup: Section 9
        # attributes the Figure 9 efficiency degradation to "the setup
        # and teardown overhead associated with the acquisition phase".
        state["acq_start"] = env.now
        for i in range(params.sessions):
            env.process(session(i))
        for j in range(params.filewriters):
            env.process(filewriter(j))
        env.process(uploader())
        for _ in range(chunk_count):
            yield chunks_written.get()
        # flush partial files
        for store in writer_stores:
            store.put("FLUSH")
        for _ in range(params.filewriters):
            yield flush_acks.get()
        for _ in range(state["files_finalized"]):
            yield upload_acks.get()
        upload_store.put("STOP")
        # the in-cloud COPY
        total_csv = params.total_bytes * params.csv_expansion
        yield env.timeout(total_csv / params.copy_bandwidth)
        state["acq_end"] = env.now
        yield env.timeout(params.fixed_teardown)

    main = env.process(coordinator())
    try:
        env.run()
    except SimOutOfMemory as oom:
        report.crashed = True
        report.crash_time = oom.at_time
        report.total_time = oom.at_time
        report.peak_memory_bytes = memory.peak
        report.peak_runnable_tasks = cpu.peak_runnable
        report.credit_blocked_acquires = credits.blocked_acquires
        report.credit_total_wait = credits.total_wait
        return report
    if not main.triggered:
        raise AssertionError("simulation ended before the job completed")
    report.total_time = env.now
    start = state["acq_start"] if state["acq_start"] is not None else 0.0
    end = state["acq_end"] if state["acq_end"] is not None else env.now
    report.acquisition_time = max(end - start, 0.0)
    report.setup_teardown_time = report.total_time - report.acquisition_time
    report.peak_memory_bytes = memory.peak
    report.peak_runnable_tasks = cpu.peak_runnable
    report.credit_blocked_acquires = credits.blocked_acquires
    report.credit_total_wait = credits.total_wait
    return report
