"""A processor-sharing CPU pool with per-process overhead.

Models the Hyper-Q host machine for Figures 9 and 10:

- ``cores`` parallel cores; with ``k`` runnable tasks each task advances
  at rate ``min(1, cores / k)`` (ideal processor sharing);
- when ``k > cores`` the OS time-slices: each quantum ``q`` pays a
  context-switch cost ``c``, and the per-process footprint (run-queue
  management, cache/TLB pressure) grows with the backlog.  We use the
  first-order efficiency model::

      efficiency(k) = 1 / (1 + (c/q) * max(0, k - cores) / cores)

  which is ~1 while tasks fit the cores, decays slowly for moderate
  oversubscription, and collapses once hundreds of thousands of runnable
  processes exist — reproducing the Figure 10 plateau-then-degrade shape
  ("eventually, the per-process overhead (i.e., context switching)
  inevitably begins to dominate the cost of the actual work").

Implementation: *virtual-time* processor sharing.  All runnable tasks
progress at the same instantaneous rate, so a single virtual clock that
advances at that rate orders completions; each task finishes when the
virtual clock reaches ``V_admission + work``.  Every operation is then
O(log k) on a heap — the pool stays exact yet handles hundreds of
thousands of concurrent tasks (needed for the Figure 10 sweep).
"""

from __future__ import annotations

import heapq

from repro.sim.events import Environment, Event

__all__ = ["SharedCpuPool"]


class SharedCpuPool:
    """Event-driven processor-sharing pool with virtual-time accounting."""

    def __init__(self, env: Environment, cores: int,
                 quantum: float = 0.004, switch_cost: float = 0.000_02):
        if cores < 1:
            raise ValueError("need at least one core")
        self.env = env
        self.cores = cores
        self.quantum = quantum
        self.switch_cost = switch_cost
        self._virtual = 0.0
        self._last_update = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._timer: Event | None = None
        # -- statistics --
        self.tasks_completed = 0
        self.busy_time = 0.0
        self.peak_runnable = 0

    # -- public API ------------------------------------------------------------

    def compute(self, work: float) -> Event:
        """An event that fires when ``work`` seconds of CPU are done."""
        done = self.env.event()
        if work <= 0:
            done.succeed()
            return done
        self._advance()
        self._sequence += 1
        heapq.heappush(
            self._heap, (self._virtual + work, self._sequence, done))
        self.peak_runnable = max(self.peak_runnable, len(self._heap))
        self._reschedule()
        return done

    @property
    def runnable(self) -> int:
        return len(self._heap)

    def rate_for(self, k: int) -> float:
        """Per-task progress rate with ``k`` runnable tasks (exposed for
        tests and for analytic cross-checks)."""
        if k == 0:
            return 0.0
        share = min(1.0, self.cores / k)
        oversubscribed = max(0, k - self.cores)
        efficiency = 1.0 / (
            1.0 + (self.switch_cost / self.quantum)
            * oversubscribed / self.cores)
        return share * efficiency

    # -- internals -----------------------------------------------------------------

    def _advance(self) -> None:
        dt = self.env.now - self._last_update
        self._last_update = self.env.now
        k = len(self._heap)
        if dt <= 0 or k == 0:
            return
        self._virtual += dt * self.rate_for(k)
        self.busy_time += dt * min(k, self.cores)

    def _reschedule(self) -> None:
        if self._timer is not None and not self._timer.triggered:
            self._timer.cancel()
        self._timer = None
        if not self._heap:
            return
        rate = self.rate_for(len(self._heap))
        next_finish = self._heap[0][0]
        delay = max((next_finish - self._virtual) / rate, 0.0)
        self._timer = self.env.timeout(delay)
        self._timer.callbacks.append(self._on_timer)

    def _on_timer(self, _event: Event) -> None:
        self._advance()
        while self._heap and self._heap[0][0] <= self._virtual + 1e-12:
            _, _, done = heapq.heappop(self._heap)
            self.tasks_completed += 1
            done.succeed()
        self._reschedule()
