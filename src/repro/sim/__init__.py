"""Discrete-event simulator of the Hyper-Q acquisition pipeline.

Figures 9 and 10 of the paper sweep machine-level resources — CPU cores
and the CreditManager pool — at scales (16-core servers, 97 GB loads, up
to one million credits) that a test process cannot exercise directly.
This package provides a from-scratch discrete-event simulation of exactly
the mechanisms those experiments measure:

- :mod:`repro.sim.events` — a generator-based event loop (processes,
  timeouts) in the SimPy style, built from scratch;
- :mod:`repro.sim.resources` — FIFO stores and a credit pool;
- :mod:`repro.sim.cpu` — a processor-sharing CPU pool with a per-process
  context-switch/overhead model (the effect that dominates Figure 10's
  tail) and configurable core count (Figure 9);
- :mod:`repro.sim.memory` — memory accounting with an OOM limit (the
  one-million-credit crash mentioned with Figure 10);
- :mod:`repro.sim.pipeline` — the acquisition pipeline model: sessions,
  credit-gated asynchronous conversion, FileWriters with fluctuating disk
  bandwidth, upload, and COPY, with fixed setup/teardown costs (the
  Amdahl term behind Figure 9's efficiency drop at 16 cores).
"""

from repro.sim.events import Environment, Process, Timeout
from repro.sim.resources import CreditPool, Store
from repro.sim.cpu import SharedCpuPool
from repro.sim.memory import MemoryModel
from repro.sim.pipeline import SimParams, SimReport, simulate_acquisition

__all__ = [
    "Environment", "Process", "Timeout", "CreditPool", "Store",
    "SharedCpuPool", "MemoryModel", "SimParams", "SimReport",
    "simulate_acquisition",
]
