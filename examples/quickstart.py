"""Quickstart: virtualize the paper's Example 2.1 end to end.

Builds a cloud data warehouse and a Hyper-Q node, then runs the *legacy*
ETL job script from the paper — unmodified, through the legacy client —
against the CDW.  Prints the loaded target table and both error tables,
reproducing Figures 5 and 6.

Run:  python examples/quickstart.py
"""

from repro.cdw import CdwEngine, CloudStore
from repro.core import HyperQConfig, HyperQNode
from repro.legacy.script import ScriptInterpreter, parse_script

JOB_SCRIPT = """
.logon cdw-host/etl_user,secret;

create table PROD.CUSTOMER (
    CUST_ID varchar(5) not null,
    CUST_NAME varchar(50),
    JOIN_DATE date,
    unique (CUST_ID));

.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);

.begin import tables PROD.CUSTOMER
    errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
.dml label InsApply;
insert into PROD.CUSTOMER values (
    trim(:CUST_ID), trim(:CUST_NAME),
    cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') );
.import infile input.txt
    format vartext '|' layout CustLayout
    apply InsApply;
.end load;

.logoff;
"""

#: Figure 5(a): rows 2-3 have unparseable dates; row 4 duplicates row
#: 1's key; rows 1 and 5 are clean.
INPUT_FILE = b"""\
123|Smith|2012-01-01
456|Brown|xxxx
789|Brown|yyyyy
123|Jones|2012-12-01
157|Jones|2012-12-01
"""


def show(title, engine, sql):
    print(f"\n{title}")
    result = engine.execute(sql)
    print("  " + " | ".join(result.columns))
    for row in result.rows:
        print("  " + " | ".join("NULL" if v is None else str(v)
                                for v in row))


def main():
    store = CloudStore()
    engine = CdwEngine(store=store)
    config = HyperQConfig(converters=2, filewriters=2, credits=8)

    with HyperQNode(engine, store, config) as node:
        print("Running the legacy job script through Hyper-Q...")
        interpreter = ScriptInterpreter(
            node.connect, files={"input.txt": INPUT_FILE})
        result = interpreter.run(parse_script(JOB_SCRIPT))

        job = result.last_import
        print(f"\nJob status: {job.rows_inserted} inserted, "
              f"{job.et_errors} transformation errors, "
              f"{job.uv_errors} uniqueness violations "
              f"({job.chunks_sent} chunks, {job.bytes_sent} bytes)")

        show("Target table (Figure 5d):", engine,
             "SELECT * FROM PROD.CUSTOMER ORDER BY CUST_ID")
        show("Transformation errors (Figure 5b):", engine,
             "SELECT SEQNO, ERRCODE, ERRFIELD FROM PROD.CUSTOMER_ET "
             "ORDER BY SEQNO")
        show("Uniqueness violations (Figure 5c):", engine,
             "SELECT * FROM PROD.CUSTOMER_UV")

        metrics = node.completed_jobs[-1]
        print(f"\nPhases: acquisition {metrics.acquisition_s * 1e3:.1f} ms,"
              f" application {metrics.application_s * 1e3:.1f} ms,"
              f" other {metrics.other_s * 1e3:.1f} ms")

    # Second run with a tight error budget: Figure 6.
    store2 = CloudStore()
    engine2 = CdwEngine(store=store2)
    with HyperQNode(engine2, store2, config) as node:
        script = JOB_SCRIPT.replace(
            ".begin import", ".set max_errors 2;\n.begin import")
        ScriptInterpreter(
            node.connect, files={"input.txt": INPUT_FILE}
        ).run(parse_script(script))
        show("\nError table with adaptive handling, max_errors=2 "
             "(Figure 6):", engine2,
             "SELECT ERRCODE, ERRFIELD, ERRMSG FROM PROD.CUSTOMER_ET")


if __name__ == "__main__":
    main()
