"""qInsight-style upfront workload analysis (Section 8).

Generates a small corpus of legacy job scripts — most using ordinary
constructs, a few containing things the cross compiler cannot translate —
and prints the migration-readiness report: coverage percentage and the
exact statements that must be rewritten upfront, mirroring the case
study's "less than 1% of the queries in ETL jobs had to be rewritten
manually" finding and the lesson to "address query rewrites early on".

Run:  python examples/workload_analysis.py
"""

from repro.qinsight import WorkloadAnalyzer

STANDARD_JOB = """
.logon cdw/etl,secret;
create table STG_{name} (
    ID varchar(10) not null, AMOUNT decimal(12,2), TS_DAY varchar(10),
    unique (ID));
.layout L{name};
.field ID varchar(10);
.field AMOUNT varchar(14);
.field TS_DAY varchar(10);
.begin import tables STG_{name}
    errortables STG_{name}_ET STG_{name}_UV;
.dml label Ins;
insert into STG_{name} values (
    trim(:ID), cast(:AMOUNT as decimal(12,2)),
    cast(:TS_DAY as DATE format 'YYYY-MM-DD') );
.import infile {name}.txt format vartext '|' layout L{name} apply Ins;
.end load;
.begin export;
.export outfile {name}_out.txt format vartext '|';
select ID, ZEROIFNULL(AMOUNT) from STG_{name} where AMOUNT > 0;
.end export;
.logoff;
"""

PROBLEM_JOBS = {
    # a numeric FORMAT cast: no CDW equivalent, needs a manual rewrite
    "finance_legacy_fmt": """
.logon cdw/etl,secret;
.dml label Odd;
insert into FIN values (cast(:AMT as integer format 'ZZZ9'));
.import infile fin.txt format vartext '|' layout L apply Odd;
.end load;
.logoff;
""",
    # an administrative statement the gateway does not speak
    "grants": """
.logon cdw/etl,secret;
GRANT SELECT ON PROD.SALES TO reporting_role;
.logoff;
""",
}


def main():
    corpus = {
        f"nightly_{i:03d}": STANDARD_JOB.replace("{name}", f"T{i:03d}")
        for i in range(60)
    }
    corpus.update(PROBLEM_JOBS)

    analyzer = WorkloadAnalyzer()
    report = analyzer.analyze_corpus(corpus)
    print(report.render())
    print(f"Paper's observation: '<1% of the queries had to be "
          f"rewritten manually'.")
    print(f"This corpus: {1 - report.ok_fraction:.2%} of statements "
          f"need attention, all highly localized.")


if __name__ == "__main__":
    main()
