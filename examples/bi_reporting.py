"""BI-side virtualization: legacy analytical queries against the CDW.

Figure 1 shows the two halves of an EDW ecosystem: ETL feeding data in,
and BI tools querying it.  The paper stresses that "replatforming the
ETL pipelines has to go hand in hand with replatforming the BI
environment ... since they operate on the same data."  This example
loads data through a virtualized ETL job and then runs legacy-dialect
*reporting* queries (SEL abbreviations, ZEROIFNULL, FORMAT casts,
derived tables, UNION) through the same Hyper-Q node — both sides of
the ecosystem against one consistent data model.

Run:  python examples/bi_reporting.py
"""

import random

from repro.cdw import CdwEngine, CloudStore
from repro.core import HyperQConfig, HyperQNode
from repro.legacy.client import ImportJobSpec, LegacyEtlClient
from repro.legacy.types import FieldDef, Layout, parse_type

REPORTS = [
    ("Revenue by region",
     "sel REGION, SUM(AMOUNT) from SALES group by REGION order by 2 desc"),
    ("Null-safe averages (legacy ZEROIFNULL)",
     "sel REGION, AVG(ZEROIFNULL(DISCOUNT)) from SALES "
     "group by REGION order by REGION"),
    ("Top day via derived table",
     "sel t.SALE_DATE, t.TOTAL from "
     "(sel SALE_DATE, SUM(AMOUNT) as TOTAL from SALES "
     "group by SALE_DATE) t order by t.TOTAL desc limit 3"),
    ("Regions active early or late (UNION)",
     "sel REGION from SALES where EXTRACT(MONTH FROM SALE_DATE) = 1 "
     "union sel REGION from SALES "
     "where EXTRACT(MONTH FROM SALE_DATE) = 12"),
    ("Large transactions per region (correlated subquery)",
     "sel REGION, COUNT(*) from SALES s1 where AMOUNT > "
     "(sel AVG(AMOUNT) from SALES) group by REGION order by REGION"),
]


def load_sales(client: LegacyEtlClient) -> int:
    client.execute_sql(
        "create table SALES (TXN varchar(10) not null, "
        "REGION varchar(6), SALE_DATE date, AMOUNT decimal(10,2), "
        "DISCOUNT decimal(6,2), unique (TXN))")
    layout = Layout("SalesLayout", [
        FieldDef("TXN", parse_type("varchar(10)")),
        FieldDef("REGION", parse_type("varchar(6)")),
        FieldDef("SALE_DATE", parse_type("varchar(10)")),
        FieldDef("AMOUNT", parse_type("varchar(12)")),
        FieldDef("DISCOUNT", parse_type("varchar(12)")),
    ])
    rng = random.Random(99)
    lines = []
    for i in range(800):
        region = rng.choice(["north", "south", "east", "west"])
        month = rng.choice([1, 3, 6, 9, 12])
        day = 1 + rng.randrange(28)
        amount = rng.randrange(100, 50_000) / 100
        discount = "" if rng.random() < 0.4 else \
            f"{rng.randrange(0, 500) / 100:.2f}"
        lines.append(f"T{i:07d}|{region}|2026-{month:02d}-{day:02d}|"
                     f"{amount:.2f}|{discount}")
    data = ("\n".join(lines) + "\n").encode()
    result = client.run_import(ImportJobSpec(
        target_table="SALES", et_table="SALES_ET", uv_table="SALES_UV",
        layout=layout,
        apply_sql="insert into SALES values (trim(:TXN), :REGION, "
                  "cast(:SALE_DATE as DATE format 'YYYY-MM-DD'), "
                  "cast(:AMOUNT as decimal(10,2)), "
                  "cast(:DISCOUNT as decimal(6,2)))",
        data=data, sessions=4, chunk_bytes=64 * 1024))
    return result.rows_inserted


def main():
    store = CloudStore()
    engine = CdwEngine(store=store)
    with HyperQNode(engine, store, HyperQConfig(credits=16)) as node:
        client = LegacyEtlClient(node.connect)
        client.logon("cdw", "bi", "secret")
        loaded = load_sales(client)
        print(f"ETL side: loaded {loaded} sales records "
              "through the virtualized pipeline.\n")
        print("BI side: legacy reporting queries, cross compiled "
              "in real time:\n")
        for title, sql in REPORTS:
            result = client.execute_sql(sql)
            print(f"-- {title}")
            print(f"   {sql}")
            for row in result.rows[:4]:
                print("   " + " | ".join(
                    "NULL" if v is None else str(v) for v in row))
            print()
        client.logoff()


if __name__ == "__main__":
    main()
