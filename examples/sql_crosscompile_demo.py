"""SQL cross-compilation walkthrough (Section 6's query rewriting).

Shows what the Protocol Cross Compiler does to the legacy SQL sprinkled
through ETL pipelines: host-variable binding over the staging table,
FORMAT-cast and function rewrites, type mapping, and the legacy upsert
to MERGE transformation.

Run:  python examples/sql_crosscompile_demo.py
"""

from repro.sqlxc import (
    bind_params_to_columns, parse_statement, render, to_cdw, transpile,
)

PLAIN_STATEMENTS = [
    "create table T (ID integer, NAME unicode(30), RATIO float)",
    "sel NAME, ZEROIFNULL(RATIO) from T where NAME like 'A%'",
    "select CAST(D AS DATE FORMAT 'MM/DD/YYYY') from EVENTS",
    "select INDEX(NAME, 'x'), POSITION('y' IN NAME) from T",
]

DML_WITH_PARAMS = [
    ("insert into PROD.CUSTOMER values (trim(:CUST_ID), "
     "trim(:CUST_NAME), cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'))",
     ["CUST_ID", "CUST_NAME", "JOIN_DATE"]),
    ("update PROD.BALANCE set AMOUNT = AMOUNT + cast(:DELTA as "
     "decimal(10,2)) where PROD.BALANCE.ACCT = trim(:ACCT)",
     ["ACCT", "DELTA"]),
    ("update T set V = :V where T.K = :K "
     "else insert into T values (:K, :V)",
     ["K", "V"]),
]


def main():
    print("=" * 72)
    print("Plain statements (legacy dialect -> CDW dialect)")
    print("=" * 72)
    for sql in PLAIN_STATEMENTS:
        print(f"\nlegacy: {sql}")
        print(f"cdw:    {transpile(sql)}")

    print()
    print("=" * 72)
    print("Job DML: host variables bound over the staging table "
          "(alias 's'),")
    print("then rewritten for the CDW — the application-phase shape")
    print("=" * 72)
    for sql, fields in DML_WITH_PARAMS:
        statement = parse_statement(sql, dialect="legacy")
        bound = bind_params_to_columns(statement, fields, "s")
        rewritten = to_cdw(bound)
        print(f"\nlegacy: {sql}")
        print(f"cdw:    {render(rewritten, 'cdw')}")


if __name__ == "__main__":
    main()
