"""Adaptive error handling demo (Section 7).

Loads an error-riddled file through Hyper-Q under different
``max_errors`` budgets and shows how the error table shifts from
per-tuple reports to range reports as the budget tightens — and how much
application time that saves (the trade-off behind Figure 11 and the
max_errors knob).

Run:  python examples/error_handling_demo.py
"""

from repro.bench import build_stack, run_workload_through_hyperq
from repro.core import HyperQConfig
from repro.workloads import make_workload

ROWS = 2_000
ERROR_RATE = 0.08


def run_budget(max_errors):
    workload = make_workload(rows=ROWS, row_bytes=150, seed=42,
                             error_rate=ERROR_RATE, table="DEMO.T")
    stack = build_stack(config=HyperQConfig(converters=2, filewriters=2,
                                            credits=16))
    try:
        metrics = run_workload_through_hyperq(
            stack, workload, max_errors=max_errors)
        individual = stack.engine.query(
            "SELECT COUNT(*) FROM DEMO.T_ET WHERE ERRCODE = 3103")[0][0]
        ranges = stack.engine.query(
            "SELECT COUNT(*) FROM DEMO.T_ET WHERE ERRCODE = 9057")[0][0]
        sample = stack.engine.query(
            "SELECT ERRMSG FROM DEMO.T_ET LIMIT 3")
    finally:
        stack.close()
    return metrics, individual, ranges, sample


def main():
    print(f"Loading {ROWS} rows with ~{ERROR_RATE:.0%} bad dates through "
          "Hyper-Q under different max_errors budgets.\n")
    print(f"{'max_errors':>10s} {'loaded':>7s} {'tuple_errs':>10s} "
          f"{'range_errs':>10s} {'dml_stmts':>9s} {'app_s':>7s}")
    for budget in (10_000, 100, 20, 5):
        metrics, individual, ranges, sample = run_budget(budget)
        print(f"{budget:10d} {metrics.rows_inserted:7d} "
              f"{individual:10d} {ranges:10d} "
              f"{metrics.dml_statements:9d} "
              f"{metrics.application_s:7.2f}")
    print("\nSample error messages from the tightest budget:")
    for (message,) in sample:
        print(f"  {message}")
    print("\nObservation: tight budgets trade error granularity "
          "(ranges instead of row numbers) for application-phase time — "
          "exactly the knob Section 7 describes.")


if __name__ == "__main__":
    main()
