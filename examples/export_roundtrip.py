"""Export-job virtualization demo (Figure 2b).

Loads reference data into the CDW through Hyper-Q, then runs a legacy
*export* job: the SELECT executes on the CDW, the TDFCursor buffers
ordered result chunks, parallel legacy sessions fetch them, and the
client writes a legacy-format file.  Finally the exported file is
re-imported into a second table to demonstrate the round trip is exact,
including NULL handling.

Run:  python examples/export_roundtrip.py
"""

from repro.cdw import CdwEngine, CloudStore
from repro.core import HyperQConfig, HyperQNode
from repro.legacy.client import (
    ExportJobSpec, ImportJobSpec, LegacyEtlClient,
)
from repro.legacy.types import FieldDef, Layout, parse_type


def main():
    store = CloudStore()
    engine = CdwEngine(store=store)
    config = HyperQConfig(converters=2, filewriters=1, credits=8,
                          export_chunk_rows=7)

    with HyperQNode(engine, store, config) as node:
        client = LegacyEtlClient(node.connect)
        client.logon("cdw", "etl", "secret")

        client.execute_sql(
            "create table INVENTORY (SKU varchar(8) not null, "
            "QTY integer, LAST_SOLD date, unique (SKU))")
        layout = Layout("InvLayout", [
            FieldDef("SKU", parse_type("varchar(8)")),
            FieldDef("QTY", parse_type("varchar(8)")),
            FieldDef("LAST_SOLD", parse_type("varchar(10)")),
        ])
        rows = []
        for i in range(25):
            last_sold = f"2026-06-{i % 28 + 1:02d}" if i % 5 else ""
            rows.append(f"SKU{i:04d}|{i * 3}|{last_sold}")
        data = ("\n".join(rows) + "\n").encode()

        load = client.run_import(ImportJobSpec(
            target_table="INVENTORY", et_table="INV_ET",
            uv_table="INV_UV", layout=layout,
            apply_sql="insert into INVENTORY values (:SKU, "
                      "cast(:QTY as integer), "
                      "cast(:LAST_SOLD as DATE format 'YYYY-MM-DD'))",
            data=data, sessions=2))
        print(f"Loaded {load.rows_inserted} rows "
              f"(empty LAST_SOLD fields became SQL NULL)")

        export = client.run_export(ExportJobSpec(
            "sel SKU, QTY, LAST_SOLD from INVENTORY "
            "where QTY > 10 order by SKU",
            sessions=3))
        print(f"Exported {export.rows_exported} rows in "
              f"{export.chunks_fetched} chunks via 3 parallel sessions")
        print("First export lines:")
        for line in export.data.decode().splitlines()[:3]:
            print(f"  {line}")

        # Round trip: re-import the exported file.
        client.execute_sql(
            "create table INVENTORY_COPY (SKU varchar(8), QTY integer, "
            "LAST_SOLD date)")
        reimport_layout = Layout("CopyLayout", [
            FieldDef("SKU", parse_type("varchar(8)")),
            FieldDef("QTY", parse_type("varchar(12)")),
            FieldDef("LAST_SOLD", parse_type("varchar(10)")),
        ])
        client.run_import(ImportJobSpec(
            target_table="INVENTORY_COPY", et_table="COPY_ET",
            uv_table="COPY_UV", layout=reimport_layout,
            apply_sql="insert into INVENTORY_COPY values (:SKU, "
                      "cast(:QTY as integer), "
                      "cast(:LAST_SOLD as DATE format 'YYYY-MM-DD'))",
            data=export.data, sessions=2))

        original = engine.query(
            "SELECT SKU, QTY, LAST_SOLD FROM INVENTORY WHERE QTY > 10 "
            "ORDER BY SKU")
        copied = engine.query(
            "SELECT SKU, QTY, LAST_SOLD FROM INVENTORY_COPY ORDER BY SKU")
        print(f"\nRound-trip check: {len(copied)} rows re-imported; "
              f"identical to source: {original == copied}")
        client.logoff()


if __name__ == "__main__":
    main()
