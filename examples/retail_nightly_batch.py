"""The Section 8 case study, scaled down: a retailer's nightly batch.

The paper's customer runs 127 batch groups under a strict SLA (start
after midnight, finish by 6 a.m.), with dependencies controlling the
execution order.  This example builds a scaled version of that nightly
batch — sales, inventory, and finance pipelines per region, feeding
consolidated reporting tables — as ordinary legacy job scripts, resolves
the dependency DAG topologically, runs every group through one Hyper-Q
node, and reports the per-group phase breakdown plus the (scaled) SLA
verdict.

Run:  python examples/retail_nightly_batch.py
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cdw import CdwEngine, CloudStore
from repro.core import HyperQConfig, HyperQNode
from repro.legacy.script import ScriptInterpreter, parse_script

REGIONS = ["NORTH", "SOUTH", "EAST", "WEST"]
ROWS_PER_REGION = 400
SLA_SECONDS = 60.0  # scaled stand-in for the midnight-to-6am window


@dataclass
class BatchGroup:
    """One batch group: a job script plus its upstream dependencies."""

    name: str
    script: str
    input_files: dict[str, bytes] = field(default_factory=dict)
    depends_on: list[str] = field(default_factory=list)


def sales_file(region: str, seed: int) -> bytes:
    rng = random.Random(seed)
    lines = []
    for i in range(ROWS_PER_REGION):
        store_no = rng.randrange(40)
        amount = rng.randrange(100, 99999) / 100
        day = rng.randrange(28) + 1
        lines.append(
            f"{region}-{i:05d}|{store_no:03d}|2026-06-{day:02d}|{amount}")
    return ("\n".join(lines) + "\n").encode()


def sales_group(region: str, seed: int) -> BatchGroup:
    script = f"""
.logon cdw/batch,secret;
create table STG_SALES_{region} (
    TXN_ID varchar(14) not null,
    STORE_NO integer,
    SALE_DATE date,
    AMOUNT decimal(10,2),
    unique (TXN_ID));
.layout SalesLayout;
.field TXN_ID varchar(14);
.field STORE_NO varchar(4);
.field SALE_DATE varchar(10);
.field AMOUNT varchar(12);
.begin import tables STG_SALES_{region}
    errortables STG_SALES_{region}_ET STG_SALES_{region}_UV sessions 2;
.dml label Ins;
insert into STG_SALES_{region} values (
    trim(:TXN_ID), cast(:STORE_NO as integer),
    cast(:SALE_DATE as DATE format 'YYYY-MM-DD'),
    cast(:AMOUNT as decimal(10,2)) );
.import infile sales_{region}.txt format vartext '|'
    layout SalesLayout apply Ins;
.end load;
.logoff;
"""
    return BatchGroup(
        name=f"LOAD_SALES_{region}",
        script=script,
        input_files={f"sales_{region}.txt": sales_file(region, seed)},
    )


def consolidate_group() -> BatchGroup:
    """Depends on every regional load; pure in-warehouse SQL."""
    unions = []
    for region in REGIONS:
        unions.append(
            f"insert into DAILY_SALES "
            f"select '{region}', STORE_NO, SALE_DATE, AMOUNT "
            f"from STG_SALES_{region};")
    script = (
        ".logon cdw/batch,secret;\n"
        "create table DAILY_SALES (REGION varchar(6), STORE_NO integer, "
        "SALE_DATE date, AMOUNT decimal(10,2));\n"
        + "\n".join(unions) + "\n.logoff;\n")
    return BatchGroup(
        name="CONSOLIDATE_SALES",
        script=script,
        depends_on=[f"LOAD_SALES_{r}" for r in REGIONS],
    )


def reporting_group() -> BatchGroup:
    script = """
.logon cdw/batch,secret;
create table STORE_TOTALS (STORE_NO integer, TOTAL decimal(14,2));
insert into STORE_TOTALS
    select STORE_NO, SUM(AMOUNT) from DAILY_SALES group by STORE_NO;
.begin export sessions 2;
.export outfile store_totals.txt format vartext '|';
select STORE_NO, TOTAL from STORE_TOTALS order by STORE_NO;
.end export;
.logoff;
"""
    return BatchGroup(
        name="REPORT_STORE_TOTALS",
        script=script,
        depends_on=["CONSOLIDATE_SALES"],
    )


def topological_order(groups: list[BatchGroup]) -> list[BatchGroup]:
    by_name = {g.name: g for g in groups}
    done: list[str] = []
    visiting: set[str] = set()

    def visit(name: str) -> None:
        if name in done:
            return
        if name in visiting:
            raise ValueError(f"dependency cycle through {name}")
        visiting.add(name)
        for dep in by_name[name].depends_on:
            visit(dep)
        visiting.discard(name)
        done.append(name)

    for group in groups:
        visit(group.name)
    return [by_name[name] for name in done]


def main():
    rng_seed = 2026
    groups = [sales_group(region, rng_seed + i)
              for i, region in enumerate(REGIONS)]
    groups.append(consolidate_group())
    groups.append(reporting_group())

    store = CloudStore()
    engine = CdwEngine(store=store)
    config = HyperQConfig(converters=4, filewriters=2, credits=16)

    import time
    with HyperQNode(engine, store, config) as node:
        batch_start = time.perf_counter()
        print(f"Nightly batch: {len(groups)} groups "
              f"(paper's customer: 127), SLA {SLA_SECONDS:.0f}s scaled\n")
        print(f"{'group':24s} {'rows':>6s} {'errors':>6s} "
              f"{'acq_ms':>8s} {'app_ms':>8s}")
        shared_files: dict[str, bytes] = {}
        for group in topological_order(groups):
            files = dict(group.input_files)
            files.update(shared_files)
            interpreter = ScriptInterpreter(node.connect, files=files)
            before = len(node.completed_jobs)
            result = interpreter.run(parse_script(group.script))
            rows = sum(i.rows_inserted for i in result.imports)
            rows += sum(s.activity_count for s in result.statements
                        if not s.is_result_set)
            errors = sum(i.total_errors for i in result.imports)
            job_metrics = node.completed_jobs[before:]
            acq = sum(m.acquisition_s for m in job_metrics) * 1000
            app = sum(m.application_s for m in job_metrics) * 1000
            print(f"{group.name:24s} {rows:6d} {errors:6d} "
                  f"{acq:8.1f} {app:8.1f}")
            shared_files.update(interpreter.files)

        elapsed = time.perf_counter() - batch_start
        verdict = "MET" if elapsed <= SLA_SECONDS else "MISSED"
        print(f"\nBatch wall time: {elapsed:.2f}s — SLA {verdict}")

        totals = engine.query(
            "SELECT COUNT(*), SUM(TOTAL) FROM STORE_TOTALS")
        print(f"Reporting table: {totals[0][0]} stores, "
              f"grand total {totals[0][1]}")
        exported = shared_files.get("store_totals.txt", b"")
        print(f"Exported report file: {len(exported)} bytes, first line: "
              f"{exported.decode().splitlines()[0] if exported else '-'}")


if __name__ == "__main__":
    main()
